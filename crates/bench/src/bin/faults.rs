//! Fault-plane robustness harness: emit `BENCH_faults.json`.
//!
//! Exercises the deterministic fault-injection plane (`machine::fault`)
//! against the self-healing runtime and reports the numbers the PR's
//! headline claims are made on:
//!
//! * **Parity** — with an installed-but-*empty* [`FaultPlan`] the
//!   runtime is bit-for-bit identical to a run with no plan at all:
//!   same verdict stream, same total cycles. Asserted exactly.
//! * **Chaos matrix** — seeded fault schedules (8 seeds × light/heavy
//!   intensity, varied worker counts and dispatchers) injecting stalls,
//!   crashes, slot corruption, EPT denials, dropped invalidations and
//!   lookup races. Every submitted call must resolve to exactly one
//!   verdict: zero lost, zero duplicated, asserted per run.
//! * **Recovery latency** — virtual cycles from each fault observation
//!   to the next completed call, pooled across the matrix.
//! * **Degraded-mode overhead** — the steady-state cost of the
//!   automatic switchless → classic degradation (classic-only vs
//!   channels engaged, same stream), plus a corruption-storm run
//!   showing the escalation actually trips.
//! * **IPI faults** — `SmpMachine` under injected IPI loss/delay and
//!   queue overflow: every send is either delivered or counted in
//!   `ipi_dropped`, never silently gone.
//!
//! Usage: `faults [output-path] [--trace-out PATH]` (default
//! `BENCH_faults.json`). With `--trace-out` one chaos run is repeated
//! with the obs plane recording and its combined Perfetto/recording
//! JSON written to the given path — faults, retries, quarantines and
//! respawns show up as instant markers on the worker tracks.

use std::fmt::Write as _;
use std::sync::Arc;

use hypervisor::smp::{CoreId, SmpMachine, MAX_PENDING_IPIS};
use machine::fault::{FaultKind, FaultPlan, FaultSite};
use machine::rng::SplitMix64;
use runtime::{
    trace_doc, CallRequest, DispatchMode, ObsConfig, RuntimeConfig, ServiceReport,
    SwitchlessConfig, WorldCallService,
};

const FREQUENCY_GHZ: f64 = 3.4;

const PARITY_CALLS: u64 = 2_000;
const CHAOS_CALLS: u64 = 1_500;
const DEGRADED_CALLS: u64 = 2_000;
const CHAOS_SEEDS: [u64; 8] = [
    0x0001,
    0xBEEF,
    0x5EED_CAFE,
    0xDEAD_10CC,
    0x0F00_BA44,
    0x7777_7777,
    0x0C0F_FEE0,
    0x41,
];
const STREAM_SEED: u64 = 0xFA_117;
const HORIZON_CYCLES: u64 = 10_000_000;
const WORKING_SET_PAGES: u64 = 8;

/// Two tenants × (user + kernel), working sets and channels everywhere.
fn build_service(config: RuntimeConfig) -> (WorldCallService, Vec<crossover::world::Wid>) {
    let mut svc = WorldCallService::new(config);
    let mut worlds = Vec::new();
    for t in 0..2u64 {
        let vm = svc
            .create_vm(hypervisor::vm::VmConfig::named(&format!("fault-{t}")))
            .expect("create vm");
        let user = svc
            .register_guest_user(vm, 0x1000 * (t + 1), 0x40_0000)
            .expect("register user world");
        let kernel = svc
            .register_guest_kernel(vm, 0x10_0000 * (t + 1), 0xFFFF_8000)
            .expect("register kernel world");
        for &w in &[user, kernel] {
            svc.attach_working_set(w, vm, WORKING_SET_PAGES)
                .expect("attach working set");
            svc.attach_channel(w, vm).expect("attach channel");
        }
        worlds.push(user);
        worlds.push(kernel);
    }
    (svc, worlds)
}

/// Skewed draws with touches, tagged with the submission index;
/// `abusive` arms a 5% fraction with guaranteed-expiring budgets.
fn draw_request(
    rng: &mut SplitMix64,
    worlds: &[crossover::world::Wid],
    tag: u64,
    abusive: bool,
) -> CallRequest {
    let (caller, callee) = loop {
        let (a, b) = if rng.flip() {
            (worlds[0], worlds[1]) // hot pair keeps the channels busy
        } else {
            (
                worlds[rng.below(worlds.len() as u64) as usize],
                worlds[rng.below(worlds.len() as u64) as usize],
            )
        };
        if a != b {
            break (a, b);
        }
    };
    let work_cycles = 2_000 + rng.below(2_000);
    let mut req = CallRequest::new(caller, callee, work_cycles, work_cycles / 3)
        .with_touches(rng.below(2 * WORKING_SET_PAGES))
        .with_tag(tag);
    if abusive && rng.chance(0.05) {
        req = req.with_budget(work_cycles / 4);
    }
    req
}

fn run(
    plan: Option<FaultPlan>,
    workers: usize,
    dispatch: DispatchMode,
    switchless: SwitchlessConfig,
    calls: u64,
    abusive: bool,
    obs: ObsConfig,
) -> ServiceReport {
    let (mut svc, worlds) = build_service(RuntimeConfig {
        workers,
        dispatch,
        queue_capacity: calls as usize + 16,
        batch_max: 32,
        switchless,
        obs,
        ..RuntimeConfig::default()
    });
    if let Some(plan) = plan {
        svc.set_fault_plan(plan);
    }
    let mut rng = SplitMix64::new(STREAM_SEED);
    for tag in 0..calls {
        svc.submit(draw_request(&mut rng, &worlds, tag, abusive))
            .expect("queue open while benching");
    }
    svc.start();
    svc.drain()
}

/// The exactly-one-verdict check: every tag in `[0, calls)` appears
/// exactly once in the outcome stream. Returns (lost, duplicated).
fn conservation(report: &ServiceReport, calls: u64) -> (u64, u64) {
    let mut seen = vec![0u32; calls as usize];
    for o in &report.outcomes {
        seen[o.request.tag as usize] += 1;
    }
    let lost = seen.iter().filter(|&&c| c == 0).count() as u64;
    let dup = seen.iter().filter(|&&c| c > 1).count() as u64;
    (lost, dup)
}

struct ChaosRow {
    seed: u64,
    intensity: &'static str,
    workers: usize,
    dispatch: &'static str,
    completed: u64,
    timed_out: u64,
    failed: u64,
    dead_lettered: u64,
    injected_stalls: u64,
    respawns: u64,
    corruptions: u64,
    quarantines: u64,
    invalidation_defers: u64,
    lookup_retries: u64,
    backoff_cycles: u64,
    degrade_escalations: u64,
    mean_recovery_cycles: f64,
    makespan_cycles: u64,
}

fn chaos_matrix() -> (Vec<ChaosRow>, Vec<u64>) {
    let mut rows = Vec::new();
    let mut recovery = Vec::new();
    for (i, seed) in CHAOS_SEEDS.into_iter().enumerate() {
        for (intensity, events_per_site) in [("light", 2u32), ("heavy", 6u32)] {
            let workers = [1, 2, 4, 8][i % 4];
            let (dispatch, dispatch_name) = if i % 2 == 0 {
                (DispatchMode::LockFreeRings, "rings")
            } else {
                (DispatchMode::MutexQueue, "mutex")
            };
            let salt = if intensity == "heavy" {
                seed.rotate_left(17) ^ 0x00DD_F00D
            } else {
                seed
            };
            let plan = FaultPlan::from_seed(salt, HORIZON_CYCLES, events_per_site);
            let report = run(
                Some(plan),
                workers,
                dispatch,
                SwitchlessConfig::fixed(8),
                CHAOS_CALLS,
                true,
                ObsConfig::off(),
            );
            let (lost, dup) = conservation(&report, CHAOS_CALLS);
            assert_eq!(lost, 0, "seed {seed:#x}/{intensity}: lost verdicts");
            assert_eq!(dup, 0, "seed {seed:#x}/{intensity}: duplicated verdicts");
            assert_eq!(
                report.completed + report.timed_out + report.failed + report.dead_lettered,
                CHAOS_CALLS,
                "seed {seed:#x}/{intensity}: verdict counters must partition the stream"
            );
            assert_eq!(report.supervisor.worker_panics, 0);
            let t = &report.supervisor.totals;
            recovery.extend_from_slice(&t.recovery_samples);
            eprintln!(
                "chaos seed {seed:#010x} {intensity:>5}  w={workers} {dispatch_name:>5}  \
                 ok/to/fail/dead {:>4}/{:>2}/{:>2}/{:>2}  stalls {} respawns {} corrupt {} \
                 defers {} retries {}",
                report.completed,
                report.timed_out,
                report.failed,
                report.dead_lettered,
                t.injected_stalls,
                t.respawns,
                t.corruptions_detected,
                t.invalidation_defers,
                t.lookup_retries,
            );
            rows.push(ChaosRow {
                seed,
                intensity,
                workers,
                dispatch: dispatch_name,
                completed: report.completed,
                timed_out: report.timed_out,
                failed: report.failed,
                dead_lettered: report.dead_lettered,
                injected_stalls: t.injected_stalls,
                respawns: t.respawns,
                corruptions: t.corruptions_detected,
                quarantines: t.quarantines,
                invalidation_defers: t.invalidation_defers,
                lookup_retries: t.lookup_retries,
                backoff_cycles: t.backoff_cycles,
                degrade_escalations: report.supervisor.degrade_escalations,
                mean_recovery_cycles: t.mean_recovery_cycles(),
                makespan_cycles: report.smp.makespan_cycles(),
            });
        }
    }
    (rows, recovery)
}

/// Re-runs one chaos configuration with the obs plane recording and
/// writes the combined Perfetto/recording document.
fn trace_run(trace_path: &str) {
    let plan = FaultPlan::from_seed(CHAOS_SEEDS[0], HORIZON_CYCLES, 4);
    let report = run(
        Some(plan),
        2,
        DispatchMode::LockFreeRings,
        SwitchlessConfig::fixed(8),
        CHAOS_CALLS,
        true,
        ObsConfig::ring(),
    );
    let doc = trace_doc("faults chaos", &report, FREQUENCY_GHZ)
        .expect("obs was enabled for the traced run");
    std::fs::write(trace_path, doc.render_json()).expect("write trace json");
    eprintln!("wrote {trace_path} ({} events)", doc.events.len());
}

fn main() {
    let mut out_path = "BENCH_faults.json".to_string();
    let mut trace_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out needs a path")),
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            positional => out_path = positional.to_string(),
        }
    }

    // ---- Parity: an empty plan is free, cycle for cycle. -------------
    let bare = run(
        None,
        1,
        DispatchMode::LockFreeRings,
        SwitchlessConfig::fixed(8),
        PARITY_CALLS,
        true,
        ObsConfig::off(),
    );
    let armed = run(
        Some(FaultPlan::new()),
        1,
        DispatchMode::LockFreeRings,
        SwitchlessConfig::fixed(8),
        PARITY_CALLS,
        true,
        ObsConfig::off(),
    );
    assert_eq!(bare.outcomes.len(), armed.outcomes.len());
    for (a, b) in bare.outcomes.iter().zip(armed.outcomes.iter()) {
        assert_eq!(a.request, b.request, "empty-plan parity: request order");
        assert_eq!(a.verdict, b.verdict, "empty-plan parity: verdicts");
        assert_eq!(
            a.latency_cycles, b.latency_cycles,
            "empty-plan parity: latency"
        );
    }
    assert_eq!(
        bare.smp.total_cycles(),
        armed.smp.total_cycles(),
        "an installed-but-empty fault plan must cost zero cycles"
    );
    assert_eq!(armed.supervisor.totals.faults_observed(), 0);
    eprintln!(
        "parity: {} calls, {} cycles, empty plan exact",
        PARITY_CALLS,
        bare.smp.total_cycles()
    );

    // ---- Chaos matrix: zero lost / duplicated verdicts. --------------
    let (chaos, recovery) = chaos_matrix();
    let faults_observed: u64 = chaos
        .iter()
        .map(|r| {
            r.injected_stalls
                + r.respawns
                + r.corruptions
                + r.invalidation_defers
                + r.lookup_retries
        })
        .sum();
    assert!(
        faults_observed > 0,
        "the seed matrix must actually inject faults"
    );
    assert!(
        !recovery.is_empty(),
        "fault episodes must yield recovery-latency samples"
    );
    let mean_recovery = recovery.iter().sum::<u64>() as f64 / recovery.len() as f64;
    eprintln!(
        "chaos: {} runs, {} recovery samples, mean recovery {:.0} cycles",
        chaos.len(),
        recovery.len(),
        mean_recovery
    );

    // ---- Degraded mode: the cost of falling back to classic-only. ----
    // Steady state: the same stream with channels engaged vs the
    // classic-only ladder rung (switchless off models a pool pinned at
    // `DegradeLevel::ClassicOnly`). Both runs are clean and
    // deterministic, so the delta *is* the degradation overhead.
    let engaged = run(
        None,
        1,
        DispatchMode::LockFreeRings,
        SwitchlessConfig::fixed(8),
        DEGRADED_CALLS,
        false,
        ObsConfig::off(),
    );
    let classic_only = run(
        None,
        1,
        DispatchMode::LockFreeRings,
        SwitchlessConfig::default(), // mode Off == classic-only rung
        DEGRADED_CALLS,
        false,
        ObsConfig::off(),
    );
    assert_eq!(engaged.completed, DEGRADED_CALLS);
    assert_eq!(classic_only.completed, DEGRADED_CALLS);
    let cpc_engaged = engaged.smp.total_cycles() as f64 / engaged.completed as f64;
    let cpc_classic = classic_only.smp.total_cycles() as f64 / classic_only.completed as f64;
    let degraded_overhead_pct = (cpc_classic - cpc_engaged) / cpc_engaged * 100.0;
    assert!(
        degraded_overhead_pct > 0.0,
        "classic-only must cost more than the switchless fast path \
         (else the degradation ladder is pointless)"
    );
    // A corruption storm must actually trip the escalation to that rung.
    let storm = FaultPlan::new();
    for _ in 0..32 {
        storm.schedule(0, FaultSite::ChannelCorruption, FaultKind::Corrupt);
    }
    let stormed = run(
        Some(storm),
        1,
        DispatchMode::LockFreeRings,
        SwitchlessConfig::fixed(8),
        DEGRADED_CALLS,
        false,
        ObsConfig::off(),
    );
    let (lost, dup) = conservation(&stormed, DEGRADED_CALLS);
    assert_eq!((lost, dup), (0, 0), "corruption storm: conservation");
    assert!(
        stormed.supervisor.degrade_escalations > 0,
        "a corruption storm must escalate the degradation ladder"
    );
    let storm_corruptions = stormed.supervisor.totals.corruptions_detected;
    eprintln!(
        "degraded: engaged {cpc_engaged:.0} cyc/call, classic-only {cpc_classic:.0} \
         ({degraded_overhead_pct:.1}% overhead); storm detected {storm_corruptions} \
         corruptions, {} escalations",
        stormed.supervisor.degrade_escalations
    );

    // ---- IPI faults: loss, delay and overflow are all accounted. -----
    let mut smp = SmpMachine::new(2);
    let plan = Arc::new(FaultPlan::new());
    for _ in 0..32 {
        plan.schedule(0, FaultSite::IpiLoss, FaultKind::Drop);
        plan.schedule(0, FaultSite::IpiDelay, FaultKind::Delay { cycles: 700 });
    }
    smp.set_fault_plan(plan.clone());
    let sent = 1_000u64;
    let mut delivered = 0u64;
    for _ in 0..sent {
        smp.send_ipi(CoreId(0), CoreId(1), 0x2A).expect("send ipi");
        if smp.take_ipi(CoreId(1)).expect("valid core").is_some() {
            delivered += 1;
        }
    }
    let injected_losses = smp.total_ipi_dropped();
    assert_eq!(
        delivered + injected_losses,
        sent,
        "every IPI is delivered or counted dropped"
    );
    assert_eq!(plan.pending_total(), 0, "the storm must exhaust the plan");
    // Overflow backpressure: an unresponsive receiver bounds the queue;
    // sends beyond the bound fail *and* count.
    let mut wedged = SmpMachine::new(2);
    let extra = 16u64;
    for _ in 0..(MAX_PENDING_IPIS as u64 + extra) {
        let _ = wedged.send_ipi(CoreId(0), CoreId(1), 0x2A);
    }
    assert_eq!(wedged.ipi_dropped(CoreId(1)).expect("valid core"), extra);
    eprintln!(
        "ipi: {sent} sent, {delivered} delivered, {injected_losses} injected losses, \
         {extra} overflow-dropped"
    );

    // ---- Emit the JSON document. -------------------------------------
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"benchmark\": \"xover fault plane and self-healing runtime\",\n\
         \x20 \"parity\": {{\n\
         \x20   \"calls\": {PARITY_CALLS},\n\
         \x20   \"total_cycles\": {},\n\
         \x20   \"empty_plan_exact\": true\n\
         \x20 }},\n",
        bare.smp.total_cycles()
    );
    let _ = write!(
        out,
        "  \"chaos_summary\": {{\n\
         \x20   \"runs\": {},\n\
         \x20   \"calls_per_run\": {CHAOS_CALLS},\n\
         \x20   \"lost_verdicts\": 0,\n\
         \x20   \"duplicated_verdicts\": 0,\n\
         \x20   \"faults_observed\": {faults_observed},\n\
         \x20   \"recovery_samples\": {},\n\
         \x20   \"mean_recovery_cycles\": {mean_recovery:.1}\n\
         \x20 }},\n",
        chaos.len(),
        recovery.len()
    );
    let _ = write!(
        out,
        "  \"degraded_mode\": {{\n\
         \x20   \"engaged_cycles_per_call\": {cpc_engaged:.1},\n\
         \x20   \"classic_only_cycles_per_call\": {cpc_classic:.1},\n\
         \x20   \"overhead_pct\": {degraded_overhead_pct:.1},\n\
         \x20   \"storm_corruptions_detected\": {storm_corruptions},\n\
         \x20   \"storm_escalations\": {}\n\
         \x20 }},\n",
        stormed.supervisor.degrade_escalations
    );
    let _ = write!(
        out,
        "  \"ipi\": {{\n\
         \x20   \"sent\": {sent},\n\
         \x20   \"delivered\": {delivered},\n\
         \x20   \"injected_losses\": {injected_losses},\n\
         \x20   \"overflow_dropped\": {extra}\n\
         \x20 }},\n  \"chaos\": [\n"
    );
    for (i, r) in chaos.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n\
             \x20     \"seed\": {},\n\
             \x20     \"intensity\": \"{}\",\n\
             \x20     \"workers\": {},\n\
             \x20     \"dispatch\": \"{}\",\n\
             \x20     \"completed\": {},\n\
             \x20     \"timed_out\": {},\n\
             \x20     \"failed\": {},\n\
             \x20     \"dead_lettered\": {},\n\
             \x20     \"injected_stalls\": {},\n\
             \x20     \"respawns\": {},\n\
             \x20     \"corruptions\": {},\n\
             \x20     \"quarantines\": {},\n\
             \x20     \"invalidation_defers\": {},\n\
             \x20     \"lookup_retries\": {},\n\
             \x20     \"backoff_cycles\": {},\n\
             \x20     \"degrade_escalations\": {},\n\
             \x20     \"mean_recovery_cycles\": {:.1},\n\
             \x20     \"makespan_cycles\": {}\n\
             \x20   }}",
            r.seed,
            r.intensity,
            r.workers,
            r.dispatch,
            r.completed,
            r.timed_out,
            r.failed,
            r.dead_lettered,
            r.injected_stalls,
            r.respawns,
            r.corruptions,
            r.quarantines,
            r.invalidation_defers,
            r.lookup_retries,
            r.backoff_cycles,
            r.degrade_escalations,
            r.mean_recovery_cycles,
            r.makespan_cycles,
        );
        out.push_str(if i + 1 < chaos.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, out).expect("write benchmark json");
    eprintln!("wrote {out_path}");
    if let Some(trace_path) = trace_out {
        trace_run(&trace_path);
    }
}
