//! SLO watchdog harness: emit `BENCH_slo.json`.
//!
//! Exercises the online burn-rate watchdog (`runtime::watchdog`)
//! end-to-end and asserts the PR's headline claims:
//!
//! * **Clean runs are silent.** Three seeded clean runs with the
//!   watchdog armed must raise zero incidents: baselines are learned
//!   from the run itself, so an undisturbed workload never burns.
//! * **Parity.** A watchdog-on run is bit-for-bit cycle-exact with a
//!   watchdog-off run of the same stream. Asserted exactly.
//! * **Fault burst.** A mid-run burst of injected world-lookup races
//!   (fired well after the learning horizon) must raise an incident
//!   within a bounded number of epochs of the burst, and the incident's
//!   causal attribution must point at the recovery plane (recovery /
//!   backoff cycles), not at healthy service time.
//! * **Switchless-off shift.** Forcing the degradation ladder to
//!   `ClassicOnly` mid-run (the operational drill) makes every call pay
//!   its own transition pair; the watchdog must raise a latency-p99
//!   incident within a bounded number of epochs of the shift whose top
//!   service-side contributor is `transition` — the paper's world-switch
//!   tax, named by the causal decomposition.
//!
//! Usage: `slo [output-path] [--trace-out PATH]` (default
//! `BENCH_slo.json`). With `--trace-out` the fault-burst recording is
//! annotated with its `slo_incident` markers and written as the
//! combined Perfetto/recording JSON.

use std::fmt::Write as _;

use machine::fault::{FaultKind, FaultPlan, FaultSite};
use machine::rng::SplitMix64;
use obs::Component;
use runtime::{
    annotate_trace, incidents_to_json, trace_doc, CallRequest, DegradeLevel, Incident, ObsConfig,
    RuntimeConfig, ServiceReport, SwitchlessConfig, WatchdogConfig, WatchdogSummary,
    WorldCallService,
};

const FREQUENCY_GHZ: f64 = 3.4;
/// Narrow epochs so every scenario spans many evaluation windows.
const EPOCH_CYCLES: u64 = 100_000;
const CLEAN_SEEDS: [u64; 3] = [0x51_0001, 0x51_0002, 0x51_0003];
const CLEAN_CALLS: u64 = 2_500;
const BURST_CALLS: u64 = 4_000;
/// The burst arms at virtual cycle 1M — epoch 10, six epochs past the
/// end of baseline learning (4 epochs × 100k cycles).
const BURST_AT: u64 = 1_000_000;
const BURST_FAULTS: usize = 160;
/// Sized so the stream far outlasts the drill trip: the host-side spin
/// that watches the virtual clock reacts hundreds of kilocycles late
/// (the simulation outruns the observer), and the regression needs
/// several post-shift epochs to burn through the detector's windows.
const SHIFT_CALLS: u64 = 60_000;
/// The drill trips once the pool's virtual clock passes 1.5M cycles.
const SHIFT_AT: u64 = 1_500_000;
/// Detection-latency bound, in epochs past the regression's epoch.
const DETECT_EPOCH_BOUND: u64 = 6;
const WORKING_SET_PAGES: u64 = 8;

fn watchdog_on() -> WatchdogConfig {
    WatchdogConfig {
        epoch_cycles: EPOCH_CYCLES,
        ..WatchdogConfig::on()
    }
}

/// Two tenants × (user + kernel), working sets and channels everywhere.
fn build_service(config: RuntimeConfig) -> (WorldCallService, Vec<crossover::world::Wid>) {
    let mut svc = WorldCallService::new(config);
    let mut worlds = Vec::new();
    for t in 0..2u64 {
        let vm = svc
            .create_vm(hypervisor::vm::VmConfig::named(&format!("slo-{t}")))
            .expect("create vm");
        let user = svc
            .register_guest_user(vm, 0x1000 * (t + 1), 0x40_0000)
            .expect("register user world");
        let kernel = svc
            .register_guest_kernel(vm, 0x10_0000 * (t + 1), 0xFFFF_8000)
            .expect("register kernel world");
        for &w in &[user, kernel] {
            svc.attach_working_set(w, vm, WORKING_SET_PAGES)
                .expect("attach working set");
            svc.attach_channel(w, vm).expect("attach channel");
        }
        worlds.push(user);
        worlds.push(kernel);
    }
    (svc, worlds)
}

/// The mixed stream the clean and fault-burst scenarios run: skewed
/// hot-pair traffic with moderate bodies, tagged and tenanted. The
/// burst scenario pins `tenants` to 1 so its dead letters land on one
/// tenant's budget instead of diluting across accounts.
fn draw_mixed(
    rng: &mut SplitMix64,
    worlds: &[crossover::world::Wid],
    tag: u64,
    tenants: u64,
) -> CallRequest {
    let (caller, callee) = loop {
        let (a, b) = if rng.flip() {
            (worlds[0], worlds[1])
        } else {
            (
                worlds[rng.below(worlds.len() as u64) as usize],
                worlds[rng.below(worlds.len() as u64) as usize],
            )
        };
        if a != b {
            break (a, b);
        }
    };
    let work_cycles = 2_000 + rng.below(2_000);
    CallRequest::new(caller, callee, work_cycles, work_cycles / 3)
        .with_touches(rng.below(WORKING_SET_PAGES))
        .with_tenant((tag % tenants) as u32)
        .with_tag(tag)
}

/// The shift stream: one hot pair with tiny RPC-style bodies, so the
/// coalesced fast path amortizes the transition pair to (near) zero and
/// the forced classic path makes that pair the dominant latency term.
fn draw_hot(rng: &mut SplitMix64, worlds: &[crossover::world::Wid], tag: u64) -> CallRequest {
    // Tiny bodies: the request is all overhead, so losing the
    // switchless path shows up as transition cycles, not service time.
    let work_cycles = 10 + rng.below(10);
    CallRequest::new(worlds[0], worlds[1], work_cycles, 0)
        .with_tenant((tag % 2) as u32)
        .with_tag(tag)
}

fn run_mixed(
    seed: u64,
    calls: u64,
    tenants: u64,
    plan: Option<FaultPlan>,
    watchdog: WatchdogConfig,
    switchless: SwitchlessConfig,
    obs: ObsConfig,
) -> ServiceReport {
    let (mut svc, worlds) = build_service(RuntimeConfig {
        workers: 1,
        queue_capacity: calls as usize + 16,
        batch_max: 32,
        switchless,
        watchdog,
        obs,
        ..RuntimeConfig::default()
    });
    if let Some(plan) = plan {
        svc.set_fault_plan(plan);
    }
    let mut rng = SplitMix64::new(seed);
    for tag in 0..calls {
        svc.submit(draw_mixed(&mut rng, &worlds, tag, tenants))
            .expect("queue open while benching");
    }
    svc.start();
    svc.drain()
}

/// Runs the hot-pair stream and trips the `ClassicOnly` drill once the
/// pool's virtual clock passes `shift_at`. Returns the report and the
/// virtual time the drill actually landed at.
fn run_shift(seed: u64, calls: u64, shift_at: u64) -> (ServiceReport, u64) {
    let (mut svc, worlds) = build_service(RuntimeConfig {
        workers: 1,
        queue_capacity: calls as usize + 16,
        batch_max: 32,
        switchless: SwitchlessConfig::fixed(8),
        watchdog: watchdog_on(),
        obs: ObsConfig::ring_with_capacity(1 << 20),
        ..RuntimeConfig::default()
    });
    let mut rng = SplitMix64::new(seed);
    for tag in 0..calls {
        svc.submit(draw_hot(&mut rng, &worlds, tag))
            .expect("queue open while benching");
    }
    svc.start();
    loop {
        let now = svc.virtual_now();
        if now >= shift_at {
            break;
        }
        std::hint::spin_loop();
    }
    svc.force_degrade(DegradeLevel::ClassicOnly);
    let shifted_at = svc.virtual_now();
    assert!(
        shifted_at != u64::MAX,
        "the pool drained before the drill tripped; raise SHIFT_CALLS"
    );
    (svc.drain(), shifted_at)
}

/// First incident at or after `epoch`, in evaluation order.
fn first_incident_after(summary: &WatchdogSummary, epoch: u64) -> Option<&Incident> {
    summary.incidents.iter().find(|i| i.epoch >= epoch)
}

/// Top contributor ignoring queue wait — the closed-loop harness
/// preloads its queue, so dispatch delay reflects the harness, not the
/// service regression the incident is about.
fn top_service_side(incident: &Incident) -> Option<Component> {
    incident
        .contributors
        .iter()
        .map(|c| c.component)
        .find(|&c| c != Component::QueueWait)
}

fn main() {
    let mut out_path = "BENCH_slo.json".to_string();
    let mut trace_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out needs a path")),
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            positional => out_path = positional.to_string(),
        }
    }

    // ---- Parity: the armed watchdog costs zero virtual cycles. -------
    let off = run_mixed(
        CLEAN_SEEDS[0],
        CLEAN_CALLS,
        2,
        None,
        WatchdogConfig::default(),
        SwitchlessConfig::fixed(8),
        ObsConfig::off(),
    );
    let on = run_mixed(
        CLEAN_SEEDS[0],
        CLEAN_CALLS,
        2,
        None,
        watchdog_on(),
        SwitchlessConfig::fixed(8),
        ObsConfig::off(),
    );
    assert_eq!(off.outcomes, on.outcomes, "watchdog parity: outcome stream");
    assert_eq!(
        off.smp.total_cycles(),
        on.smp.total_cycles(),
        "watchdog parity: total cycles"
    );
    assert_eq!(
        off.smp.makespan_cycles(),
        on.smp.makespan_cycles(),
        "watchdog parity: makespan"
    );
    let parity_cycles = off.smp.total_cycles();
    eprintln!("parity: {CLEAN_CALLS} calls, {parity_cycles} cycles, watchdog-on exact");

    // ---- Clean runs: zero incidents across three seeds. --------------
    let mut clean_rows = Vec::new();
    for seed in CLEAN_SEEDS {
        let report = run_mixed(
            seed,
            CLEAN_CALLS,
            2,
            None,
            watchdog_on(),
            SwitchlessConfig::fixed(8),
            ObsConfig::off(),
        );
        let wd = report.watchdog.as_ref().expect("watchdog armed");
        assert!(
            wd.incidents.is_empty(),
            "seed {seed:#x}: clean run raised {} incidents",
            wd.incidents.len()
        );
        assert!(wd.baseline_ready, "seed {seed:#x}: baselines must settle");
        eprintln!(
            "clean seed {seed:#010x}: {} epochs evaluated, 0 incidents",
            wd.epochs_evaluated
        );
        clean_rows.push((seed, wd.epochs_evaluated));
    }

    // ---- Fault burst: bounded detection, recovery-plane attribution. -
    let plan = FaultPlan::new();
    for _ in 0..BURST_FAULTS {
        plan.schedule(BURST_AT, FaultSite::WorldLookupRace, FaultKind::Vanish);
    }
    let burst = run_mixed(
        CLEAN_SEEDS[0],
        BURST_CALLS,
        1,
        Some(plan),
        watchdog_on(),
        // Classic-only traffic: every call resolves its caller through
        // the table, so the armed burst drains back-to-back instead of
        // trickling through the rare non-coalesced lookups.
        SwitchlessConfig::default(),
        ObsConfig::ring_with_capacity(1 << 18),
    );
    let burst_wd = burst.watchdog.clone().expect("watchdog armed");
    let burst_epoch = BURST_AT / EPOCH_CYCLES;
    let incident = first_incident_after(&burst_wd, burst_epoch)
        .expect("the fault burst must raise an incident");
    let burst_detect_epochs = incident.epoch - burst_epoch;
    assert!(
        burst_detect_epochs <= DETECT_EPOCH_BOUND,
        "burst detected {burst_detect_epochs} epochs late (bound {DETECT_EPOCH_BOUND})"
    );
    let burst_top = top_service_side(incident).expect("incident carries contributors");
    assert!(
        matches!(burst_top, Component::Recovery | Component::Backoff),
        "fault burst must be attributed to the recovery plane, got {burst_top:?}"
    );
    let burst_detect_cycles = incident.detected_at.saturating_sub(incident.window_end);
    let burst_objective = incident.objective.name();
    eprintln!(
        "burst: epoch {burst_epoch} + {burst_detect_epochs} → {} incident, top {}, \
         detect lag {burst_detect_cycles} cycles, {} incidents total",
        burst_objective,
        burst_top.name(),
        burst_wd.incidents.len()
    );
    if let Some(trace_path) = &trace_out {
        let mut doc =
            trace_doc("slo fault burst", &burst, FREQUENCY_GHZ).expect("burst run records");
        annotate_trace(&mut doc, &burst_wd);
        std::fs::write(trace_path, doc.render_json()).expect("write trace json");
        eprintln!("wrote {trace_path} ({} events)", doc.events.len());
    }

    // ---- Switchless-off shift: the transition tax, named. ------------
    let (shift, shifted_at) = run_shift(CLEAN_SEEDS[0], SHIFT_CALLS, SHIFT_AT);
    let shift_wd = shift.watchdog.clone().expect("watchdog armed");
    let shift_epoch = shifted_at / EPOCH_CYCLES;
    let incident = first_incident_after(&shift_wd, shift_epoch)
        .expect("the switchless-off drill must raise an incident");
    let shift_detect_epochs = incident.epoch - shift_epoch;
    assert!(
        shift_detect_epochs <= DETECT_EPOCH_BOUND,
        "shift detected {shift_detect_epochs} epochs late (bound {DETECT_EPOCH_BOUND})"
    );
    assert_eq!(
        incident.objective.name(),
        "latency_p99",
        "forcing classic-only must burn the latency objective"
    );
    // Attribution is judged on the first *full* classic-only epoch: the
    // epoch the drill lands in mixes drained and classic completions, so
    // its window is contaminated by construction.
    let settled = first_incident_after(&shift_wd, shift_epoch + 1)
        .expect("the burn must persist past the landing epoch");
    let shift_top = top_service_side(settled).expect("incident carries contributors");
    assert_eq!(
        shift_top,
        Component::Transition,
        "the classic-only shift must be attributed to transition cycles"
    );
    let shift_detect_cycles = incident.detected_at.saturating_sub(incident.window_end);
    eprintln!(
        "shift: drill at cycle {shifted_at} (epoch {shift_epoch}) + {shift_detect_epochs} → \
         latency_p99 incident, top transition, detect lag {shift_detect_cycles} cycles, \
         {} incidents total",
        shift_wd.incidents.len()
    );

    // ---- Emit the JSON document. -------------------------------------
    let mut outj = String::new();
    let _ = write!(
        outj,
        "{{\n  \"benchmark\": \"xover SLO watchdog\",\n\
         \x20 \"epoch_cycles\": {EPOCH_CYCLES},\n\
         \x20 \"detect_epoch_bound\": {DETECT_EPOCH_BOUND},\n\
         \x20 \"parity\": {{\n\
         \x20   \"calls\": {CLEAN_CALLS},\n\
         \x20   \"total_cycles\": {parity_cycles},\n\
         \x20   \"watchdog_on_exact\": true\n\
         \x20 }},\n  \"clean\": [\n"
    );
    for (i, (seed, epochs)) in clean_rows.iter().enumerate() {
        let _ = write!(
            outj,
            "    {{\"seed\": {seed}, \"epochs_evaluated\": {epochs}, \"incidents\": 0}}"
        );
        outj.push_str(if i + 1 < clean_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(
        outj,
        "  ],\n  \"fault_burst\": {{\n\
         \x20   \"burst_at_cycles\": {BURST_AT},\n\
         \x20   \"burst_epoch\": {burst_epoch},\n\
         \x20   \"injected_faults\": {BURST_FAULTS},\n\
         \x20   \"detect_epochs\": {burst_detect_epochs},\n\
         \x20   \"detect_cycles\": {burst_detect_cycles},\n\
         \x20   \"objective\": \"{burst_objective}\",\n\
         \x20   \"top_contributor\": \"{}\",\n\
         \x20   \"incidents\": {}\n\
         \x20 }},\n",
        burst_top.name(),
        incidents_to_json(&burst_wd)
    );
    let _ = write!(
        outj,
        "  \"degrade_shift\": {{\n\
         \x20   \"shift_at_cycles\": {shifted_at},\n\
         \x20   \"shift_epoch\": {shift_epoch},\n\
         \x20   \"detect_epochs\": {shift_detect_epochs},\n\
         \x20   \"detect_cycles\": {shift_detect_cycles},\n\
         \x20   \"objective\": \"latency_p99\",\n\
         \x20   \"top_contributor\": \"transition\",\n\
         \x20   \"incidents\": {}\n\
         \x20 }}\n}}\n",
        incidents_to_json(&shift_wd)
    );
    std::fs::write(&out_path, outj).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
