//! Parameter sweeps as CSV series — the quantitative backing for the
//! paper's discussion points that have no table of their own.
//!
//! ```text
//! sweeps load       # target-VM load vs redirected-call latency (§7.1.2)
//! sweeps capacity   # world-table-cache capacity vs hit rate (§5.1)
//! sweeps payload    # transfer size vs redirection cost (§6 copying)
//! sweeps nested     # nesting depth vs cross-world hops (§1 motivation)
//! sweeps all        # everything
//! ```

use crossover::plan::{HopPlanner, Mechanism, WorldCoord};
use guestos::syscall::Syscall;
use hypervisor::sched::SchedModel;
use machine::cost::Frequency;
use systems::crossvm::{hypervisor_cross_vm_syscall, vmfunc_cross_vm_syscall};
use systems::env::CrossVmEnv;
use systems::proxos::Proxos;
use workloads::micro::{run_redirected, MicroOp};

fn sweep_load() {
    println!("# target-VM load vs redirected NULL syscall latency (us)");
    println!("load,original_us,crossover_us");
    for load in [0u32, 1, 2, 4, 8, 16, 32] {
        let mut base = Proxos::baseline().expect("proxos");
        base.env.platform.set_sched(SchedModel::loaded(load));
        let b = run_redirected(&mut base, MicroOp::NullSyscall).expect("baseline");
        let mut opt = Proxos::optimized().expect("proxos");
        opt.env.platform.set_sched(SchedModel::loaded(load));
        let o = run_redirected(&mut opt, MicroOp::NullSyscall).expect("optimized");
        println!(
            "{load},{:.3},{:.3}",
            b.micros(Frequency::GHZ_3_4),
            o.micros(Frequency::GHZ_3_4)
        );
    }
    println!();
}

fn sweep_capacity() {
    println!("# world-table-cache capacity vs hit rate (6 caller/callee pairs, round robin)");
    println!("capacity,wt_hit_rate,iwt_hit_rate,wt_evictions");
    for capacity in [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
        let mut p = hypervisor::platform::Platform::new_default();
        let vm1 = p
            .create_vm(hypervisor::vm::VmConfig::named("a"))
            .expect("vm");
        let vm2 = p
            .create_vm(hypervisor::vm::VmConfig::named("b"))
            .expect("vm");
        let mut table = crossover::table::WorldTable::with_quota(64);
        let mut unit = crossover::call::WorldCallUnit::with_capacity(capacity);
        let mut pairs = Vec::new();
        for i in 0..6u64 {
            let cd = crossover::world::WorldDescriptor::guest_user(&p, vm1, 0x1000 * (i + 1), 0)
                .expect("desc");
            let ed = crossover::world::WorldDescriptor::guest_kernel(&p, vm2, 0x1000 * (i + 1), 0)
                .expect("desc");
            pairs.push((
                table.create(cd).expect("create"),
                table.create(ed).expect("create"),
                0x1000 * (i + 1),
            ));
        }
        p.vmentry(vm1).expect("vmentry");
        for round in 0..60 {
            let (_, callee, cr3) = pairs[round % pairs.len()];
            p.cpu_mut().force_cr3(cr3);
            if p.current_vm() != Some(vm1) {
                p.crossover_switch(
                    machine::trace::TransitionKind::WorldReturn,
                    machine::mode::CpuMode::GUEST_USER,
                    cr3,
                    p.eptp_of(vm1).expect("eptp"),
                )
                .expect("reset");
            }
            let _ = unit.world_call(&mut p, &table, callee, crossover::call::Direction::Call);
        }
        let wt = unit.wt_stats();
        let iwt = unit.iwt_stats();
        println!(
            "{capacity},{:.3},{:.3},{}",
            wt.hit_rate(),
            iwt.hit_rate(),
            wt.evictions
        );
    }
    println!();
}

fn sweep_payload() {
    println!("# write payload size vs redirected syscall latency (us)");
    println!("bytes,hypervisor_us,vmfunc_us");
    let mut env = CrossVmEnv::new("a", "b").expect("env");
    // Open a target file in the remote VM once.
    let fd = match hypervisor_cross_vm_syscall(
        &mut env,
        &Syscall::Open {
            path: "/payload-target".into(),
            create: true,
        },
    )
    .expect("open")
    {
        guestos::SyscallRet::Fd(fd) => fd,
        other => unreachable!("open returned {other:?}"),
    };
    env.settle_in_vm1().expect("settle");
    for bytes in [0usize, 64, 256, 1024, 4096, 16384] {
        let write = Syscall::Write {
            fd,
            data: vec![0u8; bytes],
        };
        let snap = env.platform.cpu().meter().snapshot();
        hypervisor_cross_vm_syscall(&mut env, &write).expect("baseline write");
        let base = env.platform.cpu().meter().since(snap);
        env.settle_in_vm1().expect("settle");
        let snap = env.platform.cpu().meter().snapshot();
        vmfunc_cross_vm_syscall(&mut env, &write).expect("vmfunc write");
        let opt = env.platform.cpu().meter().since(snap);
        println!(
            "{bytes},{:.3},{:.3}",
            base.micros(Frequency::GHZ_3_4),
            opt.micros(Frequency::GHZ_3_4)
        );
    }
    println!();
}

fn sweep_nested() {
    println!("# cross-VM call hops by nesting depth and mechanism");
    println!("topology,sw_hops,vmfunc_hops,crossover_hops");
    // Flat: U_VM1 -> U_VM2.
    let flat = HopPlanner::new(2);
    let (f, t) = (WorldCoord::guest_user(1), WorldCoord::guest_user(2));
    println!(
        "flat-L1,{},{},{}",
        flat.hops(f, t, Mechanism::Existing).expect("reachable"),
        flat.hops(f, t, Mechanism::Vmfunc).expect("reachable"),
        flat.hops(f, t, Mechanism::CrossOver).expect("reachable"),
    );
    // Nested: U_VM1.1 -> U_VM1.2 (two L2s under one guest hypervisor).
    let nested = HopPlanner::with_nested(1, 2);
    let (f, t) = (WorldCoord::nested_user(1, 1), WorldCoord::nested_user(1, 2));
    println!(
        "nested-L2,{},{},{}",
        nested.hops(f, t, Mechanism::Existing).expect("reachable"),
        nested
            .hops(f, t, Mechanism::Vmfunc)
            .map_or("-".into(), |h| h.to_string()),
        nested.hops(f, t, Mechanism::CrossOver).expect("reachable"),
    );
    println!();
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "load" => sweep_load(),
        "capacity" => sweep_capacity(),
        "payload" => sweep_payload(),
        "nested" => sweep_nested(),
        "all" => {
            sweep_load();
            sweep_capacity();
            sweep_payload();
            sweep_nested();
        }
        other => {
            eprintln!("unknown sweep '{other}' (load|capacity|payload|nested|all)");
            std::process::exit(2);
        }
    }
}
