//! Switchless fast-path ablation: emit `BENCH_switchless.json`.
//!
//! Sweeps the switchless layer's two knobs against the PR-2 tuned hot
//! path (lock-free rings + unified TLB, switchless **off**) on the same
//! seeded request stream:
//!
//! * **resident budget** — `fixed-4` / `fixed-16` / `fixed-32` pin every
//!   channel's coalescing budget (controller snapshots epochs but never
//!   moves);
//! * **controller** — `adaptive` starts at the default budget and lets
//!   the configless epoch controller tune it from dry/saturated
//!   residency exits and ring occupancy.
//!
//! Two workloads bound the design from both sides:
//!
//! * **skewed** — Zipf(1.3) callers and callees over eight guest worlds,
//!   every world carrying a channel. This is the shape the layer is
//!   built for: deep same-pair runs that amortize one
//!   save/call/return/restore transition pair across a whole batch.
//! * **uniform** — the same worlds and channels but uniform draws, so
//!   same-pair runs are rare and the layer should stay out of the way.
//!
//! The binary asserts the PR's acceptance criteria in-process:
//!
//! 1. on the skewed workload, `adaptive` spends ≥ 25% fewer simulated
//!    cycles per completed call than the tuned-PR2 baseline;
//! 2. the hottest (caller, callee) pair pays < 1.0 world transitions
//!    per call under coalescing (the classic path pays exactly 2.0);
//! 3. on the uniform workload, `adaptive` does not regress (≤ 5%
//!    slower at worst) — the layer stays out of the way when same-pair
//!    runs are rare;
//! 4. the adaptive controller's budget vector converges (identical over
//!    the final epochs) on three different seeds.
//!
//! Usage: `switchless [output-path] [--trace-out PATH]` (default
//! `BENCH_switchless.json`). With `--trace-out` the adaptive/skewed
//! point is re-run with the obs plane recording and its combined
//! Perfetto/recording JSON written to the given path — the resident
//! drains show up as `drain wA→wB` slices on the worker tracks.

use std::fmt::Write as _;

use machine::rng::{SplitMix64, Zipf};
use runtime::{
    converged, trace_doc, CallRequest, ObsConfig, RuntimeConfig, SwitchlessConfig, WorldCallService,
};

const FREQUENCY_GHZ: f64 = 3.4;

const CALLS_PER_POINT: u64 = 8_000;
const WORKERS: usize = 4;
const SEED: u64 = 0x5EED_C0A1;
/// Convergence is checked on three distinct streams.
const CONVERGENCE_SEEDS: [u64; 3] = [0x5EED_C0A1, 0xB10C_CAFE, 0x00DD_BA11];
/// Zipf exponent for the skewed workload's caller/callee draws.
const ZIPF_S: f64 = 1.3;
const WORKING_SET_PAGES: u64 = 8;
/// Acceptance 1: adaptive vs tuned-PR2 baseline, skewed workload.
const MIN_IMPROVEMENT_PCT: f64 = 25.0;
/// Acceptance 3: adaptive vs baseline, uniform workload, either way.
const UNIFORM_BAND_PCT: f64 = 5.0;
/// Acceptance 4: final epochs whose budget vectors must be identical.
const FINAL_EPOCHS: usize = 3;

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Skewed,
    Uniform,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Skewed => "skewed",
            Workload::Uniform => "uniform",
        }
    }
}

/// The run is short (~1M virtual cycles); shorter epochs than the
/// default give the controller a dozen-plus adjustment opportunities
/// within it, the regime it is designed for.
const EPOCH_CYCLES: u64 = 60_000;

fn with_epochs(cfg: SwitchlessConfig) -> SwitchlessConfig {
    SwitchlessConfig {
        epoch_cycles: EPOCH_CYCLES,
        ..cfg
    }
}

fn configs() -> Vec<(&'static str, SwitchlessConfig)> {
    vec![
        ("tuned-pr2", SwitchlessConfig::default()), // mode Off
        ("fixed-4", with_epochs(SwitchlessConfig::fixed(4))),
        ("fixed-16", with_epochs(SwitchlessConfig::fixed(16))),
        ("fixed-32", with_epochs(SwitchlessConfig::fixed(32))),
        ("adaptive", with_epochs(SwitchlessConfig::adaptive())),
    ]
}

/// Eight guest worlds (4 tenants × user/kernel), working sets and
/// switchless channels on all of them.
fn build_service(
    switchless: SwitchlessConfig,
    workers: usize,
    obs: ObsConfig,
) -> (WorldCallService, Vec<crossover::world::Wid>) {
    let mut svc = WorldCallService::new(RuntimeConfig {
        workers,
        queue_capacity: CALLS_PER_POINT as usize,
        // Deeper batches give coalescing (and destination batching in
        // the baseline) the same headroom — identical for every config.
        batch_max: 32,
        switchless,
        obs,
        ..RuntimeConfig::default()
    });
    let mut worlds = Vec::new();
    let mut vms = Vec::new();
    for t in 0..4u64 {
        let vm = svc
            .create_vm(hypervisor::vm::VmConfig::named(&format!("sw-{t}")))
            .expect("create vm");
        let user = svc
            .register_guest_user(vm, 0x1000 * (t + 1), 0x40_0000)
            .expect("register user world");
        let kernel = svc
            .register_guest_kernel(vm, 0x10_0000 * (t + 1), 0xFFFF_8000)
            .expect("register kernel world");
        svc.attach_working_set(user, vm, WORKING_SET_PAGES)
            .expect("attach user working set");
        svc.attach_working_set(kernel, vm, WORKING_SET_PAGES)
            .expect("attach kernel working set");
        worlds.push(user);
        worlds.push(kernel);
        vms.push(vm);
    }
    // Every callee gets a channel; whether it is *used* is the
    // controller's call (budget floor 1 = classic path), which is the
    // point of the ablation.
    for (i, &w) in worlds.iter().enumerate() {
        svc.attach_channel(w, vms[i / 2]).expect("attach channel");
    }
    (svc, worlds)
}

/// Draws one request. Skewed: Zipf over both endpoints, so deep
/// same-(caller, callee) runs reach the dispatcher. Uniform: flat draws,
/// so they almost never do. Bodies are small — the regime where the
/// 460-cycle transition pair dominates and coalescing has something to
/// amortize.
fn draw_request(
    rng: &mut SplitMix64,
    zipf: &Zipf,
    worlds: &[crossover::world::Wid],
    workload: Workload,
) -> CallRequest {
    let draw = |rng: &mut SplitMix64| -> usize {
        match workload {
            Workload::Skewed => zipf.sample(rng),
            Workload::Uniform => rng.below(worlds.len() as u64) as usize,
        }
    };
    let callee = worlds[draw(rng)];
    let caller = loop {
        let w = worlds[draw(rng)];
        if w != callee {
            break w;
        }
    };
    let work_cycles = 60 + rng.below(240);
    let touches = rng.below(4);
    CallRequest::new(caller, callee, work_cycles, work_cycles / 3).with_touches(touches)
}

struct Point {
    name: &'static str,
    completed: u64,
    cycles_per_call: f64,
    makespan_cycles: u64,
    total_cycles: u64,
    coalesced_calls: u64,
    classic_calls: u64,
    transition_pairs: u64,
    /// World transitions (calls + returns) per completed call, whole
    /// run. Classic pays exactly 2.0; coalescing pushes it below.
    transitions_per_call: f64,
    /// Transitions per call on the hottest (caller, callee) channel
    /// pair — the headline amortization number.
    hot_pair_transitions_per_call: f64,
    slot_cycles: u64,
    spin_cycles: u64,
    dry_exits: u64,
    saturated_exits: u64,
    epochs: usize,
    converged: bool,
}

fn run_point(
    name: &'static str,
    switchless: SwitchlessConfig,
    workload: Workload,
    seed: u64,
    workers: usize,
) -> Point {
    let (mut svc, worlds) = build_service(switchless, workers, ObsConfig::off());
    let zipf = Zipf::new(worlds.len(), ZIPF_S);
    let mut rng = SplitMix64::new(seed);
    for _ in 0..CALLS_PER_POINT {
        svc.submit(draw_request(&mut rng, &zipf, &worlds, workload))
            .expect("dispatcher open while benching");
    }
    svc.start();
    let report = svc.drain();
    assert_eq!(
        report.completed, CALLS_PER_POINT,
        "unbudgeted calls against live worlds all complete ({name})"
    );
    let sw = &report.switchless;
    let hot = sw.hottest_pair();
    Point {
        name,
        completed: report.completed,
        cycles_per_call: report.smp.total_cycles() as f64 / report.completed as f64,
        makespan_cycles: report.smp.makespan_cycles(),
        total_cycles: report.smp.total_cycles(),
        coalesced_calls: sw.drain.coalesced_calls,
        classic_calls: sw.classic_calls,
        transition_pairs: sw.drain.transition_pairs,
        transitions_per_call: (sw.world_calls + sw.world_returns) as f64 / report.completed as f64,
        hot_pair_transitions_per_call: hot.map(|p| p.transitions_per_call()).unwrap_or(2.0),
        slot_cycles: sw.drain.slot_cycles,
        spin_cycles: sw.drain.spin_cycles,
        dry_exits: sw.drain.dry_exits,
        saturated_exits: sw.drain.saturated_exits,
        epochs: sw.epochs.len(),
        converged: converged(&sw.epochs, FINAL_EPOCHS),
    }
}

fn write_point(out: &mut String, p: &Point) {
    let _ = write!(
        out,
        "      {{\n\
         \x20       \"name\": \"{}\",\n\
         \x20       \"completed\": {},\n\
         \x20       \"cycles_per_call\": {:.1},\n\
         \x20       \"makespan_cycles\": {},\n\
         \x20       \"total_cycles\": {},\n\
         \x20       \"coalesced_calls\": {},\n\
         \x20       \"classic_calls\": {},\n\
         \x20       \"transition_pairs\": {},\n\
         \x20       \"transitions_per_call\": {:.3},\n\
         \x20       \"hot_pair_transitions_per_call\": {:.3},\n\
         \x20       \"slot_cycles\": {},\n\
         \x20       \"spin_cycles\": {},\n\
         \x20       \"dry_exits\": {},\n\
         \x20       \"saturated_exits\": {},\n\
         \x20       \"epochs\": {},\n\
         \x20       \"converged\": {}\n\
         \x20     }}",
        p.name,
        p.completed,
        p.cycles_per_call,
        p.makespan_cycles,
        p.total_cycles,
        p.coalesced_calls,
        p.classic_calls,
        p.transition_pairs,
        p.transitions_per_call,
        p.hot_pair_transitions_per_call,
        p.slot_cycles,
        p.spin_cycles,
        p.dry_exits,
        p.saturated_exits,
        p.epochs,
        p.converged,
    );
}

/// Records the adaptive/skewed point with the obs plane on and writes
/// the combined Perfetto/recording document.
fn trace_run(trace_path: &str) {
    let (mut svc, worlds) = build_service(
        with_epochs(SwitchlessConfig::adaptive()),
        WORKERS,
        ObsConfig::ring(),
    );
    let zipf = Zipf::new(worlds.len(), ZIPF_S);
    let mut rng = SplitMix64::new(SEED);
    for _ in 0..CALLS_PER_POINT {
        svc.submit(draw_request(&mut rng, &zipf, &worlds, Workload::Skewed))
            .expect("dispatcher open while tracing");
    }
    svc.start();
    let report = svc.drain();
    let doc = trace_doc("switchless adaptive skewed", &report, FREQUENCY_GHZ)
        .expect("obs was enabled for the traced run");
    std::fs::write(trace_path, doc.render_json()).expect("write trace json");
    eprintln!("wrote {trace_path} ({} events)", doc.events.len());
}

fn main() {
    let mut out_path = "BENCH_switchless.json".to_string();
    let mut trace_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out needs a path")),
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            positional => out_path = positional.to_string(),
        }
    }

    let mut sweeps: Vec<(Workload, Vec<Point>)> = Vec::new();
    for workload in [Workload::Skewed, Workload::Uniform] {
        let mut points = Vec::new();
        for (name, cfg) in configs() {
            let p = run_point(name, cfg, workload, SEED, WORKERS);
            eprintln!(
                "{:>8} {:>10}  {:>6.0} cyc/call  {:.3} trans/call  hot {:.3}  \
                 coalesced {:>5}  dry/sat {:>4}/{:<4}",
                workload.name(),
                p.name,
                p.cycles_per_call,
                p.transitions_per_call,
                p.hot_pair_transitions_per_call,
                p.coalesced_calls,
                p.dry_exits,
                p.saturated_exits,
            );
            points.push(p);
        }
        sweeps.push((workload, points));
    }

    let cpc = |workload: Workload, name: &str| -> f64 {
        sweeps
            .iter()
            .find(|(w, _)| *w == workload)
            .and_then(|(_, ps)| ps.iter().find(|p| p.name == name))
            .map(|p| p.cycles_per_call)
            .expect("sweep point present")
    };

    // Acceptance 1: coalescing pays on the workload it is built for.
    let base_skewed = cpc(Workload::Skewed, "tuned-pr2");
    let adaptive_skewed = cpc(Workload::Skewed, "adaptive");
    let improvement_pct = (base_skewed - adaptive_skewed) / base_skewed * 100.0;
    eprintln!(
        "skewed cycles/call: tuned-pr2 {base_skewed:.0}, adaptive {adaptive_skewed:.0} \
         ({improvement_pct:.1}% fewer)"
    );
    assert!(
        improvement_pct >= MIN_IMPROVEMENT_PCT,
        "adaptive must spend >= {MIN_IMPROVEMENT_PCT}% fewer cycles/call than the \
         tuned-PR2 baseline on the skewed workload (got {improvement_pct:.1}%)"
    );

    // Acceptance 2: the hot pair amortizes below one transition per call
    // (classic is exactly two) under both controller modes.
    for name in ["fixed-16", "adaptive"] {
        let p = sweeps[0].1.iter().find(|p| p.name == name).unwrap();
        assert!(
            p.hot_pair_transitions_per_call < 1.0,
            "{name}: hot pair must pay < 1.0 transitions/call \
             (got {:.3})",
            p.hot_pair_transitions_per_call
        );
    }

    // Acceptance 3: nothing to coalesce, nothing lost.
    let base_uniform = cpc(Workload::Uniform, "tuned-pr2");
    let adaptive_uniform = cpc(Workload::Uniform, "adaptive");
    let uniform_delta_pct = (adaptive_uniform - base_uniform) / base_uniform * 100.0;
    eprintln!(
        "uniform cycles/call: tuned-pr2 {base_uniform:.0}, adaptive {adaptive_uniform:.0} \
         ({uniform_delta_pct:+.1}%)"
    );
    assert!(
        uniform_delta_pct <= UNIFORM_BAND_PCT,
        "adaptive must not regress more than {UNIFORM_BAND_PCT}% vs the baseline \
         on the uniform workload (got {uniform_delta_pct:+.1}%)"
    );

    // Acceptance 4: the controller settles on three distinct streams.
    // Single worker: one vCPU makes the virtual-time schedule fully
    // deterministic, so this asserts a *policy* property (the budget
    // fixed point exists and is reached) with no interleaving noise.
    let mut convergences = Vec::new();
    for seed in CONVERGENCE_SEEDS {
        let p = run_point(
            "adaptive",
            with_epochs(SwitchlessConfig::adaptive()),
            Workload::Skewed,
            seed,
            1,
        );
        eprintln!(
            "seed {seed:#x}: {} epochs, converged={}",
            p.epochs, p.converged
        );
        assert!(
            p.converged,
            "adaptive controller must converge (identical budget vectors over the \
             final {FINAL_EPOCHS} epochs) on seed {seed:#x}"
        );
        convergences.push((seed, p.epochs, p.converged));
    }

    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"benchmark\": \"xover switchless fast-path ablation\",\n  \
         \"calls_per_point\": {CALLS_PER_POINT},\n  \
         \"workers\": {WORKERS},\n  \
         \"zipf_exponent\": {ZIPF_S},\n  \
         \"improvement_pct_skewed_adaptive\": {improvement_pct:.1},\n  \
         \"uniform_delta_pct\": {uniform_delta_pct:.1},\n  \
         \"convergence\": [\n"
    );
    for (i, (seed, epochs, conv)) in convergences.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"seed\": {seed}, \"epochs\": {epochs}, \"converged\": {conv} }}"
        );
        out.push_str(if i + 1 < convergences.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"workloads\": [\n");
    for (i, (workload, points)) in sweeps.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"name\": \"{}\",\n      \"points\": [\n",
            workload.name()
        );
        for (j, p) in points.iter().enumerate() {
            write_point(&mut out, p);
            out.push_str(if j + 1 < points.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n    }");
        out.push_str(if i + 1 < sweeps.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, out).expect("write benchmark json");
    eprintln!("wrote {out_path}");
    if let Some(trace_path) = trace_out {
        trace_run(&trace_path);
    }
}
