//! Million-world scale-out harness: emit `BENCH_scale.json`.
//!
//! Sweeps the registered-world count 10³ → 10⁶ against the epoch table
//! and reports the numbers the PR's headline claims are made on:
//!
//! * **Flat lookup tail** — hot-set lookup p50/p99 (host nanoseconds,
//!   batch-of-64 samples, min of two interleaved passes to reject
//!   scheduler noise) must not grow with the registration count:
//!   p99 at every point ≤ 1.5× p99 at 10³ worlds. Asserted in-process
//!   and exported as `p99_flatness_ratio` for the CI gate.
//! * **Bounded resident memory** — after Zipf-skewed traffic and
//!   settled maintenance, the resident tree must track the *hot set*:
//!   `resident ≤ distinct worlds touched in the last eviction-window
//!   ticks + slack`, independent of how many worlds exist. Asserted
//!   per point; exported as `resident_bound_ok`.
//! * **Losslessness** — cold-tail worlds still resolve (refaulting
//!   transparently) and `live == resident + cold` at every point.
//! * **Service overhead** — a 4-worker [`WorldCallService`] point per
//!   sweep step (20k calls among 16 hot worlds with the full
//!   registration resident underneath) reporting virtual cycles/call,
//!   so call-path cost is visibly independent of table size.
//!
//! Traffic is Zipf(s = 1.4): skewed enough that a stable hot set
//! exists at every sweep size, so the reuse-distance histogram derives
//! a window far below the traffic length and eviction genuinely runs —
//! at s ≤ 1.2 the tail of a 10⁵-world sweep is so flat that the p90
//! reuse distance (hence the window) exceeds the whole trace.
//!
//! Usage: `scale [output-path] [--max-worlds N] [--trace-out PATH]`
//! (defaults `BENCH_scale.json`, 1_000_000; CI passes
//! `--max-worlds 100000`). With `--trace-out` the 10k-world service
//! point is repeated with the obs plane recording and written as a
//! combined Perfetto/recording document.

use std::fmt::Write as _;
use std::time::Instant;

use crossover::world::{Wid, WorldDescriptor};
use machine::rng::{SplitMix64, Zipf};
use runtime::report::percentile;
use runtime::{
    trace_doc, CallRequest, EpochWorldTable, ObsConfig, RuntimeConfig, WorldCallService,
};

const ZIPF_S: f64 = 1.4;
const SEED: u64 = 0x5CA1_E0DD;
/// Stamped lookups between maintenance passes during the traffic phase
/// (the stand-in for a worker's batch boundary).
const MAINTAIN_EVERY: usize = 1024;
/// Measured lookups in the timing phase, over the hot set only — cold
/// refaults are a different (writer-locked) path and would pollute the
/// read-path tail with what is really eviction-policy behavior.
const MEASURED: usize = 200_000;
const HOT_SET: usize = 512;
const BATCH: usize = 64;
/// Resident-bound slack: worlds stamped right at the window boundary
/// land on either side depending on sweep order.
const RESIDENT_SLACK: usize = 64;
const SERVICE_WORKERS: usize = 4;
const SERVICE_CALLS: u64 = 20_000;
const SERVICE_CALLEES: usize = 16;

fn world(i: u64) -> WorldDescriptor {
    WorldDescriptor::host_kernel((i + 1) << 12, 0xFFFF_8000)
}

struct Point {
    worlds: usize,
    traffic: usize,
    p50_ns: u64,
    p99_ns: u64,
    resident: usize,
    cold: usize,
    evictions: u64,
    refaults: u64,
    grace_reclaims: u64,
    window_ticks: u64,
    resident_bound: usize,
    resident_bound_ok: bool,
    cold_bytes: u64,
    cycles_per_call: f64,
}

/// Distinct ranks in the last `window` draws of the recorded stream —
/// the hot set the eviction policy is supposed to keep resident.
fn distinct_in_window(stream: &[u32], window: u64) -> usize {
    let take = (window as usize).min(stream.len());
    let mut seen = vec![
        false;
        1 + stream
            .iter()
            .rev()
            .take(take)
            .map(|&r| r as usize)
            .max()
            .unwrap_or(0)
    ];
    let mut distinct = 0;
    for &rank in stream.iter().rev().take(take) {
        if !seen[rank as usize] {
            seen[rank as usize] = true;
            distinct += 1;
        }
    }
    distinct
}

/// The service point: the full registration resident underneath, calls
/// among a small hot callee set on top. Returns virtual cycles/call.
fn service_point(n: usize) -> f64 {
    let report = service_report(n, ObsConfig::off());
    report.smp.total_cycles() as f64 / report.completed as f64
}

fn service_report(n: usize, obs: ObsConfig) -> runtime::ServiceReport {
    let mut svc = WorldCallService::new(RuntimeConfig {
        workers: SERVICE_WORKERS,
        queue_capacity: SERVICE_CALLS as usize + 1,
        obs,
        ..RuntimeConfig::default()
    });
    let mut callees: Vec<Wid> = Vec::new();
    for i in 0..n as u64 {
        let wid = svc.register_world(world(i)).expect("register world");
        if (i as usize) < SERVICE_CALLEES {
            callees.push(wid);
        }
    }
    let caller = svc
        .register_world(WorldDescriptor::host_user(0x9_0000_0000, 0x40_0000))
        .expect("register caller");
    let mut rng = SplitMix64::new(SEED ^ n as u64);
    for _ in 0..SERVICE_CALLS {
        let callee = callees[rng.below(SERVICE_CALLEES as u64) as usize];
        svc.submit(CallRequest::new(caller, callee, 200 + rng.below(600), 0))
            .expect("submit");
    }
    svc.start();
    let report = svc.drain();
    assert_eq!(
        report.completed, SERVICE_CALLS,
        "every service-point call completes at n={n}"
    );
    report
}

/// Re-runs the 10k-world service point with the obs plane recording
/// and writes the combined Perfetto/recording document.
fn trace_run(trace_path: &str) {
    let report = service_report(10_000, ObsConfig::ring());
    let doc =
        trace_doc("scale service point", &report, 3.4).expect("obs was enabled for the traced run");
    std::fs::write(trace_path, doc.render_json()).expect("write trace json");
    eprintln!("wrote {trace_path} ({} events)", doc.events.len());
}

fn run_point(n: usize) -> Point {
    let table = EpochWorldTable::new(SERVICE_WORKERS, usize::MAX >> 1);
    let wids: Vec<Wid> = (0..n as u64)
        .map(|i| table.create(world(i)).expect("register"))
        .collect();

    // Phase A: Zipf traffic over the whole registration, maintenance
    // interleaved the way worker batch boundaries interleave it. The
    // rank stream is recorded so the resident bound below is computed
    // from what the workload actually touched, not from a model.
    let traffic = (4 * n).max(200_000);
    let zipf = Zipf::new(n, ZIPF_S);
    let mut rng = SplitMix64::new(SEED ^ (n as u64).rotate_left(17));
    let mut stream: Vec<u32> = Vec::with_capacity(traffic);
    for i in 0..traffic {
        let rank = zipf.sample(&mut rng);
        stream.push(rank as u32);
        assert!(
            table.lookup_pinned(0, wids[rank]).is_some(),
            "live world rank {rank} must resolve"
        );
        if (i + 1) % MAINTAIN_EVERY == 0 {
            table.maintain();
        }
    }

    // Settle: two full sweep cycles with the tick frozen, so every
    // entry idle past the window is demoted before residency is judged.
    let full_cycle = table.bucket_count().div_ceil(64);
    for _ in 0..2 * full_cycle {
        table.maintain();
    }

    let health = table.health();
    let resident = table.resident_count();
    let cold = table.cold_count();
    assert_eq!(
        resident + cold,
        n,
        "every live world is resident or cold at n={n}"
    );
    let window = health.eviction_window;
    let resident_bound = if window == 0 {
        n + RESIDENT_SLACK // never calibrated: nothing may have evicted
    } else {
        distinct_in_window(&stream, window) + RESIDENT_SLACK
    };
    let resident_bound_ok = resident <= resident_bound;

    // Phase B: hot-set read-path timing. Two interleaved passes, min
    // per batch index, so a preempted batch does not fake a fat tail.
    let order: Vec<usize> = (0..MEASURED)
        .map(|_| rng.below(HOT_SET as u64) as usize)
        .collect();
    let batches = MEASURED / BATCH;
    let mut samples = vec![u64::MAX; batches];
    for _pass in 0..2 {
        for (b, sample) in samples.iter_mut().enumerate() {
            let start = Instant::now();
            for &rank in &order[b * BATCH..(b + 1) * BATCH] {
                assert!(table.lookup_pinned(0, wids[rank]).is_some());
            }
            let ns = start.elapsed().as_nanos() as u64 / BATCH as u64;
            *sample = (*sample).min(ns);
        }
    }
    samples.sort_unstable();
    let p50_ns = percentile(&samples, 50.0);
    let p99_ns = percentile(&samples, 99.0);

    // Losslessness probe: the coldest tail must still resolve.
    for &wid in wids.iter().rev().take(32) {
        assert!(
            table.lookup_pinned(0, wid).is_some(),
            "cold-tail world lost at n={n}"
        );
    }

    let health = table.health();
    let cycles_per_call = service_point(n);
    let point = Point {
        worlds: n,
        traffic,
        p50_ns,
        p99_ns,
        resident,
        cold,
        evictions: health.evictions,
        refaults: health.refaults,
        grace_reclaims: health.grace_reclaims,
        window_ticks: health.eviction_window,
        resident_bound,
        resident_bound_ok,
        cold_bytes: health.cold_bytes,
        cycles_per_call,
    };
    eprintln!(
        "n={n:>8}: p50 {p50_ns:>4}ns p99 {p99_ns:>4}ns  resident {resident:>7} \
         (bound {resident_bound:>7}) cold {cold:>7}  evict {ev} refault {rf} \
         window {w}  {cpc:.0} cyc/call",
        ev = health.evictions,
        rf = health.refaults,
        w = health.eviction_window,
        cpc = cycles_per_call,
    );
    point
}

fn main() {
    let mut out_path = String::from("BENCH_scale.json");
    let mut max_worlds = 1_000_000usize;
    let mut trace_out = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-worlds" => {
                max_worlds = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--max-worlds N");
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(args.get(i + 1).expect("--trace-out needs a path").clone());
                i += 2;
            }
            p => {
                out_path = p.to_string();
                i += 1;
            }
        }
    }

    let sweep: Vec<usize> = [1_000, 10_000, 100_000, 1_000_000]
        .into_iter()
        .filter(|&n| n <= max_worlds)
        .collect();
    assert!(!sweep.is_empty(), "--max-worlds below the smallest point");
    let points: Vec<Point> = sweep.into_iter().map(run_point).collect();

    // The headline: the lookup tail must not track the registration
    // count. Memory is judged per point (resident_bound_ok).
    let base_p99 = points[0].p99_ns.max(1);
    let flatness = points
        .iter()
        .map(|p| p.p99_ns as f64 / base_p99 as f64)
        .fold(0.0f64, f64::max);
    assert!(
        flatness <= 1.5,
        "hot-set p99 grew {flatness:.2}x from 10^3 worlds to the sweep's \
         worst point — the read path is not flat"
    );
    let all_bounded = points.iter().all(|p| p.resident_bound_ok);
    assert!(
        all_bounded,
        "resident entries exceeded the hot-set bound at some point"
    );
    for p in &points {
        assert!(
            p.worlds < 10_000 || p.evictions > 0,
            "no evictions at n={} — the bound was never exercised",
            p.worlds
        );
        assert!(
            p.worlds < 10_000 || p.refaults > 0,
            "no refaults at n={} — the cold path was never exercised",
            p.worlds
        );
    }

    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"benchmark\": \"xover million-world scale-out\",\n\
         \x20 \"zipf_s\": {ZIPF_S},\n\
         \x20 \"hot_set\": {HOT_SET},\n\
         \x20 \"measured_lookups\": {MEASURED},\n\
         \x20 \"service_workers\": {SERVICE_WORKERS},\n\
         \x20 \"service_calls\": {SERVICE_CALLS},\n\
         \x20 \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n\
             \x20     \"worlds\": {},\n\
             \x20     \"traffic\": {},\n\
             \x20     \"lookup_p50_ns\": {},\n\
             \x20     \"lookup_p99_ns\": {},\n\
             \x20     \"resident_entries\": {},\n\
             \x20     \"cold_entries\": {},\n\
             \x20     \"resident_bound\": {},\n\
             \x20     \"resident_bound_ok\": {},\n\
             \x20     \"evictions\": {},\n\
             \x20     \"refaults\": {},\n\
             \x20     \"grace_reclaims\": {},\n\
             \x20     \"eviction_window_ticks\": {},\n\
             \x20     \"cold_bytes\": {},\n\
             \x20     \"service_cycles_per_call\": {:.1}\n    }}{}\n",
            p.worlds,
            p.traffic,
            p.p50_ns,
            p.p99_ns,
            p.resident,
            p.cold,
            p.resident_bound,
            u8::from(p.resident_bound_ok),
            p.evictions,
            p.refaults,
            p.grace_reclaims,
            p.window_ticks,
            p.cold_bytes,
            p.cycles_per_call,
            if i + 1 < points.len() { "," } else { "" },
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"summary\": {{\n\
         \x20   \"p99_flatness_ratio\": {flatness:.3},\n\
         \x20   \"resident_bound_ok\": {}\n  }}\n}}\n",
        u8::from(all_bounded),
    );
    std::fs::write(&out_path, out).expect("write benchmark json");
    eprintln!("wrote {out_path} (flatness {flatness:.2}x, bounded {all_bounded})");
    if let Some(trace_path) = trace_out {
        trace_run(&trace_path);
    }
}
