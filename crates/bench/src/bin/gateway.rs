//! Async-gateway serving harness: emit `BENCH_gateway.json`.
//!
//! Drives the `xover-gateway` reactor with open-loop traffic
//! (`workloads::openloop`) and reports the numbers the PR's headline
//! claims are made on:
//!
//! * **Pipelined vs blocking** — the same Poisson arrival trace served
//!   two ways at equal worker count: through the gateway's submission
//!   rings (thousands of calls in flight, switchless channels engaged)
//!   and through a modeled blocking-submit baseline where each tenant
//!   keeps exactly one call outstanding and pays a wake/notify round
//!   trip per call. Open-loop throughput must be ≥ 2× blocking at 4
//!   workers; asserted in-process.
//! * **Overload sweep** — offered load swept past saturation at fixed
//!   ring/quota knobs. The p99 end-to-end latency of *admitted* calls
//!   must stay bounded (ring capacity and quota cap what an admitted
//!   call can wait behind) while shed counts grow monotonically with
//!   offered load — overload surfaces as explicit, attributed sheds,
//!   never as silent tail growth.
//! * **Conservation** — every enqueued submission is admitted or shed;
//!   every admitted call yields exactly one verdict and one delivered
//!   completion (`admitted == completed + dead_lettered` in this
//!   fault-free config). Asserted in-process, and reported as
//!   `lost_verdicts`/`duplicated_verdicts` for the CI gate.
//!
//! Usage: `gateway [output-path] [--trace-out PATH]` (default
//! `BENCH_gateway.json`). With `--trace-out` the 2× overload point is
//! re-run with the obs plane recording and the combined trace (worker
//! tracks + gateway admit/shed/batch track) written to the given path.

use std::fmt::Write as _;

use gateway::{
    gateway_trace_doc, Gateway, GatewayConfig, GatewayReport, TenantClass, TenantConfig,
};
use machine::rng::SplitMix64;
use runtime::{CallRequest, ObsConfig, RuntimeConfig, SwitchlessConfig, WorldCallService};
use workloads::openloop::{generate, Arrival, ArrivalProcess, OpenLoopConfig};

const FREQUENCY_GHZ: f64 = 3.4;
const WORKERS: usize = 4;
const TENANTS: u32 = 4;
const WORKING_SET_PAGES: u64 = 8;
const HORIZON_CYCLES: u64 = 3_000_000;
const SEED: u64 = 0x6A7E_BEEF;

/// Cycles a blocking submitter pays per call on top of service latency:
/// the submit-side block/wake round trip (two scheduler handoffs, an
/// IPI-ish kick and the cache damage of bouncing between client and
/// worker). The pipelined path pays this once per *ring doorbell*, i.e.
/// effectively never per call — that asymmetry, plus the coalescing the
/// deep pipeline enables, is exactly what the gateway exists to buy.
const BLOCKING_NOTIFY_CYCLES: u64 = 1_200;

/// Tenants × (user + kernel), working sets and channels everywhere.
fn build_service(
    config: RuntimeConfig,
) -> (
    WorldCallService,
    Vec<(crossover::world::Wid, crossover::world::Wid)>,
) {
    let mut svc = WorldCallService::new(config);
    let mut worlds = Vec::new();
    for t in 0..u64::from(TENANTS) {
        let vm = svc
            .create_vm(hypervisor::vm::VmConfig::named(&format!("gw-{t}")))
            .expect("create vm");
        let user = svc
            .register_guest_user(vm, 0x1000 * (t + 1), 0x40_0000)
            .expect("register user world");
        let kernel = svc
            .register_guest_kernel(vm, 0x10_0000 * (t + 1), 0xFFFF_8000)
            .expect("register kernel world");
        for &w in &[user, kernel] {
            svc.attach_working_set(w, vm, WORKING_SET_PAGES)
                .expect("attach working set");
            svc.attach_channel(w, vm).expect("attach channel");
        }
        worlds.push((user, kernel));
    }
    (svc, worlds)
}

/// Maps an open-loop arrival onto a call: the tenant's user world calls
/// a kernel world picked by the arrival's Zipf rank (its own kernel for
/// rank 0 half the callee space, cross-tenant otherwise), with a small
/// body so per-call overhead — the thing pipelining amortizes — stays
/// the dominant cost.
fn to_request(
    a: &Arrival,
    worlds: &[(crossover::world::Wid, crossover::world::Wid)],
    rng: &mut SplitMix64,
) -> CallRequest {
    let caller = worlds[a.tenant as usize].0;
    let callee = worlds[a.callee_rank % worlds.len()].1;
    CallRequest::new(caller, callee, a.work_cycles, a.work_cycles / 3)
        .with_touches(rng.below(WORKING_SET_PAGES / 2))
        .with_tenant(a.tenant)
}

fn arrivals(mean_gap_cycles: f64, bursty: bool) -> Vec<Arrival> {
    generate(&OpenLoopConfig {
        tenants: TENANTS,
        horizon_cycles: HORIZON_CYCLES,
        callees: TENANTS as usize,
        zipf_s: 1.0,
        work_cycles: (300, 800),
        process: if bursty {
            ArrivalProcess::BurstyOnOff {
                mean_gap_cycles: mean_gap_cycles / 4.0,
                on_cycles: HORIZON_CYCLES / 12,
                off_cycles: HORIZON_CYCLES / 4,
            }
        } else {
            ArrivalProcess::Poisson { mean_gap_cycles }
        },
        seed: SEED,
    })
}

fn service_config(calls: usize, switchless: SwitchlessConfig, obs: ObsConfig) -> RuntimeConfig {
    RuntimeConfig {
        workers: WORKERS,
        queue_capacity: calls + 16,
        batch_max: 32,
        switchless,
        obs,
        ..RuntimeConfig::default()
    }
}

/// Runs a trace through the ring-mode gateway.
fn run_gateway(trace: &[Arrival], tenants: Vec<TenantConfig>, obs: ObsConfig) -> GatewayReport {
    let (svc, worlds) = build_service(service_config(trace.len(), SwitchlessConfig::fixed(8), obs));
    let mut gw = Gateway::new(GatewayConfig::rings(tenants));
    let mut rng = SplitMix64::new(SEED ^ 0xFEED);
    for a in trace {
        gw.enqueue(a.tenant, a.at_cycles, to_request(a, &worlds, &mut rng));
    }
    gw.run(svc)
}

fn deep_tenants() -> Vec<TenantConfig> {
    (0..TENANTS)
        .map(|_| TenantConfig::new(TenantClass::Silver, 512, 4_096))
        .collect()
}

fn sweep_tenants() -> Vec<TenantConfig> {
    vec![
        TenantConfig::new(TenantClass::Gold, 64, 256),
        TenantConfig::new(TenantClass::Silver, 64, 256),
        TenantConfig::new(TenantClass::Silver, 64, 256),
        TenantConfig::new(TenantClass::Bronze, 64, 256),
    ]
}

/// The blocking-submit baseline, derived at equal worker count: the
/// same requests run classic (no channels — a blocking client can never
/// coalesce, it has exactly one call in flight), then each tenant's
/// calls chained serially with a notify round trip apiece. With one
/// outstanding call per tenant and as many workers as tenants, chains
/// never queue — the baseline's makespan is the slowest tenant's chain,
/// which is the best case for blocking submission.
fn blocking_baseline_makespan(trace: &[Arrival]) -> (u64, u64) {
    let (mut svc, worlds) = build_service(service_config(
        trace.len(),
        SwitchlessConfig::default(), // Off: classic per-call path
        ObsConfig::off(),
    ));
    let mut rng = SplitMix64::new(SEED ^ 0xFEED);
    for a in trace {
        svc.submit(to_request(a, &worlds, &mut rng))
            .expect("queue open");
    }
    svc.start();
    let report = svc.drain();
    let mut chain = vec![0u64; TENANTS as usize];
    for o in &report.outcomes {
        chain[o.request.tenant as usize] += o.latency_cycles + BLOCKING_NOTIFY_CYCLES;
    }
    let makespan = chain.iter().copied().max().unwrap_or(0);
    (makespan, report.completed)
}

/// (lost, duplicated) over the gateway's token space: every admitted
/// token must appear exactly once among delivered completions.
fn delivery_conservation(report: &GatewayReport) -> (u64, u64) {
    let mut seen: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    for t in &report.tenants {
        for c in t.completions.iter() {
            *seen.entry(c.token).or_insert(0) += 1;
        }
    }
    let dup = seen.values().filter(|&&c| c > 1).count() as u64;
    let lost = report.admitted.saturating_sub(seen.len() as u64);
    (lost, dup)
}

struct SweepRow {
    label: &'static str,
    offered: u64,
    admitted: u64,
    shed: u64,
    shed_ring_full: u64,
    shed_busy: u64,
    p50_e2e: u64,
    p99_e2e: u64,
    makespan: u64,
}

fn main() {
    let mut out_path = "BENCH_gateway.json".to_string();
    let mut trace_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out needs a path")),
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            positional => out_path = positional.to_string(),
        }
    }

    // ---- Part A: pipelined open-loop vs blocking submission. ---------
    // Offered load comfortably under capacity, so nothing sheds and the
    // comparison is throughput of the *same completed work*.
    let trace = arrivals(1_600.0, false);
    let gw = run_gateway(&trace, deep_tenants(), ObsConfig::off());
    gw.check_conservation().expect("gateway conservation");
    assert_eq!(gw.shed, 0, "part A must run below the shed point");
    assert_eq!(gw.admitted, trace.len() as u64);
    let (lost, dup) = delivery_conservation(&gw);
    assert_eq!((lost, dup), (0, 0), "part A delivery conservation");
    assert_eq!(
        gw.admitted,
        gw.service.completed + gw.service.dead_lettered,
        "admitted calls resolve to completed or dead-lettered"
    );
    let (blocking_makespan, blocking_completed) = blocking_baseline_makespan(&trace);
    assert_eq!(blocking_completed, trace.len() as u64);
    let pipelined_makespan = gw.service.smp.makespan_cycles();
    let pipelined_tput = gw.admitted as f64 / pipelined_makespan as f64;
    let blocking_tput = blocking_completed as f64 / blocking_makespan as f64;
    let speedup = pipelined_tput / blocking_tput;
    assert!(
        speedup >= 2.0,
        "pipelined submission must be >= 2x blocking at {WORKERS} workers, got {speedup:.2}x"
    );
    let coalesced = gw.service.outcomes.iter().filter(|o| o.coalesced).count() as u64;
    eprintln!(
        "part A: {} calls, pipelined makespan {} vs blocking {} ({speedup:.2}x), \
         {coalesced} coalesced, p99 e2e {}",
        gw.admitted,
        pipelined_makespan,
        blocking_makespan,
        gw.e2e_percentile(99.0)
    );

    // ---- Part B: overload sweep at fixed ring/quota knobs. -----------
    // Mean per-tenant inter-arrival gaps chosen around the measured
    // service rate: 0.5x offers half the pool's capacity, 4x more than
    // double-saturates it. Same horizon, same knobs — only offered load
    // moves.
    let mut rows: Vec<SweepRow> = Vec::new();
    for (label, gap, bursty) in [
        ("0.5x", 1_400.0, false),
        ("1x", 700.0, false),
        ("2x", 350.0, false),
        ("4x", 175.0, false),
        ("burst", 700.0, true),
    ] {
        let trace = arrivals(gap, bursty);
        let report = run_gateway(&trace, sweep_tenants(), ObsConfig::off());
        report.check_conservation().expect("sweep conservation");
        let (lost, dup) = delivery_conservation(&report);
        assert_eq!((lost, dup), (0, 0), "sweep {label}: delivery conservation");
        assert_eq!(
            report.admitted,
            report.service.completed + report.service.dead_lettered,
            "sweep {label}: verdict conservation"
        );
        eprintln!(
            "part B {label:>5}: offered {:>6} admitted {:>6} shed {:>6} \
             (ring-full {:>6}, busy {:>4})  p99 e2e {:>9}",
            report.submitted,
            report.admitted,
            report.shed,
            report.shed_ring_full,
            report.shed_busy,
            report.e2e_percentile(99.0),
        );
        rows.push(SweepRow {
            label,
            offered: report.submitted,
            admitted: report.admitted,
            shed: report.shed,
            shed_ring_full: report.shed_ring_full,
            shed_busy: report.shed_busy,
            p50_e2e: report.e2e_percentile(50.0),
            p99_e2e: report.e2e_percentile(99.0),
            makespan: report.service.smp.makespan_cycles(),
        });
    }
    // Sheds must grow monotonically with offered load across the
    // Poisson points...
    for pair in rows[..4].windows(2) {
        assert!(
            pair[1].shed >= pair[0].shed,
            "shed counts must be monotone in offered load: {} ({}) then {} ({})",
            pair[0].shed,
            pair[0].label,
            pair[1].shed,
            pair[1].label
        );
    }
    assert!(
        rows[3].shed > 0,
        "4x offered load must overflow the rings somewhere"
    );
    // ...while the admitted-call p99 stays bounded. Ring capacity and
    // quota cap what an admitted call can sit behind (~ring_capacity
    // calls' worth of service, ≈320k cycles at these knobs), so once
    // admission control bites the tail goes *flat*: quadrupling offered
    // load past saturation must not move the admitted p99 by more than
    // a sliver, and nothing may approach horizon scale — the signature
    // of the unbounded queue this design exists to prevent.
    let saturated_p99 = rows[1].p99_e2e.max(1);
    for row in &rows[2..4] {
        assert!(
            row.p99_e2e <= saturated_p99 + saturated_p99 / 2,
            "{}: admitted p99 {} grew past 1.5x the 1x-saturation p99 {} — \
             the tail is tracking offered load, not the ring bound",
            row.label,
            row.p99_e2e,
            saturated_p99
        );
    }
    for row in &rows {
        assert!(
            row.p99_e2e < HORIZON_CYCLES / 4,
            "{}: admitted p99 {} is horizon-scale — the bound is gone",
            row.label,
            row.p99_e2e
        );
    }

    // ---- Emit the JSON document. -------------------------------------
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"benchmark\": \"xover async tenant gateway\",\n\
         \x20 \"workers\": {WORKERS},\n\
         \x20 \"tenants\": {TENANTS},\n\
         \x20 \"pipelined_vs_blocking\": {{\n\
         \x20   \"calls\": {},\n\
         \x20   \"pipelined_makespan_cycles\": {pipelined_makespan},\n\
         \x20   \"blocking_makespan_cycles\": {blocking_makespan},\n\
         \x20   \"pipelined_calls_per_mcycle\": {:.2},\n\
         \x20   \"blocking_calls_per_mcycle\": {:.2},\n\
         \x20   \"pipelined_vs_blocking_x\": {speedup:.2},\n\
         \x20   \"coalesced_calls\": {coalesced},\n\
         \x20   \"blocking_notify_cycles\": {BLOCKING_NOTIFY_CYCLES},\n\
         \x20   \"lost_verdicts\": {lost},\n\
         \x20   \"duplicated_verdicts\": {dup}\n\
         \x20 }},\n  \"overload_sweep\": [\n",
        gw.admitted,
        pipelined_tput * 1e6,
        blocking_tput * 1e6,
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n\
             \x20     \"offered\": \"{}\",\n\
             \x20     \"submitted\": {},\n\
             \x20     \"admitted\": {},\n\
             \x20     \"shed\": {},\n\
             \x20     \"shed_ring_full\": {},\n\
             \x20     \"shed_busy\": {},\n\
             \x20     \"admitted_p50_e2e_cycles\": {},\n\
             \x20     \"admitted_p99_e2e_cycles\": {},\n\
             \x20     \"makespan_cycles\": {}\n\
             \x20   }}",
            r.label,
            r.offered,
            r.admitted,
            r.shed,
            r.shed_ring_full,
            r.shed_busy,
            r.p50_e2e,
            r.p99_e2e,
            r.makespan,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, out).expect("write benchmark json");
    eprintln!("wrote {out_path}");

    if let Some(trace_path) = trace_out {
        let trace = arrivals(350.0, false);
        let report = run_gateway(&trace, sweep_tenants(), ObsConfig::ring());
        let doc = gateway_trace_doc("gateway overload 2x", &report, FREQUENCY_GHZ);
        std::fs::write(&trace_path, doc.render_json()).expect("write trace json");
        eprintln!("wrote {trace_path} ({} events)", doc.events.len());
    }
}
