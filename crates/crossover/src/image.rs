//! The world table's in-memory image.
//!
//! §3.2: "we place the world table in a region of memory that can be
//! accessed only by the highest privileged software." The
//! [`crate::table::WorldTable`] is the hypervisor's software view; this
//! module serializes it into actual simulated host-physical frames in the
//! Figure 5 record layout (P, WID, H/G, Ring, EPTP, PTP, PC), and
//! implements the *hardware table walk* that the world-call unit performs
//! on a cache miss — a real read of physical memory, not a Rust map
//! lookup.

use hypervisor::platform::Platform;
use machine::mode::{Operation, Ring};
use mmu::addr::{Hpa, PAGE_SIZE};
use mmu::MmuError;

use crate::table::WorldTable;
use crate::world::{Wid, WorldContext, WorldEntry};

/// Bytes per serialized world-table record.
pub const RECORD_BYTES: u64 = 40;

/// Byte layout of one record:
/// `[P:1][pad:1][ring:1][hg:1][wid:8][eptp:8][ptp:8][pc:8][pad:4]`.
const P_OFF: u64 = 0;
const RING_OFF: u64 = 2;
const HG_OFF: u64 = 3;
const WID_OFF: u64 = 4;
const EPTP_OFF: u64 = 12;
const PTP_OFF: u64 = 20;
const PC_OFF: u64 = 28;

/// Errors from image operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageError {
    /// The region cannot hold this many worlds.
    CapacityExceeded {
        /// Worlds in the table.
        worlds: usize,
        /// Records the region can hold.
        capacity: usize,
    },
    /// A record contained an invalid field (memory corruption).
    CorruptRecord {
        /// Index of the bad record.
        index: usize,
    },
    /// Physical memory access failed.
    Mmu(MmuError),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::CapacityExceeded { worlds, capacity } => {
                write!(f, "{worlds} worlds exceed image capacity {capacity}")
            }
            ImageError::CorruptRecord { index } => write!(f, "corrupt record {index}"),
            ImageError::Mmu(e) => write!(f, "physical memory error: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

impl From<MmuError> for ImageError {
    fn from(e: MmuError) -> ImageError {
        ImageError::Mmu(e)
    }
}

/// A fixed physical region holding the serialized world table.
///
/// # Example
///
/// ```
/// use xover_crossover::image::WorldTableImage;
/// use xover_crossover::table::WorldTable;
/// use xover_crossover::world::WorldDescriptor;
/// use hypervisor::platform::Platform;
///
/// let mut platform = Platform::new_default();
/// let mut table = WorldTable::new();
/// let wid = table.create(WorldDescriptor::host_user(0x1000, 0xAA))?;
/// let image = WorldTableImage::allocate(&mut platform, 1);
/// image.sync(&table, &mut platform)?;
/// let entry = image.hardware_walk(&platform, wid)?.expect("present");
/// assert_eq!(entry.entry_point, 0xAA);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorldTableImage {
    base: Hpa,
    capacity: usize,
}

impl WorldTableImage {
    /// Allocates `pages` host frames for the image. The region belongs to
    /// the hypervisor: it is never mapped into any EPT, so no guest can
    /// reach it.
    pub fn allocate(platform: &mut Platform, pages: u64) -> WorldTableImage {
        let base = platform.phys_mut().alloc_frames(pages);
        WorldTableImage {
            base,
            capacity: (pages * PAGE_SIZE / RECORD_BYTES) as usize,
        }
    }

    /// Base host-physical address of the image.
    pub fn base(&self) -> Hpa {
        self.base
    }

    /// Records the region can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn record_addr(&self, index: usize) -> Hpa {
        self.base + index as u64 * RECORD_BYTES
    }

    /// Serializes the entire table into the region (the hypervisor does
    /// this after every create/delete).
    ///
    /// # Errors
    ///
    /// * [`ImageError::CapacityExceeded`] if the table has outgrown the
    ///   region.
    /// * [`ImageError::Mmu`] on unbacked memory.
    pub fn sync(&self, table: &WorldTable, platform: &mut Platform) -> Result<(), ImageError> {
        let entries: Vec<&WorldEntry> = table.iter().collect();
        if entries.len() > self.capacity {
            return Err(ImageError::CapacityExceeded {
                worlds: entries.len(),
                capacity: self.capacity,
            });
        }
        for (i, entry) in entries.iter().enumerate() {
            let mut rec = [0u8; RECORD_BYTES as usize];
            rec[P_OFF as usize] = 1;
            rec[RING_OFF as usize] = entry.context.ring.level();
            rec[HG_OFF as usize] = u8::from(entry.context.operation.is_guest());
            rec[WID_OFF as usize..WID_OFF as usize + 8]
                .copy_from_slice(&entry.wid.raw().to_le_bytes());
            rec[EPTP_OFF as usize..EPTP_OFF as usize + 8]
                .copy_from_slice(&entry.context.eptp.to_le_bytes());
            rec[PTP_OFF as usize..PTP_OFF as usize + 8]
                .copy_from_slice(&entry.context.ptp.to_le_bytes());
            rec[PC_OFF as usize..PC_OFF as usize + 8]
                .copy_from_slice(&entry.entry_point.to_le_bytes());
            platform.phys_mut().write(self.record_addr(i), &rec)?;
        }
        // Clear the record after the last entry so stale tails are not
        // walked (present bit 0 terminates the walk).
        if entries.len() < self.capacity {
            let zero = [0u8; RECORD_BYTES as usize];
            platform
                .phys_mut()
                .write(self.record_addr(entries.len()), &zero)?;
        }
        Ok(())
    }

    fn parse_record(rec: &[u8], index: usize) -> Result<Option<WorldEntry>, ImageError> {
        if rec[P_OFF as usize] == 0 {
            return Ok(None);
        }
        let ring =
            Ring::from_level(rec[RING_OFF as usize]).ok_or(ImageError::CorruptRecord { index })?;
        let operation = if rec[HG_OFF as usize] == 1 {
            Operation::NonRoot
        } else {
            Operation::Root
        };
        let read_u64 = |off: u64| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&rec[off as usize..off as usize + 8]);
            u64::from_le_bytes(b)
        };
        Ok(Some(WorldEntry {
            present: true,
            wid: Wid::from_raw(read_u64(WID_OFF)),
            context: WorldContext {
                operation,
                ring,
                eptp: read_u64(EPTP_OFF),
                ptp: read_u64(PTP_OFF),
            },
            entry_point: read_u64(PC_OFF),
        }))
    }

    /// The hardware table walk: scans physical memory records until the
    /// WID matches or a non-present record terminates the table.
    ///
    /// # Errors
    ///
    /// [`ImageError::CorruptRecord`] / [`ImageError::Mmu`] on bad memory.
    pub fn hardware_walk(
        &self,
        platform: &Platform,
        wid: Wid,
    ) -> Result<Option<WorldEntry>, ImageError> {
        for i in 0..self.capacity {
            let mut rec = [0u8; RECORD_BYTES as usize];
            platform.phys().read(self.record_addr(i), &mut rec)?;
            match Self::parse_record(&rec, i)? {
                None => return Ok(None),
                Some(entry) if entry.wid == wid => return Ok(Some(entry)),
                Some(_) => continue,
            }
        }
        Ok(None)
    }

    /// The inverted walk used to identify a caller: scans for a record
    /// matching `context`.
    ///
    /// # Errors
    ///
    /// [`ImageError::CorruptRecord`] / [`ImageError::Mmu`] on bad memory.
    pub fn hardware_walk_context(
        &self,
        platform: &Platform,
        context: &WorldContext,
    ) -> Result<Option<WorldEntry>, ImageError> {
        for i in 0..self.capacity {
            let mut rec = [0u8; RECORD_BYTES as usize];
            platform.phys().read(self.record_addr(i), &mut rec)?;
            match Self::parse_record(&rec, i)? {
                None => return Ok(None),
                Some(entry) if entry.context == *context => return Ok(Some(entry)),
                Some(_) => continue,
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldDescriptor;
    use hypervisor::vm::VmConfig;

    fn setup() -> (Platform, WorldTable, WorldTableImage) {
        let mut p = Platform::new_default();
        let vm = p.create_vm(VmConfig::named("t")).unwrap();
        let mut t = WorldTable::new();
        t.create(WorldDescriptor::guest_user(&p, vm, 0x1000, 0x40_0000).unwrap())
            .unwrap();
        t.create(WorldDescriptor::guest_kernel(&p, vm, 0x2000, 0xFFFF_8000).unwrap())
            .unwrap();
        t.create(WorldDescriptor::host_user(0x9000, 0x11)).unwrap();
        let img = WorldTableImage::allocate(&mut p, 1);
        img.sync(&t, &mut p).unwrap();
        (p, t, img)
    }

    #[test]
    fn image_round_trips_every_entry() {
        let (p, t, img) = setup();
        for entry in t.iter() {
            let walked = img.hardware_walk(&p, entry.wid).unwrap().unwrap();
            assert_eq!(&walked, entry);
            let by_ctx = img
                .hardware_walk_context(&p, &entry.context)
                .unwrap()
                .unwrap();
            assert_eq!(by_ctx.wid, entry.wid);
        }
    }

    #[test]
    fn absent_wid_walks_to_none() {
        let (p, _, img) = setup();
        assert_eq!(img.hardware_walk(&p, Wid::from_raw(999)).unwrap(), None);
    }

    #[test]
    fn deleting_and_resyncing_removes_the_record() {
        let (mut p, mut t, img) = setup();
        let victim = t.iter().next().unwrap().wid;
        t.delete(victim).unwrap();
        img.sync(&t, &mut p).unwrap();
        assert_eq!(img.hardware_walk(&p, victim).unwrap(), None);
        // Remaining worlds still resolve.
        for entry in t.iter() {
            assert!(img.hardware_walk(&p, entry.wid).unwrap().is_some());
        }
    }

    #[test]
    fn corrupt_ring_field_detected() {
        let (mut p, _, img) = setup();
        // Smash record 0's ring byte with an invalid level.
        let addr = img.base() + RING_OFF;
        p.phys_mut().write(addr, &[7]).unwrap();
        assert!(matches!(
            img.hardware_walk(&p, Wid::from_raw(1)),
            Err(ImageError::CorruptRecord { index: 0 })
        ));
    }

    #[test]
    fn capacity_enforced() {
        let mut p = Platform::new_default();
        let mut t = WorldTable::new();
        // A 1-record region.
        let img = WorldTableImage {
            base: p.phys_mut().alloc_frames(1),
            capacity: 1,
        };
        t.create(WorldDescriptor::host_user(0x1000, 0)).unwrap();
        img.sync(&t, &mut p).unwrap();
        t.create(WorldDescriptor::host_user(0x2000, 0)).unwrap();
        assert!(matches!(
            img.sync(&t, &mut p),
            Err(ImageError::CapacityExceeded {
                worlds: 2,
                capacity: 1
            })
        ));
    }
}
