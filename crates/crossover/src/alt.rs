//! The alternative call designs §3.3 considers and rejects, modeled so
//! the ablation benches can quantify the rejection.
//!
//! * **Asynchronous message passing** — the caller posts a request and the
//!   callee services it when scheduled. Cheap per message, but the reply
//!   latency includes the callee's scheduling delay, and the caller and
//!   callee run on different cores so the working set migrates ("not
//!   cache-friendly", §3.3).
//! * **Synchronous IPI** — the caller interrupts a core that must already
//!   be running the callee; binding callee to core requires a privileged
//!   scheduler operation per call.
//!
//! CrossOver's non-disruptive synchronous `world_call` avoids both: no
//! scheduler, no IPI, no cache migration.

use hypervisor::platform::Platform;
use hypervisor::sched::SchedModel;
use machine::trace::TransitionKind;

/// Cycles lost to cache/TLB working-set migration when the callee runs on
/// a different core (the data-intensive penalty of §3.3). Scaled by the
/// working-set size in cache lines.
pub const CACHE_MIGRATION_CYCLES_PER_LINE: u64 = 45;

/// Parameters of an alternative-design call.
#[derive(Debug, Clone, Copy)]
pub struct AltCallProfile {
    /// Working set the callee touches, in 64-byte cache lines.
    pub working_set_lines: u64,
    /// Cycles of actual service work at the callee.
    pub service_cycles: u64,
}

impl Default for AltCallProfile {
    fn default() -> AltCallProfile {
        AltCallProfile {
            working_set_lines: 64, // 4 KiB of shared arguments/results
            service_cycles: 626,   // a NULL-syscall-class body
        }
    }
}

/// Charges one **asynchronous message-passing** call round trip onto
/// `platform` and returns the cycles it cost.
///
/// The callee is woken by its own VM's scheduler (whose latency scales
/// with `sched`), services the request on another core, and the reply
/// wakes the caller back. Both hand-offs migrate the working set.
pub fn async_message_call(
    platform: &mut Platform,
    sched: &SchedModel,
    profile: AltCallProfile,
) -> u64 {
    let before = platform.cpu().meter().cycles();
    // Post the request (lock-free queue write + doorbell).
    platform.cpu_mut().charge_work(180, 25, "post request");
    // Callee side: scheduling delay before the message is seen.
    platform.cpu_mut().charge_work(
        sched.wakeup_latency_cycles(),
        sched.wakeup_latency_instructions(),
        "callee scheduling delay",
    );
    // Working set migrates to the callee's core.
    platform.cpu_mut().charge_work(
        profile.working_set_lines * CACHE_MIGRATION_CYCLES_PER_LINE,
        0,
        "working-set migration to callee",
    );
    platform
        .cpu_mut()
        .charge_work(profile.service_cycles, 200, "service");
    // Reply path: post + caller wakeup + migration back.
    platform.cpu_mut().charge_work(180, 25, "post reply");
    platform.cpu_mut().charge_work(
        sched.wakeup_latency_cycles(),
        sched.wakeup_latency_instructions(),
        "caller scheduling delay",
    );
    platform.cpu_mut().charge_work(
        profile.working_set_lines * CACHE_MIGRATION_CYCLES_PER_LINE,
        0,
        "working-set migration back",
    );
    platform.cpu().meter().cycles() - before
}

/// Charges one **synchronous IPI** call round trip and returns its cost.
///
/// Each call needs a privileged scheduler binding (a hypercall if made
/// from a guest) to guarantee the target core runs the callee, then an
/// IPI each way.
///
/// # Errors
///
/// Propagates hypercall failures when invoked from guest context.
pub fn sync_ipi_call(
    platform: &mut Platform,
    profile: AltCallProfile,
) -> Result<u64, hypervisor::HvError> {
    let before = platform.cpu().meter().cycles();
    // Privileged binding of callee to the target core (§3.3: "the caller
    // needs to invoke a privileged operation to the schedulers").
    if platform.cpu().mode().operation().is_guest() {
        platform.hypercall_roundtrip(0x20)?;
    } else {
        platform
            .cpu_mut()
            .charge_work(900, 160, "scheduler binding");
    }
    platform.cpu_mut().touch(TransitionKind::IpiSend);
    platform.cpu_mut().touch(TransitionKind::IpiReceive);
    // Working set migrates to the remote core.
    platform.cpu_mut().charge_work(
        profile.working_set_lines * CACHE_MIGRATION_CYCLES_PER_LINE,
        0,
        "working-set migration",
    );
    platform
        .cpu_mut()
        .charge_work(profile.service_cycles, 200, "service");
    platform.cpu_mut().touch(TransitionKind::IpiSend);
    platform.cpu_mut().touch(TransitionKind::IpiReceive);
    platform.cpu_mut().charge_work(
        profile.working_set_lines * CACHE_MIGRATION_CYCLES_PER_LINE,
        0,
        "working-set migration back",
    );
    Ok(platform.cpu().meter().cycles() - before)
}

/// Charges one CrossOver `world_call` round trip with the same service
/// profile, for comparison — same core, no migration, no scheduler.
pub fn crossover_call_equivalent(platform: &mut Platform, profile: AltCallProfile) -> u64 {
    let before = platform.cpu().meter().cycles();
    platform.cpu_mut().charge_work(30, 10, "save state");
    platform.cpu_mut().touch(TransitionKind::WorldCall);
    platform
        .cpu_mut()
        .charge_work(profile.service_cycles, 200, "service");
    platform.cpu_mut().touch(TransitionKind::WorldReturn);
    platform.cpu_mut().charge_work(30, 10, "restore state");
    platform.cpu().meter().cycles() - before
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_platform() -> Platform {
        Platform::new_default()
    }

    #[test]
    fn crossover_beats_async_on_an_idle_system() {
        let mut p = host_platform();
        let profile = AltCallProfile::default();
        let asy = async_message_call(&mut p, &SchedModel::idle(), profile);
        let sync = crossover_call_equivalent(&mut p, profile);
        assert!(
            sync * 3 < asy,
            "async {asy} should dwarf crossover {sync} even when idle"
        );
    }

    #[test]
    fn async_latency_grows_with_load_crossover_does_not() {
        let mut p = host_platform();
        let profile = AltCallProfile::default();
        let idle = async_message_call(&mut p, &SchedModel::idle(), profile);
        let loaded = async_message_call(&mut p, &SchedModel::loaded(8), profile);
        assert!(loaded > idle * 5, "idle {idle}, loaded {loaded}");
        // CrossOver is scheduler-independent by construction.
        let c1 = crossover_call_equivalent(&mut p, profile);
        let c2 = crossover_call_equivalent(&mut p, profile);
        assert_eq!(c1, c2);
    }

    #[test]
    fn ipi_design_pays_binding_and_interrupt_costs() {
        let mut p = host_platform();
        let profile = AltCallProfile::default();
        let ipi = sync_ipi_call(&mut p, profile).unwrap();
        let sync = crossover_call_equivalent(&mut p, profile);
        assert!(sync * 3 < ipi, "ipi {ipi} vs crossover {sync}");
        assert_eq!(p.cpu().trace().count(TransitionKind::IpiSend), 2);
    }

    #[test]
    fn migration_penalty_scales_with_working_set() {
        let mut p = host_platform();
        let small = AltCallProfile {
            working_set_lines: 8,
            service_cycles: 626,
        };
        let large = AltCallProfile {
            working_set_lines: 1024,
            service_cycles: 626,
        };
        let a_small = async_message_call(&mut p, &SchedModel::idle(), small);
        let a_large = async_message_call(&mut p, &SchedModel::idle(), large);
        assert!(a_large > a_small + 2 * 900 * CACHE_MIGRATION_CYCLES_PER_LINE / 2);
    }
}
