//! The binding-table alternative design (§3.4, "put calling authorization
//! to hardware").
//!
//! Instead of callee-software authorization, a hypervisor-managed *binding
//! table* records which (caller, callee) pairs are permitted, and the
//! processor refuses `world_call`s with no binding. The paper keeps this
//! out of the main design ("may further improve the performance of
//! authorization in the callee but may be less flexible"); this module
//! implements it as the ablation the benches compare against.

use std::collections::HashSet;

use hypervisor::platform::Platform;

use crate::call::{Direction, SwitchOutcome, WorldCallUnit};
use crate::table::WorldTable;
use crate::world::Wid;
use crate::WorldError;

/// The hardware-checked binding table.
///
/// # Example
///
/// ```
/// use xover_crossover::binding::BindingTable;
/// use xover_crossover::world::Wid;
/// # let (a, b) = xover_crossover::binding::test_wids();
///
/// let mut bindings = BindingTable::new();
/// assert!(!bindings.is_bound(a, b));
/// bindings.bind(a, b);
/// assert!(bindings.is_bound(a, b));
/// assert!(!bindings.is_bound(b, a), "bindings are directional");
/// ```
#[derive(Debug, Clone, Default)]
pub struct BindingTable {
    bindings: HashSet<(u64, u64)>,
}

impl BindingTable {
    /// Creates an empty binding table.
    pub fn new() -> BindingTable {
        BindingTable::default()
    }

    /// Number of registered bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Registers the directional binding `caller → callee`. Done once per
    /// pair, via the hypervisor ("this binding is needed only once
    /// between two worlds").
    pub fn bind(&mut self, caller: Wid, callee: Wid) {
        self.bindings.insert((caller.raw(), callee.raw()));
    }

    /// Revokes a binding.
    pub fn unbind(&mut self, caller: Wid, callee: Wid) {
        self.bindings.remove(&(caller.raw(), callee.raw()));
    }

    /// Whether `caller → callee` is bound.
    pub fn is_bound(&self, caller: Wid, callee: Wid) -> bool {
        self.bindings.contains(&(caller.raw(), callee.raw()))
    }

    /// Revokes every binding involving `wid` (world deletion).
    pub fn purge(&mut self, wid: Wid) {
        self.bindings
            .retain(|&(a, b)| a != wid.raw() && b != wid.raw());
    }
}

/// A `world_call` checked against the binding table *in hardware*: the
/// caller is identified, the binding verified (refusing before any
/// switch), and only then the world switch performed. The callee can skip
/// its software authorization entirely.
///
/// # Errors
///
/// * [`WorldError::NotBound`] if the pair has no binding.
/// * Whatever [`WorldCallUnit::world_call`] can raise.
pub fn bound_world_call(
    unit: &mut WorldCallUnit,
    bindings: &BindingTable,
    platform: &mut Platform,
    table: &WorldTable,
    caller: Wid,
    callee: Wid,
    direction: Direction,
) -> Result<SwitchOutcome, WorldError> {
    // The binding check happens before the switch, in parallel with the
    // table lookups on real hardware: it costs nothing extra in our cost
    // model (that is precisely its advantage over software auth).
    let bound = match direction {
        Direction::Call => bindings.is_bound(caller, callee),
        // Returns are implicitly permitted along an established binding.
        Direction::Return => bindings.is_bound(callee, caller),
    };
    if !bound {
        return Err(WorldError::NotBound { caller, callee });
    }
    unit.world_call(platform, table, callee, direction)
}

/// Test/doctest helper producing two distinct WIDs without a platform.
#[doc(hidden)]
pub fn test_wids() -> (Wid, Wid) {
    let mut table = WorldTable::new();
    let a = table
        .create(crate::world::WorldDescriptor::host_user(0x1000, 0))
        .expect("quota");
    let b = table
        .create(crate::world::WorldDescriptor::host_user(0x2000, 0))
        .expect("quota");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldDescriptor;
    use hypervisor::vm::VmConfig;
    use machine::mode::CpuMode;

    #[test]
    fn binding_lifecycle() {
        let (a, b) = test_wids();
        let mut t = BindingTable::new();
        t.bind(a, b);
        t.bind(b, a);
        assert_eq!(t.len(), 2);
        t.unbind(a, b);
        assert!(!t.is_bound(a, b));
        assert!(t.is_bound(b, a));
        t.purge(a);
        assert!(t.is_empty());
    }

    #[test]
    fn unbound_call_refused_before_any_switch() {
        let mut p = Platform::new_default();
        let vm1 = p.create_vm(VmConfig::default()).unwrap();
        let vm2 = p.create_vm(VmConfig::default()).unwrap();
        let mut table = WorldTable::new();
        let caller = table
            .create(WorldDescriptor::guest_user(&p, vm1, 0x1000, 0).unwrap())
            .unwrap();
        let callee = table
            .create(WorldDescriptor::guest_kernel(&p, vm2, 0x2000, 0).unwrap())
            .unwrap();
        let mut unit = WorldCallUnit::new();
        let bindings = BindingTable::new();
        p.vmentry(vm1).unwrap();
        p.cpu_mut().force_cr3(0x1000);
        let transitions = p.cpu().trace().len();
        let err = bound_world_call(
            &mut unit,
            &bindings,
            &mut p,
            &table,
            caller,
            callee,
            Direction::Call,
        )
        .unwrap_err();
        assert_eq!(err, WorldError::NotBound { caller, callee });
        assert_eq!(p.cpu().trace().len(), transitions, "no switch happened");
        assert_eq!(p.cpu().mode(), CpuMode::GUEST_USER);
    }

    #[test]
    fn bound_call_and_return_succeed() {
        let mut p = Platform::new_default();
        let vm1 = p.create_vm(VmConfig::default()).unwrap();
        let vm2 = p.create_vm(VmConfig::default()).unwrap();
        let mut table = WorldTable::new();
        let caller = table
            .create(WorldDescriptor::guest_user(&p, vm1, 0x1000, 0).unwrap())
            .unwrap();
        let callee = table
            .create(WorldDescriptor::guest_kernel(&p, vm2, 0x2000, 0).unwrap())
            .unwrap();
        let mut unit = WorldCallUnit::new();
        let mut bindings = BindingTable::new();
        bindings.bind(caller, callee);
        p.vmentry(vm1).unwrap();
        p.cpu_mut().force_cr3(0x1000);
        bound_world_call(
            &mut unit,
            &bindings,
            &mut p,
            &table,
            caller,
            callee,
            Direction::Call,
        )
        .unwrap();
        assert_eq!(p.cpu().mode(), CpuMode::GUEST_KERNEL);
        // Return along the same binding is permitted without a reverse
        // binding.
        bound_world_call(
            &mut unit,
            &bindings,
            &mut p,
            &table,
            callee,
            caller,
            Direction::Return,
        )
        .unwrap();
        assert_eq!(p.cpu().mode(), CpuMode::GUEST_USER);
    }
}
