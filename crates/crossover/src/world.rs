//! World identities: WIDs, contexts and descriptors.

use std::fmt;

use hypervisor::platform::Platform;
use hypervisor::vm::VmId;
use hypervisor::HvError;
use machine::mode::{CpuMode, Operation, Ring};

/// An unforgeable World ID (§3.2).
///
/// WIDs are allocated by the hypervisor from a monotonic counter and never
/// reused, so a deleted world's WID can never be spoofed by a later
/// registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Wid(u64);

impl Wid {
    /// Creates a WID from its raw value.
    ///
    /// Only hypervisor-side allocators (the [`crate::table::WorldTable`]
    /// and the sharded runtime table built on top of it) should mint
    /// WIDs; unforgeability comes from the table honouring only WIDs it
    /// allocated, not from hiding the constructor.
    pub fn from_raw(raw: u64) -> Wid {
        Wid(raw)
    }

    /// The raw value (register encoding of the WID).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Wid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wid:{}", self.0)
    }
}

/// The hardware-visible execution context that identifies a world: the
/// fields the IWT cache is keyed by (§5.1: "H/G, Ring, EPTP and PTP").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorldContext {
    /// Host or guest operation.
    pub operation: Operation,
    /// Privilege ring.
    pub ring: Ring,
    /// EPT pointer (0 for host-side worlds, which bypass the EPT).
    pub eptp: u64,
    /// Guest page-table root (the PTP field of the world table).
    pub ptp: u64,
}

impl WorldContext {
    /// The combined privilege mode of this context.
    pub fn mode(&self) -> CpuMode {
        CpuMode::new(self.operation, self.ring)
    }

    /// Captures the current context of the platform's CPU — what the
    /// `world_call` hardware reads to identify the caller.
    pub fn capture(platform: &Platform) -> WorldContext {
        let cpu = platform.cpu();
        WorldContext {
            operation: cpu.mode().operation(),
            ring: cpu.mode().ring(),
            eptp: cpu.eptp(),
            ptp: cpu.cr3(),
        }
    }
}

impl fmt::Display for WorldContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} eptp={:#x} ptp={:#x}]",
            self.mode(),
            self.eptp,
            self.ptp
        )
    }
}

/// Everything a namespace supplies when registering itself as a world:
/// its context plus its single entry-point address (§3.2: "each world has
/// only one entry point").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldDescriptor {
    /// The execution context.
    pub context: WorldContext,
    /// Guest-virtual entry point jumped to on every incoming call.
    pub entry_point: u64,
    /// Owning VM, used for quota accounting. Host-side worlds have none.
    pub owner: Option<VmId>,
}

impl WorldDescriptor {
    /// Descriptor for a guest *user* world in `vm` with page-table root
    /// `cr3` and entry point `entry`.
    ///
    /// # Errors
    ///
    /// [`HvError::NoSuchVm`] if `vm` is unknown.
    pub fn guest_user(
        platform: &Platform,
        vm: VmId,
        cr3: u64,
        entry: u64,
    ) -> Result<WorldDescriptor, HvError> {
        Ok(WorldDescriptor {
            context: WorldContext {
                operation: Operation::NonRoot,
                ring: Ring::Ring3,
                eptp: platform.eptp_of(vm)?,
                ptp: cr3,
            },
            entry_point: entry,
            owner: Some(vm),
        })
    }

    /// Descriptor for a guest *kernel* world in `vm`.
    ///
    /// # Errors
    ///
    /// [`HvError::NoSuchVm`] if `vm` is unknown.
    pub fn guest_kernel(
        platform: &Platform,
        vm: VmId,
        cr3: u64,
        entry: u64,
    ) -> Result<WorldDescriptor, HvError> {
        Ok(WorldDescriptor {
            context: WorldContext {
                operation: Operation::NonRoot,
                ring: Ring::Ring0,
                eptp: platform.eptp_of(vm)?,
                ptp: cr3,
            },
            entry_point: entry,
            owner: Some(vm),
        })
    }

    /// Descriptor for a host *user* world (e.g. HyperShell's shell, had
    /// the paper's security fix not moved it into a VM).
    pub fn host_user(cr3: u64, entry: u64) -> WorldDescriptor {
        WorldDescriptor {
            context: WorldContext {
                operation: Operation::Root,
                ring: Ring::Ring3,
                eptp: 0,
                ptp: cr3,
            },
            entry_point: entry,
            owner: None,
        }
    }

    /// Descriptor for a host *kernel* world.
    pub fn host_kernel(cr3: u64, entry: u64) -> WorldDescriptor {
        WorldDescriptor {
            context: WorldContext {
                operation: Operation::Root,
                ring: Ring::Ring0,
                eptp: 0,
                ptp: cr3,
            },
            entry_point: entry,
            owner: None,
        }
    }
}

/// One world-table entry (Figure 5's world table structure: P, WID, H/G,
/// Ring, EPTP, PTP, PC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldEntry {
    /// Present bit.
    pub present: bool,
    /// The world's id.
    pub wid: Wid,
    /// Execution context (H/G, Ring, EPTP, PTP).
    pub context: WorldContext,
    /// Entry-point PC.
    pub entry_point: u64,
}

/// Size of a packed [`WorldEntry`]: WID, EPTP, PTP and PC at 8 bytes
/// each plus one flags byte (present, H/G, ring).
pub const PACKED_ENTRY_BYTES: usize = 33;

impl WorldEntry {
    /// Serializes the entry into its compact fixed-width form — the
    /// record format cold worlds are demoted to when an evictable table
    /// pages them out. Stable across the round trip with
    /// [`WorldEntry::unpack`]; no pointers, no padding.
    pub fn pack(&self) -> [u8; PACKED_ENTRY_BYTES] {
        let mut out = [0u8; PACKED_ENTRY_BYTES];
        out[0..8].copy_from_slice(&self.wid.raw().to_le_bytes());
        out[8..16].copy_from_slice(&self.context.eptp.to_le_bytes());
        out[16..24].copy_from_slice(&self.context.ptp.to_le_bytes());
        out[24..32].copy_from_slice(&self.entry_point.to_le_bytes());
        let ring = match self.context.ring {
            Ring::Ring0 => 0u8,
            Ring::Ring1 => 1,
            Ring::Ring2 => 2,
            Ring::Ring3 => 3,
        };
        out[32] = u8::from(self.present)
            | (u8::from(matches!(self.context.operation, Operation::NonRoot)) << 1)
            | (ring << 2);
        out
    }

    /// Deserializes a record produced by [`WorldEntry::pack`].
    pub fn unpack(bytes: &[u8; PACKED_ENTRY_BYTES]) -> WorldEntry {
        let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let flags = bytes[32];
        WorldEntry {
            present: flags & 1 != 0,
            wid: Wid::from_raw(word(0)),
            context: WorldContext {
                operation: if flags & 2 != 0 {
                    Operation::NonRoot
                } else {
                    Operation::Root
                },
                ring: match (flags >> 2) & 3 {
                    0 => Ring::Ring0,
                    1 => Ring::Ring1,
                    2 => Ring::Ring2,
                    _ => Ring::Ring3,
                },
                eptp: word(8),
                ptp: word(16),
            },
            entry_point: word(24),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervisor::vm::VmConfig;

    #[test]
    fn context_capture_reflects_cpu() {
        let mut p = Platform::new_default();
        let vm = p.create_vm(VmConfig::default()).unwrap();
        p.vmentry(vm).unwrap();
        p.cpu_mut().force_cr3(0x123_4000);
        let ctx = WorldContext::capture(&p);
        assert_eq!(ctx.operation, Operation::NonRoot);
        assert_eq!(ctx.ring, Ring::Ring3);
        assert_eq!(ctx.ptp, 0x123_4000);
        assert_eq!(ctx.eptp, p.eptp_of(vm).unwrap());
    }

    #[test]
    fn guest_descriptors_pick_up_vm_eptp() {
        let mut p = Platform::new_default();
        let vm1 = p.create_vm(VmConfig::default()).unwrap();
        let vm2 = p.create_vm(VmConfig::default()).unwrap();
        let u = WorldDescriptor::guest_user(&p, vm1, 0x1000, 0x400000).unwrap();
        let k = WorldDescriptor::guest_kernel(&p, vm2, 0x2000, 0x800000).unwrap();
        assert_ne!(u.context.eptp, k.context.eptp);
        assert_eq!(u.context.ring, Ring::Ring3);
        assert_eq!(k.context.ring, Ring::Ring0);
        assert_eq!(u.owner, Some(vm1));
    }

    #[test]
    fn host_descriptors_have_no_ept() {
        let h = WorldDescriptor::host_user(0x9000, 0x1000);
        assert_eq!(h.context.eptp, 0);
        assert_eq!(h.owner, None);
        assert!(h.context.operation.is_host());
    }

    #[test]
    fn unknown_vm_rejected() {
        let p = Platform::new_default();
        assert!(WorldDescriptor::guest_user(&p, VmId::new(7), 0, 0).is_err());
    }

    #[test]
    fn wid_display() {
        assert_eq!(Wid::from_raw(5).to_string(), "wid:5");
        assert_eq!(Wid::from_raw(5).raw(), 5);
    }
}
