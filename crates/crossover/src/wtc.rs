//! The world-table caches of §5.1.
//!
//! Two small hardware caches sit next to the VMFUNC logic (Figure 5b):
//!
//! * the **WT Cache**, keyed by WID, used to find the *callee's* context
//!   during a `world_call`;
//! * the **IWT Cache** (inverted world table), keyed by the caller's
//!   hardware context (H/G, Ring, EPTP, PTP), used to identify the
//!   *caller*.
//!
//! Both are **software-managed**, like a software-filled TLB: on a miss
//! the hardware raises an exception and the hypervisor walks the world
//! table and fills the entry via `manage_wtc` (VMFUNC leaf 0x2). That
//! choice keeps the hardware trivial and lets the hypervisor pick fill
//! and eviction policy (§5.1).

use std::collections::HashMap;

use crate::world::{Wid, WorldContext, WorldEntry};

/// Statistics shared by both caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries installed by `manage_wtc` fill.
    pub fills: u64,
    /// Entries removed by invalidation.
    pub invalidations: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default capacity of each world-table cache. The paper sizes them as
/// "two small world table caches"; 32 entries comfortably holds every
/// world of the evaluated systems.
pub const DEFAULT_WTC_CAPACITY: usize = 32;

/// The WID-keyed cache used for callee lookup.
#[derive(Debug, Clone)]
pub struct WtCache {
    entries: HashMap<u64, WorldEntry>,
    order: Vec<u64>,
    capacity: usize,
    stats: CacheStats,
}

impl WtCache {
    /// Creates an empty cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> WtCache {
        assert!(capacity > 0, "capacity must be positive");
        WtCache {
            entries: HashMap::new(),
            order: Vec::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hardware lookup by WID.
    pub fn lookup(&mut self, wid: Wid) -> Option<WorldEntry> {
        match self.entries.get(&wid.raw()) {
            Some(e) => {
                self.stats.hits += 1;
                Some(*e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// `manage_wtc` fill operation.
    pub fn fill(&mut self, entry: WorldEntry) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&entry.wid.raw()) {
            if let Some(oldest) = self.order.first().copied() {
                self.order.remove(0);
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        if self.entries.insert(entry.wid.raw(), entry).is_none() {
            self.order.push(entry.wid.raw());
        }
        self.stats.fills += 1;
    }

    /// `manage_wtc` invalidate operation (world deleted).
    pub fn invalidate(&mut self, wid: Wid) {
        if self.entries.remove(&wid.raw()).is_some() {
            self.order.retain(|&w| w != wid.raw());
            self.stats.invalidations += 1;
        }
    }
}

/// The context-keyed inverted cache used for caller identification.
#[derive(Debug, Clone)]
pub struct IwtCache {
    entries: HashMap<WorldContext, Wid>,
    order: Vec<WorldContext>,
    capacity: usize,
    stats: CacheStats,
}

impl IwtCache {
    /// Creates an empty cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> IwtCache {
        assert!(capacity > 0, "capacity must be positive");
        IwtCache {
            entries: HashMap::new(),
            order: Vec::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hardware lookup by caller context.
    pub fn lookup(&mut self, context: &WorldContext) -> Option<Wid> {
        match self.entries.get(context) {
            Some(w) => {
                self.stats.hits += 1;
                Some(*w)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// `manage_wtc` fill operation.
    pub fn fill(&mut self, context: WorldContext, wid: Wid) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&context) {
            if let Some(oldest) = self.order.first().copied() {
                self.order.remove(0);
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        if self.entries.insert(context, wid).is_none() {
            self.order.push(context);
        }
        self.stats.fills += 1;
    }

    /// `manage_wtc` invalidate operation.
    pub fn invalidate_wid(&mut self, wid: Wid) {
        let keys: Vec<WorldContext> = self
            .entries
            .iter()
            .filter(|(_, w)| **w == wid)
            .map(|(c, _)| *c)
            .collect();
        for k in keys {
            self.entries.remove(&k);
            self.order.retain(|c| c != &k);
            self.stats.invalidations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::mode::{Operation, Ring};

    fn ctx(ptp: u64) -> WorldContext {
        WorldContext {
            operation: Operation::NonRoot,
            ring: Ring::Ring0,
            eptp: 1,
            ptp,
        }
    }

    fn entry(wid: u64, ptp: u64) -> WorldEntry {
        WorldEntry {
            present: true,
            wid: Wid::from_raw(wid),
            context: ctx(ptp),
            entry_point: 0xE000,
        }
    }

    #[test]
    fn wt_hit_miss_fill() {
        let mut c = WtCache::new(4);
        assert!(c.lookup(Wid::from_raw(1)).is_none());
        c.fill(entry(1, 0x1000));
        assert!(c.lookup(Wid::from_raw(1)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wt_capacity_evicts_fifo() {
        let mut c = WtCache::new(2);
        c.fill(entry(1, 0x1000));
        c.fill(entry(2, 0x2000));
        c.fill(entry(3, 0x3000));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(Wid::from_raw(1)).is_none());
        assert!(c.lookup(Wid::from_raw(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn wt_invalidate_removes() {
        let mut c = WtCache::new(4);
        c.fill(entry(1, 0x1000));
        c.invalidate(Wid::from_raw(1));
        assert!(c.lookup(Wid::from_raw(1)).is_none());
        assert_eq!(c.stats().invalidations, 1);
        // Invalidating a missing entry is a no-op.
        c.invalidate(Wid::from_raw(9));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn iwt_lookup_by_context() {
        let mut c = IwtCache::new(4);
        assert!(c.lookup(&ctx(0x1000)).is_none());
        c.fill(ctx(0x1000), Wid::from_raw(7));
        assert_eq!(c.lookup(&ctx(0x1000)), Some(Wid::from_raw(7)));
        // A context differing only in PTP misses.
        assert!(c.lookup(&ctx(0x2000)).is_none());
    }

    #[test]
    fn iwt_invalidate_by_wid() {
        let mut c = IwtCache::new(4);
        c.fill(ctx(0x1000), Wid::from_raw(7));
        c.fill(ctx(0x2000), Wid::from_raw(8));
        c.invalidate_wid(Wid::from_raw(7));
        assert!(c.lookup(&ctx(0x1000)).is_none());
        assert_eq!(c.lookup(&ctx(0x2000)), Some(Wid::from_raw(8)));
    }

    #[test]
    fn iwt_capacity_evicts() {
        let mut c = IwtCache::new(2);
        c.fill(ctx(0x1000), Wid::from_raw(1));
        c.fill(ctx(0x2000), Wid::from_raw(2));
        c.fill(ctx(0x3000), Wid::from_raw(3));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&ctx(0x1000)).is_none());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refill_same_key_does_not_grow() {
        let mut c = WtCache::new(2);
        c.fill(entry(1, 0x1000));
        c.fill(entry(1, 0x1000));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().fills, 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_wt_panics() {
        WtCache::new(0);
    }
}
