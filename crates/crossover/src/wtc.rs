//! The world-table caches of §5.1, modelled as set-associative arrays.
//!
//! Two small hardware caches sit next to the VMFUNC logic (Figure 5b):
//!
//! * the **WT Cache**, keyed by WID, used to find the *callee's* context
//!   during a `world_call`;
//! * the **IWT Cache** (inverted world table), keyed by the caller's
//!   hardware context (H/G, Ring, EPTP, PTP), used to identify the
//!   *caller*.
//!
//! Both are **software-managed**, like a software-filled TLB: on a miss
//! the hardware raises an exception and the hypervisor walks the world
//! table and fills the entry via `manage_wtc` (VMFUNC leaf 0x2). That
//! choice keeps the hardware trivial and lets the hypervisor pick fill
//! and eviction policy (§5.1).
//!
//! The storage is hardware-faithful: a fixed geometry of `sets × ways`
//! slots allocated once at construction, indexed by a hash of the key.
//! A lookup probes the `ways` slots of one set — O(ways), no heap
//! traffic — and replacement is per-set LRU driven by a monotonic age
//! counter, exactly the structure a synthesized cache RAM would have.

use crate::world::{Wid, WorldContext, WorldEntry};

/// Statistics shared by both caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries installed by `manage_wtc` fill.
    pub fills: u64,
    /// Entries removed by invalidation.
    pub invalidations: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another cache's counters (for SMP-wide reporting).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.fills += other.fills;
        self.invalidations += other.invalidations;
        self.evictions += other.evictions;
    }

    /// Counter deltas since an earlier snapshot of the same cache. Counters
    /// are monotone, so this is exact per-interval attribution (used by the
    /// obs plane to charge hits/misses to individual requests).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            fills: self.fills - earlier.fills,
            invalidations: self.invalidations - earlier.invalidations,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// Default capacity of each world-table cache. The paper sizes them as
/// "two small world table caches"; 32 entries comfortably holds every
/// world of the evaluated systems.
pub const DEFAULT_WTC_CAPACITY: usize = 32;

/// Default associativity: 4-way, the sweet spot for small lookup
/// structures (conflict misses nearly vanish, the probe loop stays
/// four comparisons wide).
pub const DEFAULT_WTC_WAYS: usize = 4;

/// The sets × ways shape of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets; always a power of two so the set index is a mask.
    pub sets: usize,
    /// Slots per set probed on a lookup.
    pub ways: usize,
}

impl CacheGeometry {
    /// A geometry with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or `sets` is zero / not a power of two.
    pub fn new(sets: usize, ways: usize) -> CacheGeometry {
        assert!(ways > 0, "capacity must be positive");
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a positive power of two"
        );
        CacheGeometry { sets, ways }
    }

    /// The geometry holding at least `capacity` entries at the default
    /// associativity: `ways = min(DEFAULT_WTC_WAYS, capacity)` and the
    /// smallest power-of-two set count covering the rest. Small caps
    /// degrade gracefully — `capacity = 2` becomes one fully-associative
    /// 2-way set, preserving whole-cache LRU for tiny configurations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn from_capacity(capacity: usize) -> CacheGeometry {
        assert!(capacity > 0, "capacity must be positive");
        let ways = capacity.min(DEFAULT_WTC_WAYS);
        let sets = capacity.div_ceil(ways).next_power_of_two();
        CacheGeometry { sets, ways }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }
}

impl Default for CacheGeometry {
    fn default() -> CacheGeometry {
        CacheGeometry::from_capacity(DEFAULT_WTC_CAPACITY)
    }
}

/// SplitMix64 finalizer: a full-avalanche mix so low-entropy keys
/// (sequential WIDs, page-aligned PTPs) spread over the sets.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One slot of the array: a tag/data pair plus its LRU age stamp.
#[derive(Debug, Clone, Copy)]
struct Slot<K, V> {
    /// Age stamp from the owning set's tick counter; larger = more
    /// recently used.
    age: u64,
    line: Option<(K, V)>,
}

/// The generic set-associative array both caches (and their property-test
/// reference model) are built on. All storage is allocated in `new`;
/// lookups and fills touch only the `ways` slots of one set.
#[derive(Debug, Clone)]
struct SetAssoc<K: Copy + Eq, V: Copy> {
    geometry: CacheGeometry,
    /// `sets × ways` slots, set-major: set `s` owns
    /// `slots[s*ways .. (s+1)*ways]`.
    slots: Vec<Slot<K, V>>,
    /// Per-set monotonic tick, incremented on every touch of the set.
    ticks: Vec<u64>,
    len: usize,
    stats: CacheStats,
}

impl<K: Copy + Eq, V: Copy> SetAssoc<K, V> {
    fn new(geometry: CacheGeometry) -> SetAssoc<K, V> {
        SetAssoc {
            geometry,
            slots: vec![Slot { age: 0, line: None }; geometry.capacity()],
            ticks: vec![0; geometry.sets],
            len: 0,
            stats: CacheStats::default(),
        }
    }

    /// The slot range of the set a hashed key falls in.
    fn set_range(&self, hash: u64) -> std::ops::Range<usize> {
        let set = (mix64(hash) as usize) & (self.geometry.sets - 1);
        let base = set * self.geometry.ways;
        base..base + self.geometry.ways
    }

    fn touch(&mut self, hash: u64, slot: usize) {
        let set = (mix64(hash) as usize) & (self.geometry.sets - 1);
        self.ticks[set] += 1;
        self.slots[slot].age = self.ticks[set];
    }

    fn lookup(&mut self, hash: u64, key: &K) -> Option<V> {
        let range = self.set_range(hash);
        for i in range {
            if let Some((k, v)) = self.slots[i].line {
                if k == *key {
                    self.stats.hits += 1;
                    self.touch(hash, i);
                    return Some(v);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    fn fill(&mut self, hash: u64, key: K, value: V) {
        self.stats.fills += 1;
        let range = self.set_range(hash);
        // Refill of a cached key updates in place.
        for i in range.clone() {
            if matches!(self.slots[i].line, Some((k, _)) if k == key) {
                self.slots[i].line = Some((key, value));
                self.touch(hash, i);
                return;
            }
        }
        // Otherwise take a free way, or evict the set's LRU way.
        let victim = range
            .clone()
            .find(|&i| self.slots[i].line.is_none())
            .unwrap_or_else(|| {
                self.stats.evictions += 1;
                self.len -= 1;
                range
                    .min_by_key(|&i| self.slots[i].age)
                    .expect("ways is positive")
            });
        self.slots[victim].line = Some((key, value));
        self.len += 1;
        self.touch(hash, victim);
    }

    /// Removes `key` if present; returns whether an entry was dropped.
    fn invalidate(&mut self, hash: u64, key: &K) -> bool {
        let range = self.set_range(hash);
        for i in range {
            if matches!(self.slots[i].line, Some((k, _)) if k == *key) {
                self.slots[i].line = None;
                self.len -= 1;
                self.stats.invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Removes every entry whose value matches `pred` (cold path: full
    /// array sweep, used by value-keyed invalidation broadcasts).
    fn invalidate_values(&mut self, mut pred: impl FnMut(&V) -> bool) {
        for slot in &mut self.slots {
            if matches!(slot.line, Some((_, ref v)) if pred(v)) {
                slot.line = None;
                self.len -= 1;
                self.stats.invalidations += 1;
            }
        }
    }
}

/// Hash of a WID key.
fn wid_hash(wid: Wid) -> u64 {
    wid.raw()
}

/// Hash of a context key: fold every field that distinguishes worlds
/// through the mixer so EPTP-only or ring-only differences change sets.
fn context_hash(c: &WorldContext) -> u64 {
    let op = c.operation.is_host() as u64;
    let ring = c.ring.level() as u64;
    mix64(c.ptp ^ mix64(c.eptp ^ mix64(op << 2 | ring)))
}

/// The WID-keyed cache used for callee lookup.
#[derive(Debug, Clone)]
pub struct WtCache {
    array: SetAssoc<u64, WorldEntry>,
}

impl WtCache {
    /// Creates an empty cache holding at least `capacity` entries (see
    /// [`CacheGeometry::from_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> WtCache {
        WtCache::with_geometry(CacheGeometry::from_capacity(capacity))
    }

    /// Creates an empty cache with an explicit sets × ways shape.
    pub fn with_geometry(geometry: CacheGeometry) -> WtCache {
        WtCache {
            array: SetAssoc::new(geometry),
        }
    }

    /// The cache's sets × ways shape.
    pub fn geometry(&self) -> CacheGeometry {
        self.array.geometry
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.array.stats
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.array.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.array.len == 0
    }

    /// Hardware lookup by WID.
    pub fn lookup(&mut self, wid: Wid) -> Option<WorldEntry> {
        self.array.lookup(wid_hash(wid), &wid.raw())
    }

    /// `manage_wtc` fill operation.
    pub fn fill(&mut self, entry: WorldEntry) {
        self.array.fill(wid_hash(entry.wid), entry.wid.raw(), entry);
    }

    /// `manage_wtc` invalidate operation (world deleted).
    pub fn invalidate(&mut self, wid: Wid) {
        self.array.invalidate(wid_hash(wid), &wid.raw());
    }
}

/// The context-keyed inverted cache used for caller identification.
#[derive(Debug, Clone)]
pub struct IwtCache {
    array: SetAssoc<WorldContext, Wid>,
}

impl IwtCache {
    /// Creates an empty cache holding at least `capacity` entries (see
    /// [`CacheGeometry::from_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> IwtCache {
        IwtCache::with_geometry(CacheGeometry::from_capacity(capacity))
    }

    /// Creates an empty cache with an explicit sets × ways shape.
    pub fn with_geometry(geometry: CacheGeometry) -> IwtCache {
        IwtCache {
            array: SetAssoc::new(geometry),
        }
    }

    /// The cache's sets × ways shape.
    pub fn geometry(&self) -> CacheGeometry {
        self.array.geometry
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.array.stats
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.array.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.array.len == 0
    }

    /// Hardware lookup by caller context.
    pub fn lookup(&mut self, context: &WorldContext) -> Option<Wid> {
        self.array.lookup(context_hash(context), context)
    }

    /// `manage_wtc` fill operation.
    pub fn fill(&mut self, context: WorldContext, wid: Wid) {
        self.array.fill(context_hash(&context), context, wid);
    }

    /// `manage_wtc` invalidate operation. Keys are contexts but deletion
    /// is by WID, so this sweeps the whole array — fine for a cold path
    /// that runs only when a world is destroyed.
    pub fn invalidate_wid(&mut self, wid: Wid) {
        self.array.invalidate_values(|w| *w == wid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::mode::{Operation, Ring};

    fn ctx(ptp: u64) -> WorldContext {
        WorldContext {
            operation: Operation::NonRoot,
            ring: Ring::Ring0,
            eptp: 1,
            ptp,
        }
    }

    fn entry(wid: u64, ptp: u64) -> WorldEntry {
        WorldEntry {
            present: true,
            wid: Wid::from_raw(wid),
            context: ctx(ptp),
            entry_point: 0xE000,
        }
    }

    #[test]
    fn wt_hit_miss_fill() {
        let mut c = WtCache::new(4);
        assert!(c.lookup(Wid::from_raw(1)).is_none());
        c.fill(entry(1, 0x1000));
        assert!(c.lookup(Wid::from_raw(1)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wt_capacity_evicts_lru() {
        // Capacity 2 collapses to one fully-associative 2-way set, so
        // eviction order is observable: untouched-oldest goes first.
        let mut c = WtCache::new(2);
        assert_eq!(c.geometry(), CacheGeometry { sets: 1, ways: 2 });
        c.fill(entry(1, 0x1000));
        c.fill(entry(2, 0x2000));
        c.fill(entry(3, 0x3000));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(Wid::from_raw(1)).is_none());
        assert!(c.lookup(Wid::from_raw(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn wt_lookup_refreshes_lru_age() {
        let mut c = WtCache::new(2);
        c.fill(entry(1, 0x1000));
        c.fill(entry(2, 0x2000));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.lookup(Wid::from_raw(1)).is_some());
        c.fill(entry(3, 0x3000));
        assert!(c.lookup(Wid::from_raw(1)).is_some());
        assert!(c.lookup(Wid::from_raw(2)).is_none());
        assert!(c.lookup(Wid::from_raw(3)).is_some());
    }

    #[test]
    fn wt_default_geometry_is_set_associative() {
        let c = WtCache::new(DEFAULT_WTC_CAPACITY);
        assert_eq!(c.geometry(), CacheGeometry { sets: 8, ways: 4 });
        assert_eq!(c.geometry().capacity(), DEFAULT_WTC_CAPACITY);
    }

    #[test]
    fn wt_invalidate_removes() {
        let mut c = WtCache::new(4);
        c.fill(entry(1, 0x1000));
        c.invalidate(Wid::from_raw(1));
        assert!(c.lookup(Wid::from_raw(1)).is_none());
        assert_eq!(c.stats().invalidations, 1);
        // Invalidating a missing entry is a no-op.
        c.invalidate(Wid::from_raw(9));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn iwt_lookup_by_context() {
        let mut c = IwtCache::new(4);
        assert!(c.lookup(&ctx(0x1000)).is_none());
        c.fill(ctx(0x1000), Wid::from_raw(7));
        assert_eq!(c.lookup(&ctx(0x1000)), Some(Wid::from_raw(7)));
        // A context differing only in PTP misses.
        assert!(c.lookup(&ctx(0x2000)).is_none());
    }

    #[test]
    fn iwt_invalidate_by_wid() {
        let mut c = IwtCache::new(4);
        c.fill(ctx(0x1000), Wid::from_raw(7));
        c.fill(ctx(0x2000), Wid::from_raw(8));
        c.invalidate_wid(Wid::from_raw(7));
        assert!(c.lookup(&ctx(0x1000)).is_none());
        assert_eq!(c.lookup(&ctx(0x2000)), Some(Wid::from_raw(8)));
    }

    #[test]
    fn iwt_capacity_evicts() {
        let mut c = IwtCache::new(2);
        c.fill(ctx(0x1000), Wid::from_raw(1));
        c.fill(ctx(0x2000), Wid::from_raw(2));
        c.fill(ctx(0x3000), Wid::from_raw(3));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&ctx(0x1000)).is_none());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refill_same_key_does_not_grow() {
        let mut c = WtCache::new(2);
        c.fill(entry(1, 0x1000));
        c.fill(entry(1, 0x1000));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().fills, 2);
    }

    #[test]
    fn refill_updates_value_in_place() {
        let mut c = WtCache::new(4);
        c.fill(entry(1, 0x1000));
        c.fill(entry(1, 0x9000));
        assert_eq!(c.lookup(Wid::from_raw(1)).unwrap().context.ptp, 0x9000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_wt_panics() {
        WtCache::new(0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        CacheGeometry::new(3, 4);
    }
}
