//! The hop planner behind Table 3 (world-call classification) and the
//! path analysis behind Table 1 / Figure 2.
//!
//! A *hop* is one hardware-supported control transition. The planner does
//! a breadth-first search over the graph of worlds whose edges are the
//! transitions each [`Mechanism`] provides, so the hop counts in the
//! reproduced Table 3 are computed, not transcribed.
//!
//! ## Edge models
//!
//! * [`Mechanism::HardwareDirect`] — only the four single-instruction
//!   transitions of Figure 1: `syscall`/`sysret` within a domain and
//!   `vmcall`/`vmexit`+`vmentry` between a guest and the hypervisor.
//!   Pairs without a direct instruction are unreachable (the paper leaves
//!   those cells blank).
//! * [`Mechanism::Existing`] — what deployed software stacks compose:
//!   `syscall`/`sysret` within a domain, `vmcall` from the guest *kernel*
//!   (commodity guests do not let applications vmcall directly — they trap
//!   into their own kernel first), `vmentry` resuming a guest *kernel*.
//!   One semantic rule from the studied systems applies: a call whose
//!   target is another VM's **kernel syscall service** must arrive via
//!   that VM's user world (the dummy/stub-process pattern of
//!   ShadowContext, Proxos and MiniBox), because syscalls execute on
//!   behalf of a user context. This reproduces Table 3's
//!   `U_VM1 → K_VM2 = 4`.
//! * [`Mechanism::Vmfunc`] — adds the EPTP-switch edges of §4:
//!   `U_VMi → U_VMj` and `K_VMi → K_VMj` in one hop (same ring, same CR3
//!   trick). Host transitions are unchanged.
//! * [`Mechanism::CrossOver`] — `world_call` connects any two registered
//!   worlds directly: always one hop.

use std::collections::VecDeque;
use std::fmt;

use machine::mode::{CpuMode, Operation, Ring};

/// The protection domain a world lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// The host (VMX root) side.
    Host,
    /// Guest VM number `n`.
    Vm(u16),
    /// A nested (L2) VM: VM `l2` running under the guest hypervisor in
    /// L1 VM `l1` — the "cloud on cloud" setting of Xen-Blanket and
    /// CloudVisor that motivates §1. Every L2 trap is first taken by the
    /// L0 hypervisor and reflected to the L1 guest hypervisor (the
    /// Turtles model), which is exactly why nested cross-world calls are
    /// so expensive without CrossOver.
    Nested {
        /// The L1 VM hosting the guest hypervisor.
        l1: u16,
        /// The L2 VM's number within that guest hypervisor.
        l2: u16,
    },
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Host => write!(f, "host"),
            Domain::Vm(n) => write!(f, "VM{n}"),
            Domain::Nested { l1, l2 } => write!(f, "VM{l1}.{l2}"),
        }
    }
}

/// A world coordinate for planning purposes: domain + user/kernel +
/// address-space instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorldCoord {
    /// Which protection domain.
    pub domain: Domain,
    /// User or kernel side of that domain.
    pub ring: Ring,
    /// Address-space instance within the domain's user side: two host
    /// processes are distinct worlds even though they share a privilege
    /// mode (the `U_host <-> U_host` row of Table 3). Kernels are
    /// instance 0.
    pub instance: u16,
}

impl WorldCoord {
    /// Guest user world of VM `n` (`U_VMn`).
    pub fn guest_user(n: u16) -> WorldCoord {
        WorldCoord {
            domain: Domain::Vm(n),
            ring: Ring::Ring3,
            instance: 0,
        }
    }

    /// Guest kernel world of VM `n` (`K_VMn`).
    pub fn guest_kernel(n: u16) -> WorldCoord {
        WorldCoord {
            domain: Domain::Vm(n),
            ring: Ring::Ring0,
            instance: 0,
        }
    }

    /// Host user world (`U_host`), process instance 0.
    pub fn host_user() -> WorldCoord {
        WorldCoord {
            domain: Domain::Host,
            ring: Ring::Ring3,
            instance: 0,
        }
    }

    /// A distinct host user process (`U_host` instance `n`).
    pub fn host_user_instance(n: u16) -> WorldCoord {
        WorldCoord {
            domain: Domain::Host,
            ring: Ring::Ring3,
            instance: n,
        }
    }

    /// Host kernel world (`K_host`, the hypervisor).
    pub fn host_kernel() -> WorldCoord {
        WorldCoord {
            domain: Domain::Host,
            ring: Ring::Ring0,
            instance: 0,
        }
    }

    /// User world of nested VM `l2` under L1 VM `l1`.
    pub fn nested_user(l1: u16, l2: u16) -> WorldCoord {
        WorldCoord {
            domain: Domain::Nested { l1, l2 },
            ring: Ring::Ring3,
            instance: 0,
        }
    }

    /// Kernel world of nested VM `l2` under L1 VM `l1`.
    pub fn nested_kernel(l1: u16, l2: u16) -> WorldCoord {
        WorldCoord {
            domain: Domain::Nested { l1, l2 },
            ring: Ring::Ring0,
            instance: 0,
        }
    }

    /// The privilege mode of this coordinate.
    pub fn mode(&self) -> CpuMode {
        let op = match self.domain {
            Domain::Host => Operation::Root,
            Domain::Vm(_) | Domain::Nested { .. } => Operation::NonRoot,
        };
        CpuMode::new(op, self.ring)
    }

    /// Whether moving to `other` switches host/guest operation
    /// (Table 3's "H/G Swtch" column).
    pub fn crosses_hg(&self, other: &WorldCoord) -> bool {
        matches!(self.domain, Domain::Host) != matches!(other.domain, Domain::Host)
    }

    /// Whether this coordinate is inside a nested (L2) VM.
    pub fn is_nested(&self) -> bool {
        matches!(self.domain, Domain::Nested { .. })
    }

    /// Whether moving to `other` switches ring level ("Ring Swtch").
    pub fn crosses_ring(&self, other: &WorldCoord) -> bool {
        self.ring != other.ring
    }

    /// Whether moving to `other` switches address space ("Space Swtch").
    /// Distinct domains always imply distinct spaces; within a domain,
    /// user↔kernel share one space (the kernel is mapped high), while
    /// distinct user instances are distinct spaces.
    pub fn crosses_space(&self, other: &WorldCoord) -> bool {
        self.domain != other.domain
            || (self.ring.is_user() && other.ring.is_user() && self.instance != other.instance)
    }
}

impl fmt::Display for WorldCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = if self.ring.is_user() { "U" } else { "K" };
        if self.instance == 0 {
            write!(f, "{}_{}", side, self.domain)
        } else {
            write!(f, "{}_{}'{}", side, self.domain, self.instance)
        }
    }
}

/// The transition mechanism available to the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Single-instruction hardware transitions only.
    HardwareDirect,
    /// Composition of existing mechanisms as deployed systems do.
    Existing,
    /// Existing plus the VMFUNC cross-VM edges of §4.
    Vmfunc,
    /// Full CrossOver `world_call`.
    CrossOver,
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mechanism::HardwareDirect => write!(f, "HW"),
            Mechanism::Existing => write!(f, "SW"),
            Mechanism::Vmfunc => write!(f, "VMFUNC"),
            Mechanism::CrossOver => write!(f, "CrossOver"),
        }
    }
}

/// Computes minimal hop counts between worlds under each mechanism.
#[derive(Debug, Clone)]
pub struct HopPlanner {
    /// Number of guest VMs in the universe the planner searches over.
    vms: u16,
    /// Nested (L2) VMs per L1 VM (0 = flat virtualization).
    nested_per_vm: u16,
}

impl HopPlanner {
    /// Creates a planner over `vms` guest VMs plus the host.
    ///
    /// # Panics
    ///
    /// Panics if `vms` is zero (the paper's universe has at least one VM).
    pub fn new(vms: u16) -> HopPlanner {
        assert!(vms > 0, "need at least one VM");
        HopPlanner {
            vms,
            nested_per_vm: 0,
        }
    }

    /// Creates a planner whose L1 VMs each host `nested_per_vm` L2 VMs
    /// behind a guest hypervisor (the Xen-Blanket topology).
    ///
    /// # Panics
    ///
    /// Panics if `vms` is zero.
    pub fn with_nested(vms: u16, nested_per_vm: u16) -> HopPlanner {
        assert!(vms > 0, "need at least one VM");
        HopPlanner { vms, nested_per_vm }
    }

    /// All worlds in the universe (two host user processes so that
    /// cross-process host calls are expressible).
    pub fn worlds(&self) -> Vec<WorldCoord> {
        let mut out = vec![
            WorldCoord::host_user(),
            WorldCoord::host_user_instance(1),
            WorldCoord::host_kernel(),
        ];
        for n in 1..=self.vms {
            out.push(WorldCoord::guest_user(n));
            out.push(WorldCoord::guest_kernel(n));
            for l2 in 1..=self.nested_per_vm {
                out.push(WorldCoord::nested_user(n, l2));
                out.push(WorldCoord::nested_kernel(n, l2));
            }
        }
        out
    }

    fn neighbors(&self, from: WorldCoord, mech: Mechanism) -> Vec<WorldCoord> {
        let mut out = Vec::new();
        match mech {
            Mechanism::CrossOver => {
                // world_call: direct edge to every other world.
                for w in self.worlds() {
                    if w != from {
                        out.push(w);
                    }
                }
            }
            Mechanism::HardwareDirect => {
                match (from.domain, from.ring) {
                    // syscall / sysret within one address space.
                    (d, Ring::Ring3) => out.push(WorldCoord {
                        domain: d,
                        ring: Ring::Ring0,
                        instance: 0,
                    }),
                    (d, Ring::Ring0) => out.push(WorldCoord {
                        domain: d,
                        ring: Ring::Ring3,
                        instance: from.instance,
                    }),
                    _ => {}
                }
                match from.domain {
                    Domain::Vm(_) | Domain::Nested { .. } => {
                        // vmcall / vmexit from anywhere in non-root mode
                        // traps to L0 (VMCALL is legal at any CPL; nested
                        // exits are taken by L0 first).
                        out.push(WorldCoord::host_kernel());
                    }
                    Domain::Host => {
                        if from.ring.is_kernel() {
                            // vmentry resumes the interrupted guest
                            // context — user or kernel, L1 or L2.
                            for n in 1..=self.vms {
                                out.push(WorldCoord::guest_user(n));
                                out.push(WorldCoord::guest_kernel(n));
                                for l2 in 1..=self.nested_per_vm {
                                    out.push(WorldCoord::nested_user(n, l2));
                                    out.push(WorldCoord::nested_kernel(n, l2));
                                }
                            }
                        }
                    }
                }
            }
            Mechanism::Existing | Mechanism::Vmfunc => {
                if from.ring.is_user() {
                    // syscall into the domain kernel.
                    out.push(WorldCoord {
                        domain: from.domain,
                        ring: Ring::Ring0,
                        instance: 0,
                    });
                } else {
                    // The kernel can resume (or context-switch to) any
                    // user process of its domain.
                    out.push(WorldCoord {
                        domain: from.domain,
                        ring: Ring::Ring3,
                        instance: 0,
                    });
                    if matches!(from.domain, Domain::Host) {
                        out.push(WorldCoord {
                            domain: from.domain,
                            ring: Ring::Ring3,
                            instance: 1,
                        });
                    }
                }
                match from.domain {
                    Domain::Vm(n) => {
                        if from.ring.is_kernel() {
                            // Commodity stacks: the guest kernel traps to
                            // the hypervisor; applications first syscall
                            // into their own kernel.
                            out.push(WorldCoord::host_kernel());
                            // A guest *hypervisor* kernel can resume its
                            // own nested guests (via L0's reflection --
                            // charged as the entry hop).
                            for l2 in 1..=self.nested_per_vm {
                                out.push(WorldCoord::nested_kernel(n, l2));
                            }
                        }
                    }
                    Domain::Nested { .. } => {
                        if from.ring.is_kernel() {
                            // Every L2 exit is taken by L0 (the Turtles
                            // model); reaching the L1 guest hypervisor
                            // goes through it.
                            out.push(WorldCoord::host_kernel());
                        }
                    }
                    Domain::Host => {
                        if from.ring.is_kernel() {
                            // vmentry resumes the guest kernel, L1 or L2.
                            for n in 1..=self.vms {
                                out.push(WorldCoord::guest_kernel(n));
                                for l2 in 1..=self.nested_per_vm {
                                    out.push(WorldCoord::nested_kernel(n, l2));
                                }
                            }
                        }
                    }
                }
                if mech == Mechanism::Vmfunc {
                    // §4.2: same-ring cross-VM switches in one hop.
                    if let Domain::Vm(i) = from.domain {
                        for n in 1..=self.vms {
                            if n != i {
                                out.push(WorldCoord {
                                    domain: Domain::Vm(n),
                                    ring: from.ring,
                                    instance: 0,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Minimal number of hops from `from` to `to` under `mech`, or `None`
    /// if unreachable (blank cells of Table 3's HW column).
    pub fn hops(&self, from: WorldCoord, to: WorldCoord, mech: Mechanism) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        let raw = self.bfs(from, to, mech)?;
        // Nested-reflection rule: a call between two *different* L2 VMs
        // under existing mechanisms pays the L1 guest hypervisor's
        // reflection round trip (L0 -> L1 -> L0) on top of the direct
        // BFS path, because L0 cannot schedule another L2 without its
        // guest hypervisor's decision (the Turtles model).
        let nested_penalty = if matches!(mech, Mechanism::Existing | Mechanism::Vmfunc)
            && from.is_nested()
            && to.is_nested()
            && from.domain != to.domain
        {
            2
        } else {
            0
        };
        // The syscall-service rule (see module docs): with existing
        // mechanisms, a user world calling another VM's kernel *syscall
        // service* routes via that VM's user world.
        if mech == Mechanism::Existing
            && from.ring.is_user()
            && to.ring.is_kernel()
            && to.crosses_space(&from)
            && matches!(to.domain, Domain::Vm(_) | Domain::Nested { .. })
        {
            // One extra hop: the call detours through the target VM's
            // user-side dummy/stub process before trapping into its
            // kernel (U_VM1 → K_VM1 → K_host → [U_VM2] → K_VM2).
            return Some(raw + 1 + nested_penalty);
        }
        Some(raw + nested_penalty)
    }

    fn bfs(&self, from: WorldCoord, to: WorldCoord, mech: Mechanism) -> Option<u32> {
        let mut queue = VecDeque::new();
        let mut visited = std::collections::HashSet::new();
        queue.push_back((from, 0u32));
        visited.insert(from);
        while let Some((cur, dist)) = queue.pop_front() {
            if cur == to {
                return Some(dist);
            }
            for next in self.neighbors(cur, mech) {
                if visited.insert(next) {
                    queue.push_back((next, dist + 1));
                }
            }
        }
        None
    }

    /// The ten world-call types of Table 3, in the paper's row order.
    pub fn table3_pairs() -> [(WorldCoord, WorldCoord); 10] {
        [
            (WorldCoord::guest_user(1), WorldCoord::host_kernel()),
            (WorldCoord::guest_kernel(1), WorldCoord::host_kernel()),
            (WorldCoord::guest_user(1), WorldCoord::guest_kernel(1)),
            (WorldCoord::host_user(), WorldCoord::host_kernel()),
            (WorldCoord::guest_user(1), WorldCoord::host_user()),
            (WorldCoord::guest_kernel(1), WorldCoord::host_user()),
            (WorldCoord::host_user(), WorldCoord::host_user_instance(1)),
            (WorldCoord::guest_kernel(1), WorldCoord::guest_kernel(2)),
            (WorldCoord::guest_user(1), WorldCoord::guest_user(2)),
            (WorldCoord::guest_user(1), WorldCoord::guest_kernel(2)),
        ]
    }
}

impl Default for HopPlanner {
    /// A two-VM universe, matching the paper's evaluation setup.
    fn default() -> HopPlanner {
        HopPlanner::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> HopPlanner {
        HopPlanner::new(2)
    }

    #[test]
    fn crossover_is_always_one_hop() {
        let p = planner();
        for (from, to) in HopPlanner::table3_pairs() {
            if from == to {
                continue;
            }
            assert_eq!(
                p.hops(from, to, Mechanism::CrossOver),
                Some(1),
                "{from} -> {to}"
            );
        }
    }

    #[test]
    fn hardware_direct_matches_figure1() {
        let p = planner();
        // The four direct transitions.
        let direct = [
            (WorldCoord::guest_user(1), WorldCoord::host_kernel()),
            (WorldCoord::guest_kernel(1), WorldCoord::host_kernel()),
            (WorldCoord::guest_user(1), WorldCoord::guest_kernel(1)),
            (WorldCoord::host_user(), WorldCoord::host_kernel()),
        ];
        for (from, to) in direct {
            assert_eq!(
                p.hops(from, to, Mechanism::HardwareDirect),
                Some(1),
                "{from} -> {to}"
            );
        }
    }

    #[test]
    fn existing_mechanism_matches_table3_sw_column() {
        let p = planner();
        // Rows 5-10 of Table 3 (the indirect ones), paper's SW hop counts.
        let expected = [
            (WorldCoord::guest_user(1), WorldCoord::host_user(), 3),
            (WorldCoord::guest_kernel(1), WorldCoord::host_user(), 2),
            (WorldCoord::guest_kernel(1), WorldCoord::guest_kernel(2), 2),
            (WorldCoord::guest_user(1), WorldCoord::guest_user(2), 4),
            (WorldCoord::guest_user(1), WorldCoord::guest_kernel(2), 4),
        ];
        for (from, to, hops) in expected {
            assert_eq!(
                p.hops(from, to, Mechanism::Existing),
                Some(hops),
                "{from} -> {to}"
            );
        }
    }

    #[test]
    fn vmfunc_matches_table3_vmfunc_column() {
        let p = planner();
        assert_eq!(
            p.hops(
                WorldCoord::guest_kernel(1),
                WorldCoord::guest_kernel(2),
                Mechanism::Vmfunc
            ),
            Some(1)
        );
        assert_eq!(
            p.hops(
                WorldCoord::guest_user(1),
                WorldCoord::guest_user(2),
                Mechanism::Vmfunc
            ),
            Some(1)
        );
        assert_eq!(
            p.hops(
                WorldCoord::guest_user(1),
                WorldCoord::guest_kernel(2),
                Mechanism::Vmfunc
            ),
            Some(2),
            "one ring switch + one EPT switch (§4.2)"
        );
    }

    #[test]
    fn vmfunc_does_not_help_host_transitions() {
        let p = planner();
        for mech in [Mechanism::Existing, Mechanism::Vmfunc] {
            assert_eq!(
                p.hops(WorldCoord::guest_user(1), WorldCoord::host_user(), mech),
                Some(3),
                "VMFUNC cannot cross H/G mode"
            );
        }
    }

    #[test]
    fn same_world_is_zero_hops() {
        let p = planner();
        let w = WorldCoord::guest_user(1);
        for mech in [
            Mechanism::HardwareDirect,
            Mechanism::Existing,
            Mechanism::Vmfunc,
            Mechanism::CrossOver,
        ] {
            assert_eq!(p.hops(w, w, mech), Some(0));
        }
    }

    #[test]
    fn switch_classification_matches_table3() {
        // Row 1: U_VM1 <-> K_host crosses everything.
        let u1 = WorldCoord::guest_user(1);
        let khost = WorldCoord::host_kernel();
        assert!(u1.crosses_hg(&khost));
        assert!(u1.crosses_ring(&khost));
        assert!(u1.crosses_space(&khost));
        // Row 3: U_VM1 <-> K_VM1 crosses ring only.
        let k1 = WorldCoord::guest_kernel(1);
        assert!(!u1.crosses_hg(&k1));
        assert!(u1.crosses_ring(&k1));
        assert!(!u1.crosses_space(&k1));
        // Row 9: U_VM1 <-> U_VM2 crosses space only.
        let u2 = WorldCoord::guest_user(2);
        assert!(!u1.crosses_hg(&u2));
        assert!(!u1.crosses_ring(&u2));
        assert!(u1.crosses_space(&u2));
    }

    #[test]
    fn universe_size_scales() {
        let p = HopPlanner::new(4);
        assert_eq!(p.worlds().len(), 3 + 8);
        // Cross-VM hops are the same regardless of which pair.
        assert_eq!(
            p.hops(
                WorldCoord::guest_user(3),
                WorldCoord::guest_user(4),
                Mechanism::Vmfunc
            ),
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "at least one VM")]
    fn zero_vms_panics() {
        HopPlanner::new(0);
    }

    #[test]
    fn display_notation_matches_paper() {
        assert_eq!(WorldCoord::guest_user(1).to_string(), "U_VM1");
        assert_eq!(WorldCoord::guest_kernel(2).to_string(), "K_VM2");
        assert_eq!(WorldCoord::host_user().to_string(), "U_host");
        assert_eq!(WorldCoord::host_kernel().to_string(), "K_host");
    }

    #[test]
    fn nested_worlds_enumerate() {
        let p = HopPlanner::with_nested(2, 2);
        // 3 host-side + 2*(2 + 2*2) guest-side.
        assert_eq!(p.worlds().len(), 3 + 2 * (2 + 4));
        assert_eq!(WorldCoord::nested_user(1, 2).to_string(), "U_VM1.2");
    }

    #[test]
    fn nested_cross_vm_calls_are_brutally_indirect_without_crossover() {
        // Two L2 VMs under the same guest hypervisor (Xen-Blanket's
        // setting): an L2-user to L2-user call pays for the double
        // hypervisor stack, while CrossOver still connects them in one.
        let p = HopPlanner::with_nested(1, 2);
        let from = WorldCoord::nested_user(1, 1);
        let to = WorldCoord::nested_user(1, 2);
        let sw = p.hops(from, to, Mechanism::Existing).expect("reachable");
        assert!(sw >= 5, "expected >= 5 hops, got {sw}");
        assert_eq!(p.hops(from, to, Mechanism::CrossOver), Some(1));
    }

    #[test]
    fn l2_exits_reach_both_l0_and_the_guest_hypervisor() {
        let p = HopPlanner::with_nested(1, 1);
        let k2 = WorldCoord::nested_kernel(1, 1);
        assert_eq!(
            p.hops(k2, WorldCoord::host_kernel(), Mechanism::Existing),
            Some(1),
            "L0 takes every L2 exit"
        );
        assert_eq!(
            p.hops(k2, WorldCoord::guest_kernel(1), Mechanism::Existing),
            Some(2),
            "reflected to the L1 guest hypervisor via L0"
        );
    }

    #[test]
    fn flat_planner_is_unchanged_by_nested_support() {
        let flat = HopPlanner::new(2);
        let nested = HopPlanner::with_nested(2, 0);
        for (from, to) in HopPlanner::table3_pairs() {
            for mech in [Mechanism::Existing, Mechanism::Vmfunc, Mechanism::CrossOver] {
                assert_eq!(flat.hops(from, to, mech), nested.hops(from, to, mech));
            }
        }
    }
}
