//! The Current-World-ID prefetch register (§5.1 alternative design).
//!
//! "An alternative design that may further improve performance is to add
//! a hardware controlled register called Current World ID that stores the
//! world ID of the current context, reloaded by the CPU automatically
//! after context switches... This design, however, may be not feasible
//! when only a few worlds create their world entries. In that case,
//! prefetching a non-existed world at every context switch will cause
//! cache miss and useless world table walk."
//!
//! This module implements that register so the trade-off can be measured
//! instead of argued: on every context switch the register speculatively
//! resolves the new context against the world table (off the critical
//! path, but the table walk still costs work); on a `world_call` the
//! caller's WID is already at hand if the speculation hit.

use hypervisor::platform::Platform;
use machine::trace::TransitionKind;

use crate::table::{WorldLookup, WorldTable};
use crate::world::{Wid, WorldContext};

/// Statistics for the prefetch register.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Context switches where the speculative walk found a world.
    pub useful_walks: u64,
    /// Context switches where the walk found nothing (wasted work).
    pub useless_walks: u64,
    /// world_calls that used the prefetched WID (skipping the IWT path).
    pub register_hits: u64,
    /// world_calls where the register was stale or empty.
    pub register_misses: u64,
}

/// The hardware Current-World-ID register.
///
/// # Example
///
/// ```
/// use xover_crossover::prefetch::CurrentWidRegister;
/// let reg = CurrentWidRegister::new();
/// assert!(reg.current().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CurrentWidRegister {
    current: Option<(WorldContext, Wid)>,
    stats: PrefetchStats,
}

/// Cycles of the speculative world-table walk performed off the critical
/// path at each context switch. Cheaper than the fault path (no trap) but
/// not free — it competes for the table-walker.
pub const SPECULATIVE_WALK_CYCLES: u64 = 180;
/// Instructions of the microcoded walk.
pub const SPECULATIVE_WALK_INSTRUCTIONS: u64 = 0;

impl CurrentWidRegister {
    /// Creates an empty register.
    pub fn new() -> CurrentWidRegister {
        CurrentWidRegister::default()
    }

    /// The currently latched (context, WID), if any.
    pub fn current(&self) -> Option<(WorldContext, Wid)> {
        self.current
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Hardware hook: the CPU changed context (CR3 write / VMEntry /
    /// world switch). Speculatively resolves the new context.
    pub fn on_context_switch<T: WorldLookup>(&mut self, platform: &mut Platform, table: &T) {
        platform.cpu_mut().charge_work(
            SPECULATIVE_WALK_CYCLES,
            SPECULATIVE_WALK_INSTRUCTIONS,
            "speculative world-table walk",
        );
        let ctx = WorldContext::capture(platform);
        match table.wid_of(&ctx) {
            Some(wid) => {
                self.stats.useful_walks += 1;
                self.current = Some((ctx, wid));
            }
            None => {
                self.stats.useless_walks += 1;
                self.current = None;
            }
        }
    }

    /// Hardware hook: a `world_call` needs the caller's WID. Returns it
    /// instantly when the register is valid for the current context;
    /// otherwise the caller must take the normal IWT path (and pay the
    /// miss fault if that also misses).
    pub fn caller_wid(&mut self, platform: &Platform) -> Option<Wid> {
        let ctx = WorldContext::capture(platform);
        match self.current {
            Some((latched, wid)) if latched == ctx => {
                self.stats.register_hits += 1;
                Some(wid)
            }
            _ => {
                self.stats.register_misses += 1;
                None
            }
        }
    }

    /// Total cycles spent on speculative walks so far (for reports).
    pub fn walk_cycles_spent(&self) -> u64 {
        (self.stats.useful_walks + self.stats.useless_walks) * SPECULATIVE_WALK_CYCLES
    }
}

/// Simulates a run of `context_switches` switches across `worlds_mapped`
/// of `processes` total address spaces, returning (prefetch cycles spent,
/// IWT-fault cycles that on-demand filling would have spent). This is the
/// quantitative form of §5.1's feasibility argument.
pub fn prefetch_tradeoff(
    platform: &mut Platform,
    table: &WorldTable,
    registered_cr3s: &[u64],
    unregistered_cr3s: &[u64],
    context_switches: u64,
) -> (u64, u64) {
    let mut reg = CurrentWidRegister::new();
    let all: Vec<u64> = registered_cr3s
        .iter()
        .chain(unregistered_cr3s.iter())
        .copied()
        .collect();
    for i in 0..context_switches {
        let cr3 = all[(i as usize) % all.len()];
        platform.cpu_mut().force_cr3(cr3);
        reg.on_context_switch(platform, table);
    }
    let prefetch_cost = reg.walk_cycles_spent();
    // On-demand: each *registered* world faults once, ever.
    let miss_fault = platform
        .cpu()
        .cost_model()
        .price(TransitionKind::WtcMissFault)
        .cycles;
    let fill = platform
        .cpu()
        .cost_model()
        .price(TransitionKind::WtcFill)
        .cycles;
    let on_demand_cost = registered_cr3s.len() as u64 * (miss_fault + fill);
    (prefetch_cost, on_demand_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldDescriptor;
    use hypervisor::vm::VmConfig;

    fn setup(registered: &[u64]) -> (Platform, WorldTable) {
        let mut p = Platform::new_default();
        let vm = p.create_vm(VmConfig::named("t")).unwrap();
        let mut table = WorldTable::with_quota(64);
        for &cr3 in registered {
            table
                .create(WorldDescriptor::guest_user(&p, vm, cr3, 0).unwrap())
                .unwrap();
        }
        p.vmentry(vm).unwrap();
        (p, table)
    }

    #[test]
    fn register_latches_registered_contexts() {
        let (mut p, table) = setup(&[0x1000]);
        let mut reg = CurrentWidRegister::new();
        p.cpu_mut().force_cr3(0x1000);
        reg.on_context_switch(&mut p, &table);
        assert!(reg.current().is_some());
        assert!(reg.caller_wid(&p).is_some());
        assert_eq!(reg.stats().register_hits, 1);
    }

    #[test]
    fn unregistered_contexts_waste_the_walk() {
        let (mut p, table) = setup(&[0x1000]);
        let mut reg = CurrentWidRegister::new();
        p.cpu_mut().force_cr3(0x999_9000);
        reg.on_context_switch(&mut p, &table);
        assert!(reg.current().is_none());
        assert_eq!(reg.stats().useless_walks, 1);
        assert!(reg.caller_wid(&p).is_none());
    }

    #[test]
    fn stale_register_misses_after_unseen_switch() {
        let (mut p, table) = setup(&[0x1000, 0x2000]);
        let mut reg = CurrentWidRegister::new();
        p.cpu_mut().force_cr3(0x1000);
        reg.on_context_switch(&mut p, &table);
        // Context changes without the hardware hook firing (e.g. a raw
        // CR3 write the prefetcher missed): the register must not serve
        // the stale WID.
        p.cpu_mut().force_cr3(0x2000);
        assert!(reg.caller_wid(&p).is_none());
        assert_eq!(reg.stats().register_misses, 1);
    }

    #[test]
    fn tradeoff_favors_on_demand_with_few_worlds() {
        // §5.1's claim: with only 2 worlds among many processes, prefetch
        // does mostly useless walks.
        let (mut p, table) = setup(&[0x1000, 0x2000]);
        let unregistered: Vec<u64> = (0..30).map(|i| 0x10_0000 + i * 0x1000).collect();
        let (prefetch, on_demand) =
            prefetch_tradeoff(&mut p, &table, &[0x1000, 0x2000], &unregistered, 1000);
        assert!(
            prefetch > on_demand,
            "prefetch {prefetch} should exceed on-demand {on_demand} with 2/32 worlds"
        );
    }

    #[test]
    fn tradeoff_favors_prefetch_when_every_process_is_a_world() {
        let registered: Vec<u64> = (0..32).map(|i| 0x1000 + i * 0x1000).collect();
        let (mut p, table) = setup(&registered);
        // Few switches relative to world count: on-demand pays a fault
        // per world; prefetch walks cheaply and always usefully.
        let (prefetch, on_demand) = prefetch_tradeoff(&mut p, &table, &registered, &[], 40);
        assert!(
            prefetch < on_demand,
            "prefetch {prefetch} should beat on-demand {on_demand} when all processes are worlds"
        );
    }
}
