//! Per-caller service dispatch — the flexibility argument of §3.4.
//!
//! The paper rejects hardware-checked bindings partly because software
//! authorization lets a callee do *more* than admit/refuse: "the callee
//! can implement more flexible policies such as offering different
//! services for different worlds by creating only one world in the
//! hardware." This module is that pattern as a reusable component: one
//! registered world, many callers, each mapped to its own service level —
//! all decided by the callee using the hardware-authenticated caller WID.

use std::collections::HashMap;
use std::fmt;

use crate::world::Wid;

/// A service tier the callee offers (example policy vocabulary; real
/// deployments would carry richer descriptors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceTier {
    /// Full access to every operation.
    Full,
    /// Read-only / introspection operations.
    ReadOnly,
    /// Rate-limited batch access.
    Throttled {
        /// Permitted calls per timeout window.
        calls_per_window: u32,
    },
}

impl fmt::Display for ServiceTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceTier::Full => write!(f, "full"),
            ServiceTier::ReadOnly => write!(f, "read-only"),
            ServiceTier::Throttled { calls_per_window } => {
                write!(f, "throttled({calls_per_window}/window)")
            }
        }
    }
}

/// What the registry decides for one incoming call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Serve at this tier.
    Serve(ServiceTier),
    /// Refuse: unknown caller and no default tier configured.
    Refuse,
    /// Refuse: the caller exhausted its throttle window.
    Throttle,
}

/// The callee-side service registry: caller WID → tier, with optional
/// default tier and per-caller throttle accounting.
///
/// # Example
///
/// ```
/// use xover_crossover::service::{Dispatch, ServiceRegistry, ServiceTier};
/// # let (inspector, guest) = xover_crossover::binding::test_wids();
///
/// let mut registry = ServiceRegistry::new();
/// registry.grant(inspector, ServiceTier::Full);
/// registry.grant(guest, ServiceTier::Throttled { calls_per_window: 1 });
/// assert_eq!(registry.dispatch(inspector), Dispatch::Serve(ServiceTier::Full));
/// // The throttled caller gets one call, then is deferred.
/// assert!(matches!(registry.dispatch(guest), Dispatch::Serve(_)));
/// assert_eq!(registry.dispatch(guest), Dispatch::Throttle);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    tiers: HashMap<u64, ServiceTier>,
    default_tier: Option<ServiceTier>,
    window_usage: HashMap<u64, u32>,
    served: u64,
    refused: u64,
}

impl ServiceRegistry {
    /// Creates an empty registry that refuses unknown callers.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Sets a tier served to callers with no explicit grant.
    pub fn set_default(&mut self, tier: ServiceTier) -> &mut ServiceRegistry {
        self.default_tier = Some(tier);
        self
    }

    /// Grants `caller` a service tier.
    pub fn grant(&mut self, caller: Wid, tier: ServiceTier) -> &mut ServiceRegistry {
        self.tiers.insert(caller.raw(), tier);
        self
    }

    /// Revokes `caller`'s grant (falls back to the default, if any).
    pub fn revoke(&mut self, caller: Wid) -> &mut ServiceRegistry {
        self.tiers.remove(&caller.raw());
        self
    }

    /// Calls served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Calls refused (unknown or throttled).
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Whether a call from `caller` *would* be served at some tier, without
    /// consuming a throttle slot or touching the served/refused counters.
    ///
    /// The switchless layer uses this as a channel-admission check: a
    /// caller the callee would refuse outright gets no shared ring (it
    /// must use the classic path, where [`ServiceRegistry::dispatch`]
    /// refuses it per call). Throttled callers are still admitted — the
    /// window bounds *served calls*, which the per-call dispatch keeps
    /// accounting for; admission itself is not a served call.
    pub fn would_serve(&self, caller: Wid) -> bool {
        self.tiers.contains_key(&caller.raw()) || self.default_tier.is_some()
    }

    /// Decides one incoming call from the hardware-authenticated `caller`.
    pub fn dispatch(&mut self, caller: Wid) -> Dispatch {
        let tier = match self.tiers.get(&caller.raw()).copied() {
            Some(t) => t,
            None => match self.default_tier {
                Some(t) => t,
                None => {
                    self.refused += 1;
                    return Dispatch::Refuse;
                }
            },
        };
        if let ServiceTier::Throttled { calls_per_window } = tier {
            let used = self.window_usage.entry(caller.raw()).or_insert(0);
            if *used >= calls_per_window {
                self.refused += 1;
                return Dispatch::Throttle;
            }
            *used += 1;
        }
        self.served += 1;
        Dispatch::Serve(tier)
    }

    /// Resets every caller's throttle window (the callee does this from
    /// its amortized timeout tick, §3.4).
    pub fn reset_window(&mut self) {
        self.window_usage.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::test_wids;

    #[test]
    fn distinct_callers_get_distinct_tiers_from_one_world() {
        let (a, b) = test_wids();
        let mut r = ServiceRegistry::new();
        r.grant(a, ServiceTier::Full);
        r.grant(b, ServiceTier::ReadOnly);
        assert_eq!(r.dispatch(a), Dispatch::Serve(ServiceTier::Full));
        assert_eq!(r.dispatch(b), Dispatch::Serve(ServiceTier::ReadOnly));
        assert_eq!(r.served(), 2);
    }

    #[test]
    fn unknown_callers_refused_without_default() {
        let (a, b) = test_wids();
        let mut r = ServiceRegistry::new();
        r.grant(a, ServiceTier::Full);
        assert_eq!(r.dispatch(b), Dispatch::Refuse);
        assert_eq!(r.refused(), 1);
    }

    #[test]
    fn default_tier_serves_everyone() {
        let (_, b) = test_wids();
        let mut r = ServiceRegistry::new();
        r.set_default(ServiceTier::ReadOnly);
        assert_eq!(r.dispatch(b), Dispatch::Serve(ServiceTier::ReadOnly));
    }

    #[test]
    fn throttle_window_enforced_and_resettable() {
        let (a, _) = test_wids();
        let mut r = ServiceRegistry::new();
        r.grant(
            a,
            ServiceTier::Throttled {
                calls_per_window: 2,
            },
        );
        assert!(matches!(r.dispatch(a), Dispatch::Serve(_)));
        assert!(matches!(r.dispatch(a), Dispatch::Serve(_)));
        assert_eq!(r.dispatch(a), Dispatch::Throttle);
        r.reset_window();
        assert!(matches!(r.dispatch(a), Dispatch::Serve(_)));
    }

    #[test]
    fn would_serve_is_side_effect_free() {
        let (a, b) = test_wids();
        let mut r = ServiceRegistry::new();
        r.grant(
            a,
            ServiceTier::Throttled {
                calls_per_window: 1,
            },
        );
        assert!(r.would_serve(a));
        assert!(!r.would_serve(b));
        // No counters or throttle slots consumed by the check.
        assert_eq!(r.served(), 0);
        assert_eq!(r.refused(), 0);
        assert!(matches!(r.dispatch(a), Dispatch::Serve(_)));
        r.set_default(ServiceTier::ReadOnly);
        assert!(r.would_serve(b));
    }

    #[test]
    fn revocation_falls_back_to_default() {
        let (a, _) = test_wids();
        let mut r = ServiceRegistry::new();
        r.grant(a, ServiceTier::Full);
        r.set_default(ServiceTier::ReadOnly);
        r.revoke(a);
        assert_eq!(r.dispatch(a), Dispatch::Serve(ServiceTier::ReadOnly));
    }
}
