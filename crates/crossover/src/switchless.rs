//! Switchless call channels: priced shared-memory request/response rings.
//!
//! The classic `world_call` path charges every call a full caller→callee
//! →caller transition pair plus state save/restore, even when thousands
//! of calls target the same callee back to back. The switchless layer
//! amortizes that: callers deposit requests in a shared-memory ring and
//! a *callee-resident dispatcher* drains a whole batch per transition
//! pair, so the amortized transitions/call on a hot pair drops below
//! one (the same cost structure ZC-switchless exploits for SGX
//! ecalls — see PAPERS.md).
//!
//! The simulation stays honest by pricing the ring as what it is:
//! guest memory. A [`ChannelSegment`] is a real allocated guest-memory
//! region mapped into the callee's address space; every request-slot
//! read and response-slot write the resident dispatcher performs is a
//! [`hypervisor::platform::Platform::access_gva`] through the worker's
//! unified TLB — a warm slot costs one cycle, a cold one pays the full
//! two-stage walk. Nothing about the channel is free.
//!
//! Layout: one segment per callee world, one *lane* (page) per caller
//! hash, so each (caller-world, callee-world) pair owns a private ring
//! of [`SLOTS_PER_LANE`] cache-line-sized slots and two pairs never
//! false-share a line. Channel admission is the callee's business, as
//! all CrossOver authorization is (§3.4): a segment can carry a
//! [`crate::service::ServiceRegistry`] and callers it would refuse are
//! simply denied a channel — they fall back to the classic per-call
//! path, they are not refused service.
//!
//! The *dispatcher policy* — how long a worker stays resident in the
//! callee world, when it spins versus returns — lives in the runtime
//! crate; this module is the hardware/memory substrate plus the cost
//! bookkeeping both sides share.

#![deny(missing_docs)]

use hypervisor::platform::Platform;
use hypervisor::HvError;
use machine::trace::TransitionKind;
use mmu::addr::{Gva, PAGE_SIZE};
use mmu::pagetable::PageTable;
use mmu::perms::Perms;

use crate::manager::{RESTORE_STATE_CYCLES, SAVE_STATE_CYCLES};
use crate::service::ServiceRegistry;
use crate::world::Wid;

/// Bytes per ring slot: one cache line carries the marshalled request
/// (or response) header, matching how real switchless runtimes size
/// their entries to avoid false sharing.
pub const SLOT_BYTES: u64 = 64;

/// Slots per lane: one page of cache-line slots.
pub const SLOTS_PER_LANE: u64 = PAGE_SIZE / SLOT_BYTES;

/// SplitMix64 finalizer — the same mixer the WT-cache index uses, so
/// adjacent WIDs spread across lanes instead of clustering.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One callee world's shared request/response segment: `lanes` pages of
/// guest memory mapped rw into the callee's address space, each lane a
/// private ring for one caller-hash.
///
/// The segment is allocated before the worker pool starts (like a
/// working set: the pages must exist in the EPT every worker clones)
/// and is immutable afterwards; per-worker slot cursors and statistics
/// live with the worker, so segments can be shared read-only across the
/// pool.
#[derive(Debug, Clone)]
pub struct ChannelSegment {
    pt: PageTable,
    base: Gva,
    lanes: u64,
    grants: Option<ServiceRegistry>,
}

impl ChannelSegment {
    /// Wraps an allocated, mapped region as a channel segment.
    ///
    /// `pt` must be rooted at the callee world's PTP and map `lanes`
    /// consecutive rw pages at `base` (the runtime service does the
    /// allocation and mapping, exactly as it does for working sets).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(pt: PageTable, base: Gva, lanes: u64) -> ChannelSegment {
        assert!(lanes > 0, "a channel segment needs at least one lane");
        ChannelSegment {
            pt,
            base,
            lanes,
            grants: None,
        }
    }

    /// Attaches a callee-side admission policy: callers the registry
    /// would refuse get no channel (and must use the classic path).
    pub fn with_grants(mut self, grants: ServiceRegistry) -> ChannelSegment {
        self.grants = Some(grants);
        self
    }

    /// Number of lanes (pages) in the segment.
    pub fn lanes(&self) -> u64 {
        self.lanes
    }

    /// First mapped guest-virtual address.
    pub fn base(&self) -> Gva {
        self.base
    }

    /// The lane `caller`'s requests ride in.
    pub fn lane_of(&self, caller: Wid) -> u64 {
        mix64(caller.raw()) % self.lanes
    }

    /// Whether `caller` is granted a channel. Without an attached
    /// registry every caller is admitted; with one, only callers the
    /// registry would serve (at any tier) are. The check is
    /// side-effect-free — the throttle window is the *service*'s
    /// accounting, not the channel's.
    pub fn admits(&self, caller: Wid) -> bool {
        match &self.grants {
            None => true,
            Some(r) => r.would_serve(caller),
        }
    }

    /// Guest-virtual address of slot `seq` in `lane`.
    fn slot_gva(&self, lane: u64, seq: u64) -> Gva {
        debug_assert!(lane < self.lanes);
        self.base + lane * PAGE_SIZE + (seq % SLOTS_PER_LANE) * SLOT_BYTES
    }

    /// The resident dispatcher reads one request slot: a priced guest
    /// memory access through the platform's current (CR3, EPTP) tags —
    /// i.e. through the *callee's* mapping, since the dispatcher runs
    /// resident in the callee world. Returns the cycles charged (one on
    /// a TLB hit, a full walk on a miss).
    ///
    /// # Errors
    ///
    /// [`HvError::Mmu`] if the segment does not translate (the service
    /// mapped it before start, so this indicates a torn-down EPT).
    pub fn read_request(
        &self,
        platform: &mut Platform,
        lane: u64,
        seq: u64,
    ) -> Result<u64, HvError> {
        self.priced_access(platform, lane, seq)
    }

    /// The resident dispatcher writes one response slot (same pricing
    /// as [`ChannelSegment::read_request`]).
    ///
    /// # Errors
    ///
    /// [`HvError::Mmu`] on translation failure.
    pub fn write_response(
        &self,
        platform: &mut Platform,
        lane: u64,
        seq: u64,
    ) -> Result<u64, HvError> {
        self.priced_access(platform, lane, seq)
    }

    /// The integrity tag a well-formed slot carries: a mix of the
    /// segment base, lane and sequence number, so a slot overwritten by
    /// a misbehaving caller (or an injected fault) cannot replay a tag
    /// from another slot. Both sides can compute it without sharing
    /// secrets — this is corruption *detection* for self-healing, not
    /// authentication (§3.4 leaves that to the callee's checks).
    pub fn slot_checksum(&self, lane: u64, seq: u64) -> u64 {
        mix64(self.base.0 ^ lane.rotate_left(48) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Reads one request slot *and* verifies its header: the priced
    /// access of [`ChannelSegment::read_request`] plus a seqno/checksum
    /// comparison against the expected tag. Verification reads only the
    /// slot's own cache line, so it adds no cycles beyond the slot
    /// access itself. `corrupted` is the fault-injection hook: when set,
    /// the slot reads back as if a misbehaving caller scribbled on it.
    ///
    /// # Errors
    ///
    /// [`HvError::Mmu`] if the slot page no longer translates (EPT
    /// permission fault / torn-down mapping).
    pub fn read_request_verified(
        &self,
        platform: &mut Platform,
        lane: u64,
        seq: u64,
        corrupted: bool,
    ) -> Result<SlotRead, HvError> {
        let cycles = self.priced_access(platform, lane, seq)?;
        let expected_checksum = self.slot_checksum(lane, seq);
        Ok(SlotRead {
            cycles,
            expected_seqno: seq,
            seqno: if corrupted {
                seq ^ 0x8000_0000_0000_0001
            } else {
                seq
            },
            expected_checksum,
            checksum: if corrupted {
                expected_checksum ^ 0xDEAD_BEEF_0BAD_F00D
            } else {
                expected_checksum
            },
        })
    }

    /// Warms the TLB entry for `lane`'s slot page: one priced access to
    /// slot 0, issued by the runtime's trace-driven prefill pass right
    /// after a residency opens (the access must run under the *callee's*
    /// (CR3, EPTP) tags to warm the entry the drain's slot reads will
    /// hit). Returns the cycles charged — a full walk when cold, one
    /// cycle when something already warmed it.
    ///
    /// # Errors
    ///
    /// [`HvError::Mmu`] if the segment does not translate.
    pub fn touch_lane(&self, platform: &mut Platform, lane: u64) -> Result<u64, HvError> {
        self.priced_access(platform, lane, 0)
    }

    fn priced_access(&self, platform: &mut Platform, lane: u64, seq: u64) -> Result<u64, HvError> {
        let before = platform.cpu().meter().cycles();
        // rw: request and response share the slot's line, and a single
        // perms tag avoids spurious permission-upgrade re-walks.
        platform.access_gva(&self.pt, self.slot_gva(lane, seq), Perms::rw())?;
        Ok(platform.cpu().meter().cycles() - before)
    }
}

/// One verified request-slot read: the cycles the access cost plus the
/// header fields a corruption check compares. Produced by
/// [`ChannelSegment::read_request_verified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRead {
    /// Cycles charged for the slot access (TLB hit or walk).
    pub cycles: u64,
    /// Sequence number the slot header carried.
    pub seqno: u64,
    /// Sequence number the dispatcher expected.
    pub expected_seqno: u64,
    /// Integrity tag the slot header carried.
    pub checksum: u64,
    /// Integrity tag recomputed from (segment, lane, seq).
    pub expected_checksum: u64,
}

impl SlotRead {
    /// Whether the slot header survived intact (seqno and checksum both
    /// match). A failed check means the channel contents cannot be
    /// trusted — the dispatcher must fall back and quarantine the
    /// channel, never service the slot.
    pub fn intact(&self) -> bool {
        self.seqno == self.expected_seqno && self.checksum == self.expected_checksum
    }
}

/// Cycles one *classic* call spends on pure switching that a coalesced
/// batch amortizes across its members: caller state save, `world_call`,
/// `world_call` return and state restore. The callee body, ring slot
/// traffic and any WTC/TLB misses are *not* in here — those are paid
/// per call on both paths.
pub fn transition_pair_cycles(platform: &Platform) -> u64 {
    let model = platform.cpu().cost_model();
    SAVE_STATE_CYCLES
        + RESTORE_STATE_CYCLES
        + model.price(TransitionKind::WorldCall).cycles
        + model.price(TransitionKind::WorldReturn).cycles
}

/// Per-pair drain accounting a resident dispatcher accumulates; the
/// runtime sums these into its service report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Calls serviced through a channel (coalesced).
    pub coalesced_calls: u64,
    /// Caller→callee→caller transition pairs paid for those calls.
    pub transition_pairs: u64,
    /// Cycles charged for request/response slot accesses.
    pub slot_cycles: u64,
    /// Virtual-time cycles charged to spin-then-block waits.
    pub spin_cycles: u64,
    /// Residencies that ended because the ring ran dry before the
    /// budget was spent (the controller's shrink signal).
    pub dry_exits: u64,
    /// Residencies that ended with budget exhausted and work possibly
    /// left (the controller's grow signal).
    pub saturated_exits: u64,
    /// Residencies aborted by the §3.4 timeout machinery.
    pub timeout_aborts: u64,
    /// Groups that fell back to the classic path mid-flight (callee
    /// vanished, control-flow violation).
    pub fallback_groups: u64,
    /// Returns the hypervisor had to force because the caller world was
    /// deleted while the dispatcher was resident.
    pub forced_returns: u64,
}

impl DrainStats {
    /// Folds `other` into `self`.
    pub fn absorb(&mut self, other: &DrainStats) {
        self.coalesced_calls += other.coalesced_calls;
        self.transition_pairs += other.transition_pairs;
        self.slot_cycles += other.slot_cycles;
        self.spin_cycles += other.spin_cycles;
        self.dry_exits += other.dry_exits;
        self.saturated_exits += other.saturated_exits;
        self.timeout_aborts += other.timeout_aborts;
        self.fallback_groups += other.fallback_groups;
        self.forced_returns += other.forced_returns;
    }

    /// Amortized world transitions per coalesced call (2 per pair); the
    /// switchless claim is that this is `< 1.0` on hot pairs. Returns
    /// `f64::NAN` when no calls were coalesced.
    pub fn transitions_per_call(&self) -> f64 {
        if self.coalesced_calls == 0 {
            return f64::NAN;
        }
        (self.transition_pairs * 2) as f64 / self.coalesced_calls as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceTier;
    use hypervisor::vm::VmConfig;

    fn mapped_segment(platform: &mut Platform, lanes: u64) -> (ChannelSegment, u64) {
        let vm = platform.create_vm(VmConfig::named("seg")).unwrap();
        let gpa = platform.alloc_guest_pages(vm, lanes).unwrap();
        let base = Gva(0x5000_0000);
        let mut pt = PageTable::new(0xAB00_0000);
        for i in 0..lanes {
            pt.map(base + i * PAGE_SIZE, gpa + i * PAGE_SIZE, Perms::rw())
                .unwrap();
        }
        let eptp = platform.eptp_of(vm).unwrap();
        platform.vmentry(vm).unwrap();
        platform.cpu_mut().force_cr3(0xAB00_0000);
        (ChannelSegment::new(pt, base, lanes), eptp)
    }

    #[test]
    fn slot_accesses_are_priced_through_the_tlb() {
        let mut p = Platform::new_default();
        let (seg, _) = mapped_segment(&mut p, 2);
        // Cold slot: full two-stage walk. Warm slot in the same lane
        // (same page): one-cycle TLB hit.
        let cold = seg.read_request(&mut p, 0, 0).unwrap();
        let warm = seg.write_response(&mut p, 0, 0).unwrap();
        assert!(cold > warm, "cold {cold} must out-cost warm {warm}");
        assert_eq!(warm, 1, "warm slot access is one cycle (TLB hit)");
        // A different lane is a different page: cold again.
        let other = seg.read_request(&mut p, 1, 0).unwrap();
        assert_eq!(other, cold, "each lane pays its own first walk");
    }

    #[test]
    fn sequential_slots_wrap_within_the_lane() {
        let mut p = Platform::new_default();
        let (seg, _) = mapped_segment(&mut p, 1);
        assert_eq!(seg.slot_gva(0, 0), seg.slot_gva(0, SLOTS_PER_LANE));
        assert_ne!(seg.slot_gva(0, 0), seg.slot_gva(0, 1));
        // Wrapping never leaves the mapped page.
        for seq in 0..3 * SLOTS_PER_LANE {
            seg.read_request(&mut p, 0, seq).unwrap();
        }
    }

    #[test]
    fn lanes_spread_callers() {
        let pt = PageTable::new(0x1000);
        let seg = ChannelSegment::new(pt, Gva(0x9000_0000), 8);
        let mut seen = std::collections::HashSet::new();
        for raw in 1..64u64 {
            let lane = seg.lane_of(Wid::from_raw(raw));
            assert!(lane < 8);
            seen.insert(lane);
        }
        assert!(seen.len() > 4, "mixer should use most lanes, got {seen:?}");
    }

    #[test]
    fn grants_gate_channel_admission_without_side_effects() {
        let (a, b) = crate::binding::test_wids();
        let mut reg = ServiceRegistry::new();
        reg.grant(a, ServiceTier::Full);
        let seg = ChannelSegment::new(PageTable::new(0x1000), Gva(0x9000_0000), 1)
            .with_grants(reg.clone());
        assert!(seg.admits(a));
        assert!(!seg.admits(b), "unknown caller gets no channel");
        // Ungated segments admit everyone.
        let open = ChannelSegment::new(PageTable::new(0x1000), Gva(0x9000_0000), 1);
        assert!(open.admits(b));
        // Admission checks must not consume served/refused counters.
        assert_eq!(reg.served(), 0);
        assert_eq!(reg.refused(), 0);
    }

    #[test]
    fn verified_reads_cost_the_same_as_plain_reads() {
        let mut p = Platform::new_default();
        let (seg, _) = mapped_segment(&mut p, 1);
        let plain = seg.read_request(&mut p, 0, 0).unwrap();
        let mut q = Platform::new_default();
        let (seg2, _) = mapped_segment(&mut q, 1);
        let verified = seg2.read_request_verified(&mut q, 0, 0, false).unwrap();
        // Verification rides in the slot's own cache line: zero extra
        // cycles, identical pricing (the empty-plan parity depends on it).
        assert_eq!(verified.cycles, plain);
        assert!(verified.intact());
    }

    #[test]
    fn corrupted_slots_are_detected_not_serviced() {
        let mut p = Platform::new_default();
        let (seg, _) = mapped_segment(&mut p, 2);
        let bad = seg.read_request_verified(&mut p, 1, 3, true).unwrap();
        assert!(!bad.intact());
        assert_ne!(bad.checksum, bad.expected_checksum);
        assert_ne!(bad.seqno, bad.expected_seqno);
        // The tag binds lane and sequence: different slots, different tags.
        assert_ne!(seg.slot_checksum(0, 0), seg.slot_checksum(1, 0));
        assert_ne!(seg.slot_checksum(0, 0), seg.slot_checksum(0, 1));
    }

    #[test]
    fn transition_pair_cycles_matches_the_cost_model() {
        let p = Platform::new_default();
        // 30 save + 30 restore + 200 call + 200 return with the default
        // Haswell-derived model.
        assert_eq!(transition_pair_cycles(&p), 460);
    }

    #[test]
    fn drain_stats_absorb_and_amortize() {
        let mut a = DrainStats {
            coalesced_calls: 12,
            transition_pairs: 2,
            ..DrainStats::default()
        };
        let b = DrainStats {
            coalesced_calls: 4,
            transition_pairs: 2,
            slot_cycles: 9,
            ..DrainStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.coalesced_calls, 16);
        assert_eq!(a.transition_pairs, 4);
        assert_eq!(a.slot_cycles, 9);
        assert!((a.transitions_per_call() - 0.5).abs() < 1e-12);
        assert!(DrainStats::default().transitions_per_call().is_nan());
    }
}
