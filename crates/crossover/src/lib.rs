//! CrossOver: flexible cross-world calls — the paper's core contribution.
//!
//! A **world** is an address space in a specific privilege mode (§3.2). A
//! **world_call** switches the CPU directly from one registered world to
//! another — changing host/guest operation, ring, page-table root and EPT
//! pointer in a single instruction — with *authentication* done in
//! hardware (unforgeable World IDs looked up in a hypervisor-managed world
//! table) and *authorization* left to callee software. No hypervisor or OS
//! kernel runs on the call path; the privileged software is only involved
//! at registration time and on world-table-cache misses.
//!
//! Module map:
//!
//! * [`world`] — world identities: [`world::Wid`], [`world::WorldContext`]
//!   (the H/G + ring + EPTP + PTP tuple) and [`world::WorldDescriptor`].
//! * [`table`] — the hypervisor-managed [`table::WorldTable`] with per-VM
//!   creation quotas (the anti-DoS measure of §3.2).
//! * [`wtc`] — the two software-managed hardware caches of §5.1:
//!   [`wtc::WtCache`] (WID → entry, for callee lookup) and
//!   [`wtc::IwtCache`] (context → WID, for caller identification).
//! * [`call`] — the [`call::WorldCallUnit`]: the extended-VMFUNC hardware
//!   logic that executes `world_call` (VMFUNC leaf 0x1) and `manage_wtc`
//!   (leaf 0x2).
//! * [`manager`] — the software layer: [`manager::WorldManager`] for
//!   registration hypercalls, per-world call stacks with control-flow
//!   integrity checks, callee authorization policies, and the timeout
//!   defence against non-returning callees (§3.4).
//! * [`binding`] — the §3.4 alternative design: a hardware-checked
//!   caller/callee binding table (ablation).
//! * [`switchless`] — shared-memory call channels priced as guest-memory
//!   accesses: the substrate for coalescing many calls into one world
//!   transition pair (amortized transitions/call < 1 on hot pairs).
//! * [`plan`] — the hop planner behind Table 3 and Table 1: minimal
//!   transition counts between any two worlds under each mechanism.
//!
//! # Example: two worlds, one intervention-free call
//!
//! ```
//! use hypervisor::platform::Platform;
//! use hypervisor::vm::VmConfig;
//! use machine::mode::CpuMode;
//! use xover_crossover::manager::WorldManager;
//! use xover_crossover::world::WorldDescriptor;
//!
//! let mut p = Platform::new_default();
//! let vm1 = p.create_vm(VmConfig::named("caller"))?;
//! let vm2 = p.create_vm(VmConfig::named("callee"))?;
//! let mut mgr = WorldManager::new();
//!
//! // Registration (one-time, via the hypervisor).
//! let caller_desc = WorldDescriptor::guest_user(&p, vm1, 0x1000, 0x4000_0000)?;
//! let callee_desc = WorldDescriptor::guest_kernel(&p, vm2, 0x2000, 0xffff_8000_0000)?;
//! let caller = mgr.register_world(&mut p, caller_desc)?;
//! let callee = mgr.register_world(&mut p, callee_desc)?;
//!
//! // Enter the caller world and call: no VMExit happens.
//! p.vmentry(vm1)?;
//! p.cpu_mut().force_cr3(0x1000);
//! let exits_before = p.cpu().trace().hypervisor_interventions();
//! let token = mgr.call(&mut p, caller, callee)?;
//! assert_eq!(p.cpu().mode(), CpuMode::GUEST_KERNEL);
//! mgr.ret(&mut p, token)?;
//! assert_eq!(p.cpu().trace().hypervisor_interventions(), exits_before);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod alt;
pub mod binding;
pub mod call;
pub mod image;
pub mod manager;
pub mod plan;
pub mod prefetch;
pub mod service;
pub mod switchless;
pub mod table;
pub mod world;
pub mod wtc;

pub use call::WorldCallUnit;
pub use manager::{AuthPolicy, CallToken, WorldManager};
pub use plan::{HopPlanner, Mechanism, WorldCoord};
pub use switchless::{ChannelSegment, DrainStats};
pub use table::{WorldLookup, WorldTable};
pub use world::{Wid, WorldContext, WorldDescriptor};

use std::fmt;

use world::WorldContext as Ctx;

/// Errors raised by CrossOver operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError {
    /// The per-VM world-creation quota would be exceeded (anti-DoS, §3.2).
    QuotaExceeded {
        /// The quota that was hit.
        quota: usize,
    },
    /// `world_call` executed from a context that never registered a world
    /// — raises an exception to the hypervisor (§3.3).
    NotAWorld {
        /// The unregistered context.
        context: Ctx,
    },
    /// The callee WID does not name a present world-table entry.
    InvalidWid {
        /// The offending WID.
        wid: Wid,
    },
    /// Callee software rejected the caller (authorization, §3.4).
    AuthorizationDenied {
        /// Who called.
        caller: Wid,
        /// Who refused.
        callee: Wid,
    },
    /// A world "returned" to a caller that was not expecting it —
    /// the control-flow-integrity check on the caller's call stack.
    ControlFlowViolation {
        /// The peer the caller expected to return.
        expected: Wid,
        /// The WID that actually arrived.
        got: Wid,
    },
    /// A return was attempted with no outstanding call.
    NoOutstandingCall {
        /// The world whose stack was empty.
        wid: Wid,
    },
    /// The binding table has no (caller, callee) pair (§3.4 alternative).
    NotBound {
        /// Caller of the rejected call.
        caller: Wid,
        /// Callee of the rejected call.
        callee: Wid,
    },
    /// The callee exceeded its cycle budget and the hypervisor cancelled
    /// the call on timeout (§3.4 DoS defence).
    CalleeTimeout {
        /// The cancelled callee.
        callee: Wid,
    },
    /// An underlying hypervisor/platform failure.
    Hv(hypervisor::HvError),
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::QuotaExceeded { quota } => {
                write!(f, "world-creation quota of {quota} exceeded")
            }
            WorldError::NotAWorld { context } => {
                write!(f, "world_call from unregistered context {context}")
            }
            WorldError::InvalidWid { wid } => write!(f, "invalid world id {wid}"),
            WorldError::AuthorizationDenied { caller, callee } => {
                write!(f, "callee {callee} refused caller {caller}")
            }
            WorldError::ControlFlowViolation { expected, got } => {
                write!(
                    f,
                    "control-flow violation: expected return from {expected}, got {got}"
                )
            }
            WorldError::NoOutstandingCall { wid } => {
                write!(f, "no outstanding call on {wid}'s stack")
            }
            WorldError::NotBound { caller, callee } => {
                write!(f, "no binding registered for {caller} -> {callee}")
            }
            WorldError::CalleeTimeout { callee } => {
                write!(f, "callee {callee} timed out; call cancelled by hypervisor")
            }
            WorldError::Hv(e) => write!(f, "platform error: {e}"),
        }
    }
}

impl std::error::Error for WorldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorldError::Hv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hypervisor::HvError> for WorldError {
    fn from(e: hypervisor::HvError) -> WorldError {
        WorldError::Hv(e)
    }
}
