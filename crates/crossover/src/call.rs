//! The `world_call` hardware logic (extended VMFUNC, §5.1).
//!
//! [`WorldCallUnit`] models the processing logic added next to VMFUNC in
//! Figure 5b: on `world_call` it identifies the caller through the IWT
//! cache, resolves the callee through the WT cache, and switches the CPU
//! to the callee's world in a single transition. Cache misses raise an
//! exception to the hypervisor, which walks the world table and fills the
//! missing entry via `manage_wtc` (VMFUNC leaf 0x2) — all of which is
//! priced, so workloads with poor world locality pay for it.

use hypervisor::platform::Platform;
use machine::trace::TransitionKind;

use crate::prefetch::CurrentWidRegister;
use crate::table::WorldLookup;
use crate::world::{Wid, WorldContext, WorldEntry};
use crate::wtc::{CacheStats, IwtCache, WtCache, DEFAULT_WTC_CAPACITY};
use crate::WorldError;

/// Whether a `world_call` is an outbound call or a return. Architecturally
/// both are the same instruction (§3.3: "when return, the processor still
/// uses world_call"); the distinction only selects the trace label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Caller → callee.
    Call,
    /// Callee → caller.
    Return,
}

/// What the hardware hands the destination world after a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchOutcome {
    /// The WID of the world that invoked `world_call` (passed to the
    /// destination in a register for authorization).
    pub from: Wid,
    /// The world now executing.
    pub to: Wid,
    /// Entry point the PC was set to.
    pub entry_point: u64,
}

/// The hardware world-call unit: both world-table caches plus the switch
/// logic.
///
/// # Example
///
/// See the crate-level example; [`crate::manager::WorldManager`] wraps
/// this unit together with the software-side state.
#[derive(Debug, Clone)]
pub struct WorldCallUnit {
    wt: WtCache,
    iwt: IwtCache,
    /// Optional Current-World-ID register (§5.1 alternative design).
    prefetch: Option<CurrentWidRegister>,
}

impl WorldCallUnit {
    /// Creates a unit with default cache capacities.
    pub fn new() -> WorldCallUnit {
        WorldCallUnit::with_capacity(DEFAULT_WTC_CAPACITY)
    }

    /// Creates a unit with custom (equal) cache capacities.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> WorldCallUnit {
        WorldCallUnit {
            wt: WtCache::new(capacity),
            iwt: IwtCache::new(capacity),
            prefetch: None,
        }
    }

    /// Creates a unit whose caches share an explicit sets × ways shape.
    pub fn with_geometry(geometry: crate::wtc::CacheGeometry) -> WorldCallUnit {
        WorldCallUnit {
            wt: WtCache::with_geometry(geometry),
            iwt: IwtCache::with_geometry(geometry),
            prefetch: None,
        }
    }

    /// Enables the Current-World-ID prefetch register (§5.1 alternative).
    /// The OS/hypervisor must then call
    /// [`WorldCallUnit::notify_context_switch`] on every context switch
    /// for the register to stay useful.
    pub fn enable_prefetch(&mut self) -> &mut WorldCallUnit {
        self.prefetch = Some(CurrentWidRegister::new());
        self
    }

    /// The prefetch register, if enabled.
    pub fn prefetch(&self) -> Option<&CurrentWidRegister> {
        self.prefetch.as_ref()
    }

    /// Hardware hook fired on context switches when prefetch is enabled.
    pub fn notify_context_switch<T: WorldLookup>(&mut self, platform: &mut Platform, table: &T) {
        if let Some(reg) = self.prefetch.as_mut() {
            reg.on_context_switch(platform, table);
        }
    }

    /// WT-cache statistics.
    pub fn wt_stats(&self) -> CacheStats {
        self.wt.stats()
    }

    /// IWT-cache statistics.
    pub fn iwt_stats(&self) -> CacheStats {
        self.iwt.stats()
    }

    /// Identifies the caller world from the CPU's current context,
    /// handling the IWT-cache miss path.
    ///
    /// # Errors
    ///
    /// [`WorldError::NotAWorld`] if the context is not registered — the
    /// "namespace issues a world call without creating a world first"
    /// exception of §3.3.
    fn identify_caller<T: WorldLookup>(
        &mut self,
        platform: &mut Platform,
        table: &T,
    ) -> Result<Wid, WorldError> {
        // The prefetch register answers without even an IWT access when
        // its speculative walk already latched this context.
        if let Some(reg) = self.prefetch.as_mut() {
            if let Some(wid) = reg.caller_wid(platform) {
                return Ok(wid);
            }
        }
        let ctx = WorldContext::capture(platform);
        if let Some(wid) = self.iwt.lookup(&ctx) {
            return Ok(wid);
        }
        // Miss: exception to the hypervisor, which walks the world table.
        platform.cpu_mut().touch(TransitionKind::WtcMissFault);
        match table.wid_of(&ctx) {
            Some(wid) => {
                platform.cpu_mut().touch(TransitionKind::WtcFill);
                self.iwt.fill(ctx, wid);
                Ok(wid)
            }
            None => Err(WorldError::NotAWorld { context: ctx }),
        }
    }

    /// Resolves the callee's world-table entry, handling the WT-cache
    /// miss path.
    ///
    /// # Errors
    ///
    /// [`WorldError::InvalidWid`] if no present entry names `callee`.
    fn resolve_callee<T: WorldLookup>(
        &mut self,
        platform: &mut Platform,
        table: &T,
        callee: Wid,
    ) -> Result<WorldEntry, WorldError> {
        if let Some(entry) = self.wt.lookup(callee) {
            return Ok(entry);
        }
        platform.cpu_mut().touch(TransitionKind::WtcMissFault);
        match table.entry_of(callee) {
            Some(entry) => {
                platform.cpu_mut().touch(TransitionKind::WtcFill);
                self.wt.fill(entry);
                Ok(entry)
            }
            None => Err(WorldError::InvalidWid { wid: callee }),
        }
    }

    /// Executes `world_call` (VMFUNC leaf 0x1): identify caller, resolve
    /// callee, switch worlds in one transition, pass the caller's WID in
    /// `rdi` and land at the callee's entry point.
    ///
    /// # Errors
    ///
    /// * [`WorldError::NotAWorld`] — caller context unregistered.
    /// * [`WorldError::InvalidWid`] — callee WID not present.
    /// * [`WorldError::Hv`] — the destination EPTP is not a registered
    ///   EPT (corrupt world table).
    pub fn world_call<T: WorldLookup>(
        &mut self,
        platform: &mut Platform,
        table: &T,
        callee: Wid,
        direction: Direction,
    ) -> Result<SwitchOutcome, WorldError> {
        let caller = self.identify_caller(platform, table)?;
        let entry = self.resolve_callee(platform, table, callee)?;
        let kind = match direction {
            Direction::Call => TransitionKind::WorldCall,
            Direction::Return => TransitionKind::WorldReturn,
        };
        platform.crossover_switch(
            kind,
            entry.context.mode(),
            entry.context.ptp,
            entry.context.eptp,
        )?;
        let regs = platform.cpu_mut().regs_mut();
        regs.rdi = caller.raw();
        regs.rip = entry.entry_point;
        Ok(SwitchOutcome {
            from: caller,
            to: entry.wid,
            entry_point: entry.entry_point,
        })
    }

    /// `manage_wtc` fill: pre-load both caches for `wid` from the table
    /// (the hypervisor does this after registration so the first call is
    /// already a hit, as in the paper's Table 7 evaluation).
    ///
    /// # Errors
    ///
    /// [`WorldError::InvalidWid`] if `wid` is not present.
    pub fn manage_wtc_fill<T: WorldLookup>(
        &mut self,
        platform: &mut Platform,
        table: &T,
        wid: Wid,
    ) -> Result<(), WorldError> {
        let entry = table.entry_of(wid).ok_or(WorldError::InvalidWid { wid })?;
        platform.cpu_mut().touch(TransitionKind::WtcFill);
        self.wt.fill(entry);
        self.iwt.fill(entry.context, wid);
        Ok(())
    }

    /// `manage_wtc` invalidate: purge `wid` from both caches (after the
    /// hypervisor deletes a world).
    pub fn manage_wtc_invalidate(&mut self, platform: &mut Platform, wid: Wid) {
        platform.cpu_mut().touch(TransitionKind::WtcFill);
        self.wt.invalidate(wid);
        self.iwt.invalidate_wid(wid);
    }
}

impl Default for WorldCallUnit {
    fn default() -> WorldCallUnit {
        WorldCallUnit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::WorldTable;
    use crate::world::WorldDescriptor;
    use hypervisor::vm::{VmConfig, VmId};
    use machine::mode::CpuMode;

    struct Fixture {
        platform: Platform,
        table: WorldTable,
        unit: WorldCallUnit,
        vm1: VmId,
        vm2: VmId,
        caller: Wid,
        callee: Wid,
    }

    fn fixture() -> Fixture {
        let mut platform = Platform::new_default();
        let vm1 = platform.create_vm(VmConfig::named("vm1")).unwrap();
        let vm2 = platform.create_vm(VmConfig::named("vm2")).unwrap();
        let mut table = WorldTable::new();
        let caller = table
            .create(WorldDescriptor::guest_user(&platform, vm1, 0x1000, 0x40_0000).unwrap())
            .unwrap();
        let callee = table
            .create(WorldDescriptor::guest_kernel(&platform, vm2, 0x2000, 0xFFFF_8000).unwrap())
            .unwrap();
        platform.vmentry(vm1).unwrap();
        platform.cpu_mut().force_cr3(0x1000);
        Fixture {
            platform,
            table,
            unit: WorldCallUnit::new(),
            vm1,
            vm2,
            caller,
            callee,
        }
    }

    #[test]
    fn call_switches_world_and_passes_wid() {
        let mut f = fixture();
        let outcome = f
            .unit
            .world_call(&mut f.platform, &f.table, f.callee, Direction::Call)
            .unwrap();
        assert_eq!(outcome.from, f.caller);
        assert_eq!(outcome.to, f.callee);
        assert_eq!(f.platform.cpu().mode(), CpuMode::GUEST_KERNEL);
        assert_eq!(f.platform.cpu().cr3(), 0x2000);
        assert_eq!(f.platform.cpu().regs().rdi, f.caller.raw());
        assert_eq!(f.platform.cpu().regs().rip, 0xFFFF_8000);
        assert_eq!(f.platform.current_vm(), Some(f.vm2));
    }

    #[test]
    fn no_hypervisor_intervention_on_hit_path() {
        let mut f = fixture();
        // Pre-fill (manage_wtc) so the call itself is all hits.
        f.unit
            .manage_wtc_fill(&mut f.platform, &f.table, f.caller)
            .unwrap();
        f.unit
            .manage_wtc_fill(&mut f.platform, &f.table, f.callee)
            .unwrap();
        let exits = f.platform.cpu().trace().hypervisor_interventions();
        let faults = f.platform.cpu().trace().count(TransitionKind::WtcMissFault);
        f.unit
            .world_call(&mut f.platform, &f.table, f.callee, Direction::Call)
            .unwrap();
        assert_eq!(f.platform.cpu().trace().hypervisor_interventions(), exits);
        assert_eq!(
            f.platform.cpu().trace().count(TransitionKind::WtcMissFault),
            faults
        );
    }

    #[test]
    fn cold_call_pays_two_miss_faults() {
        let mut f = fixture();
        f.unit
            .world_call(&mut f.platform, &f.table, f.callee, Direction::Call)
            .unwrap();
        // One IWT miss (caller) + one WT miss (callee).
        assert_eq!(
            f.platform.cpu().trace().count(TransitionKind::WtcMissFault),
            2
        );
        // Warm second call from the same pair: return then re-call.
        f.unit
            .world_call(&mut f.platform, &f.table, f.caller, Direction::Return)
            .unwrap();
        let faults = f.platform.cpu().trace().count(TransitionKind::WtcMissFault);
        f.unit
            .world_call(&mut f.platform, &f.table, f.callee, Direction::Call)
            .unwrap();
        assert_eq!(
            f.platform.cpu().trace().count(TransitionKind::WtcMissFault),
            faults,
            "warm path must not fault"
        );
    }

    #[test]
    fn unregistered_caller_context_is_rejected() {
        let mut f = fixture();
        // CPU context with a CR3 that never registered a world.
        f.platform.cpu_mut().force_cr3(0xBAD0_0000);
        let err = f
            .unit
            .world_call(&mut f.platform, &f.table, f.callee, Direction::Call)
            .unwrap_err();
        assert!(matches!(err, WorldError::NotAWorld { .. }));
    }

    #[test]
    fn invalid_callee_wid_is_rejected() {
        let mut f = fixture();
        let ghost = Wid::from_raw(999);
        let err = f
            .unit
            .world_call(&mut f.platform, &f.table, ghost, Direction::Call)
            .unwrap_err();
        assert_eq!(err, WorldError::InvalidWid { wid: ghost });
        // The CPU must not have switched anywhere.
        assert_eq!(f.platform.cpu().mode(), CpuMode::GUEST_USER);
        assert_eq!(f.platform.current_vm(), Some(f.vm1));
    }

    #[test]
    fn deleted_world_becomes_uncallable_after_invalidate() {
        let mut f = fixture();
        f.unit
            .manage_wtc_fill(&mut f.platform, &f.table, f.callee)
            .unwrap();
        f.table.delete(f.callee).unwrap();
        f.unit.manage_wtc_invalidate(&mut f.platform, f.callee);
        let err = f
            .unit
            .world_call(&mut f.platform, &f.table, f.callee, Direction::Call)
            .unwrap_err();
        assert_eq!(err, WorldError::InvalidWid { wid: f.callee });
    }

    #[test]
    fn stale_cache_entry_would_hit_without_invalidate() {
        // Documents *why* manage_wtc invalidation matters: the caches are
        // software-managed, so deleting a table entry alone leaves a stale
        // (still switchable) cache line until the hypervisor invalidates.
        let mut f = fixture();
        f.unit
            .manage_wtc_fill(&mut f.platform, &f.table, f.caller)
            .unwrap();
        f.unit
            .manage_wtc_fill(&mut f.platform, &f.table, f.callee)
            .unwrap();
        f.table.delete(f.callee).unwrap();
        // No invalidate: the call still succeeds from cache.
        assert!(f
            .unit
            .world_call(&mut f.platform, &f.table, f.callee, Direction::Call)
            .is_ok());
    }

    #[test]
    fn return_direction_traces_world_return() {
        let mut f = fixture();
        f.unit
            .world_call(&mut f.platform, &f.table, f.callee, Direction::Call)
            .unwrap();
        f.unit
            .world_call(&mut f.platform, &f.table, f.caller, Direction::Return)
            .unwrap();
        let t = f.platform.cpu().trace();
        assert_eq!(t.count(TransitionKind::WorldCall), 1);
        assert_eq!(t.count(TransitionKind::WorldReturn), 1);
        assert_eq!(f.platform.cpu().mode(), CpuMode::GUEST_USER);
        assert_eq!(f.platform.cpu().cr3(), 0x1000);
    }

    #[test]
    fn prefetch_register_bypasses_the_iwt() {
        let mut f = fixture();
        f.unit.enable_prefetch();
        // Context switch hook latches the caller's identity.
        f.unit.notify_context_switch(&mut f.platform, &f.table);
        let iwt_lookups_before = f.unit.iwt_stats().hits + f.unit.iwt_stats().misses;
        f.unit
            .world_call(&mut f.platform, &f.table, f.callee, Direction::Call)
            .unwrap();
        // Caller identification came from the register: the IWT saw no
        // additional lookup (callee resolution still uses the WT cache).
        assert_eq!(
            f.unit.iwt_stats().hits + f.unit.iwt_stats().misses,
            iwt_lookups_before
        );
        assert_eq!(f.unit.prefetch().unwrap().stats().register_hits, 1);
    }
}
