//! The software layer of CrossOver: registration, authorization, call
//! stacks, and the timeout defence.
//!
//! §3.4 divides responsibilities: hardware isolates worlds and
//! authenticates WIDs; *software* implements authorization (the callee
//! refuses unwanted callers), calling-flow control (the caller keeps its
//! own call stack so a malicious callee cannot redirect the return), and
//! DoS defence (a hypervisor-armed timeout cancels non-returning callees).
//! [`WorldManager`] implements that software layer on top of
//! [`crate::call::WorldCallUnit`].

use std::collections::{HashMap, HashSet};

use hypervisor::platform::Platform;
use machine::trace::TransitionKind;

use crate::call::{Direction, WorldCallUnit};
use crate::image::WorldTableImage;
use crate::table::WorldTable;
use crate::world::{Wid, WorldDescriptor};
use crate::WorldError;

/// Cycles to save the caller's running state to its world stack before a
/// call (§3.3 setup step 3).
pub const SAVE_STATE_CYCLES: u64 = 30;
/// Instructions for the state save ("several instructions to save and
/// restore stack", §7.2 — part of the 33-instruction overhead).
pub const SAVE_STATE_INSTRUCTIONS: u64 = 10;
/// Cycles to restore saved state on return.
pub const RESTORE_STATE_CYCLES: u64 = 30;
/// Instructions for the state restore.
pub const RESTORE_STATE_INSTRUCTIONS: u64 = 10;
/// Cycles for a callee-side authorization check against an allow-list.
pub const AUTH_CHECK_CYCLES: u64 = 45;
/// Instructions for the allow-list check.
pub const AUTH_CHECK_INSTRUCTIONS: u64 = 14;

/// Callee-side authorization policy (§3.4: "the callee can implement more
/// flexible policies").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum AuthPolicy {
    /// Accept every caller. No check is charged — this matches the
    /// paper's evaluation ("software didn't authenticate the caller
    /// during this evaluation", §7.2).
    #[default]
    AllowAll,
    /// Accept only the listed caller WIDs.
    AllowList(HashSet<Wid>),
    /// Refuse everyone (a world being torn down).
    DenyAll,
}

impl AuthPolicy {
    /// Builds an allow-list from an iterator of WIDs.
    pub fn allow<I: IntoIterator<Item = Wid>>(wids: I) -> AuthPolicy {
        AuthPolicy::AllowList(wids.into_iter().collect())
    }

    fn permits(&self, caller: Wid) -> bool {
        match self {
            AuthPolicy::AllowAll => true,
            AuthPolicy::AllowList(set) => set.contains(&caller),
            AuthPolicy::DenyAll => false,
        }
    }

    fn is_charged(&self) -> bool {
        !matches!(self, AuthPolicy::AllowAll)
    }
}

/// A live outbound call, returned by [`WorldManager::call`] and consumed
/// by [`WorldManager::ret`] or [`WorldManager::force_cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallToken {
    /// The calling world.
    pub caller: Wid,
    /// The called world.
    pub callee: Wid,
    /// Meter reading (cycles) when the call was made.
    pub started_at_cycles: u64,
    /// Armed timeout budget in cycles, if the caller registered one.
    pub budget_cycles: Option<u64>,
}

impl CallToken {
    /// Whether the armed budget has been exceeded by `platform`'s meter —
    /// the §3.4 callee-DoS timeout check, exposed on the token so other
    /// call drivers (e.g. the concurrent runtime's workers) can reuse it.
    pub fn expired(&self, platform: &Platform) -> bool {
        match self.budget_cycles {
            Some(budget) => platform.cpu().meter().cycles() - self.started_at_cycles > budget,
            None => false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CallFrame {
    peer: Wid,
}

/// The CrossOver world manager: world table + call unit + software state.
///
/// See the crate-level example for a full walk-through.
#[derive(Debug, Clone, Default)]
pub struct WorldManager {
    table: WorldTable,
    unit: WorldCallUnit,
    stacks: HashMap<u64, Vec<CallFrame>>,
    policies: HashMap<u64, AuthPolicy>,
    timeout_budgets: HashMap<u64, u64>,
    /// The table's serialized image in hypervisor-private physical
    /// memory (§3.2), allocated on first registration and re-synced on
    /// every create/delete.
    image: Option<WorldTableImage>,
}

impl WorldManager {
    /// Creates a manager with default quota and cache sizes.
    pub fn new() -> WorldManager {
        WorldManager::default()
    }

    /// Creates a manager with a custom per-VM world quota.
    pub fn with_quota(quota: usize) -> WorldManager {
        WorldManager {
            table: WorldTable::with_quota(quota),
            ..WorldManager::default()
        }
    }

    /// The underlying world table (read-only).
    pub fn table(&self) -> &WorldTable {
        &self.table
    }

    /// The hardware call unit (for cache statistics).
    pub fn unit(&self) -> &WorldCallUnit {
        &self.unit
    }

    /// The world table's physical-memory image, if any world has been
    /// registered.
    pub fn image(&self) -> Option<&WorldTableImage> {
        self.image.as_ref()
    }

    fn sync_image(&mut self, platform: &mut Platform) {
        let image = *self
            .image
            .get_or_insert_with(|| WorldTableImage::allocate(platform, 1));
        image
            .sync(&self.table, platform)
            .expect("hypervisor-private frames are always backed");
    }

    /// Registers a world with the hypervisor (§3.3 "world-call setup").
    ///
    /// If the CPU is currently executing a guest, the registration is a
    /// hypercall and its full VMExit/VMEntry round trip is charged — this
    /// is the one-time cost CrossOver is happy to pay. The hypervisor
    /// pre-fills the world-table caches so the first call hits.
    ///
    /// # Errors
    ///
    /// * [`WorldError::QuotaExceeded`] — the owner VM is at its quota.
    /// * [`WorldError::Hv`] — platform failure during the hypercall.
    pub fn register_world(
        &mut self,
        platform: &mut Platform,
        descriptor: WorldDescriptor,
    ) -> Result<Wid, WorldError> {
        if platform.cpu().mode().operation().is_guest() {
            platform.hypercall_roundtrip(0x10)?; // HC_CREATE_WORLD
        } else {
            platform
                .cpu_mut()
                .charge_work(800, 210, "world registration (host path)");
        }
        let wid = self.table.create(descriptor)?;
        self.sync_image(platform);
        self.unit.manage_wtc_fill(platform, &self.table, wid)?;
        self.stacks.insert(wid.raw(), Vec::new());
        self.policies.insert(wid.raw(), AuthPolicy::AllowAll);
        Ok(wid)
    }

    /// Deletes a world and invalidates its cache entries.
    ///
    /// # Errors
    ///
    /// [`WorldError::InvalidWid`] if `wid` is not registered.
    pub fn delete_world(&mut self, platform: &mut Platform, wid: Wid) -> Result<(), WorldError> {
        if platform.cpu().mode().operation().is_guest() {
            platform.hypercall_roundtrip(0x11)?; // HC_DELETE_WORLD
        }
        self.table.delete(wid)?;
        self.sync_image(platform);
        self.unit.manage_wtc_invalidate(platform, wid);
        self.stacks.remove(&wid.raw());
        self.policies.remove(&wid.raw());
        self.timeout_budgets.remove(&wid.raw());
        Ok(())
    }

    /// Sets `wid`'s callee-side authorization policy (pure software, no
    /// hypervisor involvement — the point of the design).
    pub fn set_policy(&mut self, wid: Wid, policy: AuthPolicy) {
        self.policies.insert(wid.raw(), policy);
    }

    /// Arms a timeout budget for calls made *by* `caller` (§3.4: "setting
    /// up a timeout requires a vmcall to hypervisor, the caller can set a
    /// relatively long timer for multiple world-calls to amortize").
    ///
    /// # Errors
    ///
    /// [`WorldError::Hv`] on hypercall failure.
    pub fn arm_timeout(
        &mut self,
        platform: &mut Platform,
        caller: Wid,
        budget_cycles: u64,
    ) -> Result<(), WorldError> {
        if platform.cpu().mode().operation().is_guest() {
            platform.hypercall_roundtrip(0x12)?; // HC_ARM_TIMEOUT
        }
        self.timeout_budgets.insert(caller.raw(), budget_cycles);
        Ok(())
    }

    /// Performs a world call: saves caller state, executes `world_call`,
    /// runs the callee's authorization policy.
    ///
    /// On authorization failure the callee bounces straight back (one
    /// `world_return`) and the caller gets
    /// [`WorldError::AuthorizationDenied`].
    ///
    /// # Errors
    ///
    /// * [`WorldError::NotAWorld`] / [`WorldError::InvalidWid`] from the
    ///   hardware lookup.
    /// * [`WorldError::AuthorizationDenied`] from the callee's policy.
    pub fn call(
        &mut self,
        platform: &mut Platform,
        caller: Wid,
        callee: Wid,
    ) -> Result<CallToken, WorldError> {
        // §3.3: the caller saves its running state in its own memory.
        platform.cpu_mut().charge_work(
            SAVE_STATE_CYCLES,
            SAVE_STATE_INSTRUCTIONS,
            "save caller state",
        );
        let outcome = self
            .unit
            .world_call(platform, &self.table, callee, Direction::Call)?;
        if outcome.from != caller {
            // The hardware-identified caller disagrees with the software's
            // claimed identity: treat as a control-flow violation.
            return Err(WorldError::ControlFlowViolation {
                expected: caller,
                got: outcome.from,
            });
        }
        // Callee-side authorization with the hardware-provided WID.
        let policy = self
            .policies
            .get(&callee.raw())
            .cloned()
            .unwrap_or_default();
        if policy.is_charged() {
            platform.cpu_mut().charge_work(
                AUTH_CHECK_CYCLES,
                AUTH_CHECK_INSTRUCTIONS,
                "callee authorization",
            );
        }
        if !policy.permits(caller) {
            // Refuse: bounce straight back to the caller.
            self.unit
                .world_call(platform, &self.table, caller, Direction::Return)?;
            platform.cpu_mut().charge_work(
                RESTORE_STATE_CYCLES,
                RESTORE_STATE_INSTRUCTIONS,
                "restore caller state (refused)",
            );
            return Err(WorldError::AuthorizationDenied { caller, callee });
        }
        self.stacks
            .entry(caller.raw())
            .or_default()
            .push(CallFrame { peer: callee });
        Ok(CallToken {
            caller,
            callee,
            started_at_cycles: platform.cpu().meter().cycles(),
            budget_cycles: self.timeout_budgets.get(&caller.raw()).copied(),
        })
    }

    /// Returns from a world call: executes `world_call` in the return
    /// direction and verifies control-flow integrity against the caller's
    /// stack.
    ///
    /// # Errors
    ///
    /// * [`WorldError::NoOutstandingCall`] — the caller has no frame.
    /// * [`WorldError::ControlFlowViolation`] — the returning world is
    ///   not the one the caller called.
    pub fn ret(&mut self, platform: &mut Platform, token: CallToken) -> Result<(), WorldError> {
        let outcome =
            self.unit
                .world_call(platform, &self.table, token.caller, Direction::Return)?;
        let stack = self.stacks.entry(token.caller.raw()).or_default();
        let frame = stack
            .pop()
            .ok_or(WorldError::NoOutstandingCall { wid: token.caller })?;
        if frame.peer != outcome.from {
            return Err(WorldError::ControlFlowViolation {
                expected: frame.peer,
                got: outcome.from,
            });
        }
        platform.cpu_mut().charge_work(
            RESTORE_STATE_CYCLES,
            RESTORE_STATE_INSTRUCTIONS,
            "restore caller state",
        );
        Ok(())
    }

    /// Whether `token`'s timeout budget has been exceeded by now.
    pub fn timed_out(&self, platform: &Platform, token: &CallToken) -> bool {
        token.expired(platform)
    }

    /// Hypervisor-forced cancellation of a non-returning callee (§3.4):
    /// the timeout timer fires (a VMExit), the hypervisor restores the
    /// caller's world, and the caller's timeout handler runs. Pops the
    /// call frame.
    ///
    /// # Errors
    ///
    /// * [`WorldError::InvalidWid`] — the caller world vanished.
    /// * [`WorldError::NoOutstandingCall`] — nothing to cancel.
    pub fn force_cancel(
        &mut self,
        platform: &mut Platform,
        token: CallToken,
    ) -> Result<(), WorldError> {
        let caller_entry = *self
            .table
            .lookup(token.caller)
            .ok_or(WorldError::InvalidWid { wid: token.caller })?;
        let stack = self.stacks.entry(token.caller.raw()).or_default();
        if stack.pop().is_none() {
            return Err(WorldError::NoOutstandingCall { wid: token.caller });
        }
        // Timer interrupt traps the callee to the hypervisor...
        if platform.cpu().mode().operation().is_guest() {
            platform.vmexit(hypervisor::ExitReason::ExternalInterrupt)?;
        }
        // ...which forcibly restores the caller's world context.
        platform.crossover_switch(
            TransitionKind::WorldReturn,
            caller_entry.context.mode(),
            caller_entry.context.ptp,
            caller_entry.context.eptp,
        )?;
        platform.cpu_mut().charge_work(
            RESTORE_STATE_CYCLES,
            RESTORE_STATE_INSTRUCTIONS,
            "restore caller state (timeout)",
        );
        Ok(())
    }

    /// Depth of `wid`'s outstanding-call stack (0 when idle).
    pub fn call_depth(&self, wid: Wid) -> usize {
        self.stacks.get(&wid.raw()).map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldDescriptor;
    use hypervisor::vm::{VmConfig, VmId};
    use machine::mode::CpuMode;

    struct Fixture {
        p: Platform,
        mgr: WorldManager,
        vm1: VmId,
        caller: Wid,
        callee: Wid,
    }

    fn fixture() -> Fixture {
        let mut p = Platform::new_default();
        let vm1 = p.create_vm(VmConfig::named("vm1")).unwrap();
        let vm2 = p.create_vm(VmConfig::named("vm2")).unwrap();
        let mut mgr = WorldManager::new();
        // Register from the host side (e.g. during VM setup).
        let caller_desc = WorldDescriptor::guest_user(&p, vm1, 0x1000, 0x40_0000).unwrap();
        let callee_desc = WorldDescriptor::guest_kernel(&p, vm2, 0x2000, 0xFFFF_8000).unwrap();
        let caller = mgr.register_world(&mut p, caller_desc).unwrap();
        let callee = mgr.register_world(&mut p, callee_desc).unwrap();
        p.vmentry(vm1).unwrap();
        p.cpu_mut().force_cr3(0x1000);
        Fixture {
            p,
            mgr,
            vm1,
            caller,
            callee,
        }
    }

    #[test]
    fn call_and_return_round_trip() {
        let mut f = fixture();
        let token = f.mgr.call(&mut f.p, f.caller, f.callee).unwrap();
        assert_eq!(f.p.cpu().mode(), CpuMode::GUEST_KERNEL);
        assert_eq!(f.mgr.call_depth(f.caller), 1);
        f.mgr.ret(&mut f.p, token).unwrap();
        assert_eq!(f.p.cpu().mode(), CpuMode::GUEST_USER);
        assert_eq!(f.p.cpu().cr3(), 0x1000);
        assert_eq!(f.mgr.call_depth(f.caller), 0);
        assert_eq!(f.p.current_vm(), Some(f.vm1));
    }

    #[test]
    fn warm_call_path_has_no_hypervisor_intervention() {
        let mut f = fixture();
        let exits = f.p.cpu().trace().hypervisor_interventions();
        let token = f.mgr.call(&mut f.p, f.caller, f.callee).unwrap();
        f.mgr.ret(&mut f.p, token).unwrap();
        assert_eq!(
            f.p.cpu().trace().hypervisor_interventions(),
            exits,
            "registration pre-fills caches; calls must be intervention-free"
        );
    }

    #[test]
    fn guest_registration_charges_a_hypercall() {
        let mut f = fixture();
        // Register another world from inside the guest.
        let hypercalls = f.p.hypercall_count();
        let desc = WorldDescriptor::guest_user(&f.p, f.vm1, 0x9000, 0x50_0000).unwrap();
        let _ = f.mgr.register_world(&mut f.p, desc).unwrap();
        assert_eq!(f.p.hypercall_count(), hypercalls + 1);
    }

    #[test]
    fn allow_list_policy_enforced() {
        let mut f = fixture();
        f.mgr
            .set_policy(f.callee, AuthPolicy::allow([Wid::from_raw(12345)]));
        let err = f.mgr.call(&mut f.p, f.caller, f.callee).unwrap_err();
        assert_eq!(
            err,
            WorldError::AuthorizationDenied {
                caller: f.caller,
                callee: f.callee
            }
        );
        // Refusal bounced us straight back to the caller's world.
        assert_eq!(f.p.cpu().mode(), CpuMode::GUEST_USER);
        assert_eq!(f.p.cpu().cr3(), 0x1000);
        assert_eq!(f.mgr.call_depth(f.caller), 0);

        // Adding the caller to the list makes it work.
        f.mgr
            .set_policy(f.callee, AuthPolicy::allow([f.caller, Wid::from_raw(9)]));
        assert!(f.mgr.call(&mut f.p, f.caller, f.callee).is_ok());
    }

    #[test]
    fn deny_all_refuses_everyone() {
        let mut f = fixture();
        f.mgr.set_policy(f.callee, AuthPolicy::DenyAll);
        assert!(matches!(
            f.mgr.call(&mut f.p, f.caller, f.callee),
            Err(WorldError::AuthorizationDenied { .. })
        ));
    }

    #[test]
    fn wrong_claimed_caller_is_a_cfi_violation() {
        let mut f = fixture();
        // Software claims to be the callee while the hardware context is
        // the caller's.
        let err = f.mgr.call(&mut f.p, f.callee, f.callee).unwrap_err();
        assert!(matches!(err, WorldError::ControlFlowViolation { .. }));
    }

    #[test]
    fn return_without_call_rejected() {
        let mut f = fixture();
        let fake = CallToken {
            caller: f.caller,
            callee: f.callee,
            started_at_cycles: 0,
            budget_cycles: None,
        };
        // Move into the callee world legitimately first so the return
        // direction resolves, but with an empty stack.
        let token = f.mgr.call(&mut f.p, f.caller, f.callee).unwrap();
        f.mgr.ret(&mut f.p, token).unwrap();
        // Now the stack is empty; enter callee again *without* pushing.
        f.mgr
            .unit
            .world_call(&mut f.p, &f.mgr.table.clone(), f.callee, Direction::Call)
            .unwrap();
        let err = f.mgr.ret(&mut f.p, fake).unwrap_err();
        assert!(matches!(err, WorldError::NoOutstandingCall { .. }));
    }

    #[test]
    fn nested_calls_unwind_in_order() {
        let mut f = fixture();
        // Third world: kernel of VM-1 (so caller VM-1 user -> VM-2 kernel
        // -> VM-1 kernel chain is expressible).
        let third_desc = WorldDescriptor::guest_kernel(&f.p, f.vm1, 0x3000, 0x6000).unwrap();
        let third = f.mgr.register_world(&mut f.p, third_desc).unwrap();
        // Registration was a hypercall that round-tripped; CPU resumed in
        // the caller context.
        f.p.cpu_mut().force_cr3(0x1000);
        let t1 = f.mgr.call(&mut f.p, f.caller, f.callee).unwrap();
        let t2 = f.mgr.call(&mut f.p, f.callee, third).unwrap();
        assert_eq!(f.mgr.call_depth(f.caller), 1);
        assert_eq!(f.mgr.call_depth(f.callee), 1);
        f.mgr.ret(&mut f.p, t2).unwrap();
        assert_eq!(f.p.cpu().cr3(), 0x2000);
        f.mgr.ret(&mut f.p, t1).unwrap();
        assert_eq!(f.p.cpu().cr3(), 0x1000);
    }

    #[test]
    fn timeout_detection_and_forced_cancel() {
        let mut f = fixture();
        f.mgr.arm_timeout(&mut f.p, f.caller, 5_000).unwrap();
        f.p.cpu_mut().force_cr3(0x1000); // hypercall round trip resumed us
        let token = f.mgr.call(&mut f.p, f.caller, f.callee).unwrap();
        assert!(!f.mgr.timed_out(&f.p, &token));
        // Malicious callee burns cycles and never returns.
        f.p.cpu_mut().charge_work(1_000_000, 10, "spinning callee");
        assert!(f.mgr.timed_out(&f.p, &token));
        f.mgr.force_cancel(&mut f.p, token).unwrap();
        // Caller world restored; stack unwound.
        assert_eq!(f.p.cpu().cr3(), 0x1000);
        assert_eq!(f.p.cpu().mode(), CpuMode::GUEST_USER);
        assert_eq!(f.mgr.call_depth(f.caller), 0);
        // Cancelling twice fails.
        assert!(matches!(
            f.mgr.force_cancel(&mut f.p, token),
            Err(WorldError::NoOutstandingCall { .. })
        ));
    }

    #[test]
    fn crossover_redirection_instruction_overhead_is_small() {
        // §7.2 / Table 7: CrossOver adds ~33 instructions per redirected
        // call. The manager's share (save + call + return + restore) is
        // 22; the remaining ~11 are the dispatcher glue charged by the
        // systems crate.
        let mut f = fixture();
        let token = f.mgr.call(&mut f.p, f.caller, f.callee).unwrap();
        let snap_instr = f.p.cpu().meter().instructions();
        let _ = snap_instr;
        f.mgr.ret(&mut f.p, token).unwrap();
        // Measure a fresh warm round trip precisely.
        let before = f.p.cpu().meter().instructions();
        let token = f.mgr.call(&mut f.p, f.caller, f.callee).unwrap();
        f.mgr.ret(&mut f.p, token).unwrap();
        let spent = f.p.cpu().meter().instructions() - before;
        assert_eq!(
            spent,
            SAVE_STATE_INSTRUCTIONS + 1 + 1 + RESTORE_STATE_INSTRUCTIONS,
            "warm round trip: save + world_call + world_return + restore"
        );
    }

    #[test]
    fn quota_propagates_through_manager() {
        let mut p = Platform::new_default();
        let vm = p.create_vm(VmConfig::default()).unwrap();
        let mut mgr = WorldManager::with_quota(1);
        let d1 = WorldDescriptor::guest_user(&p, vm, 0x1000, 0).unwrap();
        let d2 = WorldDescriptor::guest_user(&p, vm, 0x2000, 0).unwrap();
        mgr.register_world(&mut p, d1).unwrap();
        assert!(matches!(
            mgr.register_world(&mut p, d2),
            Err(WorldError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn delete_world_makes_it_uncallable() {
        let mut f = fixture();
        f.p.vmexit(hypervisor::ExitReason::Hlt).unwrap(); // host side
        f.mgr.delete_world(&mut f.p, f.callee).unwrap();
        f.p.vmentry(f.vm1).unwrap();
        f.p.cpu_mut().force_cr3(0x1000);
        assert!(matches!(
            f.mgr.call(&mut f.p, f.caller, f.callee),
            Err(WorldError::InvalidWid { .. })
        ));
    }

    #[test]
    fn table_image_tracks_registrations_in_physical_memory() {
        let mut f = fixture();
        let image = *f.mgr.image().expect("allocated at first registration");
        // Every registered world is walkable in raw physical memory.
        let caller_entry = image
            .hardware_walk(&f.p, f.caller)
            .unwrap()
            .expect("caller serialized");
        assert_eq!(caller_entry.context.ptp, 0x1000);
        // Deleting a world removes it from the image too.
        f.p.vmexit(hypervisor::ExitReason::Hlt).unwrap();
        f.mgr.delete_world(&mut f.p, f.callee).unwrap();
        assert_eq!(image.hardware_walk(&f.p, f.callee).unwrap(), None);
        assert!(image.hardware_walk(&f.p, f.caller).unwrap().is_some());
    }
}
