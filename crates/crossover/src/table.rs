//! The hypervisor-managed world table (§3.2).
//!
//! The table lives "in a region of memory that can be accessed only by the
//! highest privileged software"; guests manipulate it exclusively through
//! registration hypercalls. WIDs are minted from a monotonic counter and
//! never reused, which is what makes them unforgeable: no sequence of
//! create/delete operations can make a stale WID name a new world.

use std::collections::HashMap;

use hypervisor::vm::VmId;

use crate::world::{Wid, WorldContext, WorldDescriptor, WorldEntry};
use crate::WorldError;

/// Default per-VM world-creation quota (§3.2: "a hypervisor can limit the
/// number of worlds a VM can create to avoid DoS attacks").
pub const DEFAULT_WORLD_QUOTA: usize = 16;

/// Read-only world resolution: what the hardware walk needs on a
/// WT-/IWT-cache miss.
///
/// [`WorldTable`] is the sequential implementation; the runtime crate's
/// sharded table implements the same contract with lock striping, so the
/// [`crate::call::WorldCallUnit`] can drive either.
pub trait WorldLookup {
    /// Resolves a WID to its entry (WT-cache miss walk).
    fn entry_of(&self, wid: Wid) -> Option<WorldEntry>;

    /// Resolves a hardware context to its WID (IWT-cache miss walk).
    fn wid_of(&self, context: &WorldContext) -> Option<Wid>;
}

impl WorldLookup for WorldTable {
    fn entry_of(&self, wid: Wid) -> Option<WorldEntry> {
        self.lookup(wid).copied()
    }

    fn wid_of(&self, context: &WorldContext) -> Option<Wid> {
        self.lookup_context(context)
    }
}

/// The world table.
///
/// # Example
///
/// ```
/// use xover_crossover::table::WorldTable;
/// use xover_crossover::world::WorldDescriptor;
///
/// let mut table = WorldTable::new();
/// let wid = table.create(WorldDescriptor::host_user(0x1000, 0x40_0000))?;
/// assert!(table.lookup(wid).is_some());
/// table.delete(wid)?;
/// assert!(table.lookup(wid).is_none());
/// # Ok::<(), xover_crossover::WorldError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WorldTable {
    entries: HashMap<u64, WorldEntry>,
    by_context: HashMap<WorldContext, Wid>,
    owners: HashMap<u64, Option<VmId>>,
    per_vm_count: HashMap<VmId, usize>,
    next_wid: u64,
    quota: usize,
}

impl WorldTable {
    /// Creates an empty table with the default quota.
    pub fn new() -> WorldTable {
        WorldTable::with_quota(DEFAULT_WORLD_QUOTA)
    }

    /// Creates an empty table with a custom per-VM quota.
    ///
    /// # Panics
    ///
    /// Panics if `quota` is zero.
    pub fn with_quota(quota: usize) -> WorldTable {
        assert!(quota > 0, "quota must be positive");
        WorldTable {
            entries: HashMap::new(),
            by_context: HashMap::new(),
            owners: HashMap::new(),
            per_vm_count: HashMap::new(),
            next_wid: 1,
            quota,
        }
    }

    /// Number of present worlds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no worlds are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The per-VM quota.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Registers a world and mints its WID.
    ///
    /// # Errors
    ///
    /// [`WorldError::QuotaExceeded`] if the owning VM is at its quota.
    /// Re-registering an identical context replaces the old entry
    /// (the old WID is invalidated) without consuming extra quota.
    pub fn create(&mut self, descriptor: WorldDescriptor) -> Result<Wid, WorldError> {
        // Replacement: same context re-registered.
        if let Some(old) = self.by_context.get(&descriptor.context).copied() {
            self.entries.remove(&old.raw());
            self.owners.remove(&old.raw());
            if let Some(vm) = descriptor.owner {
                // Quota slot is reused, no decrement needed — but keep
                // the count consistent since we re-add below.
                *self.per_vm_count.entry(vm).or_insert(1) -= 1;
            }
        } else if let Some(vm) = descriptor.owner {
            let count = self.per_vm_count.entry(vm).or_insert(0);
            if *count >= self.quota {
                return Err(WorldError::QuotaExceeded { quota: self.quota });
            }
        }
        let wid = Wid::from_raw(self.next_wid);
        self.next_wid += 1;
        self.insert_entry(descriptor, wid);
        Ok(wid)
    }

    /// Registers a world under an externally minted WID — the shard-side
    /// entry point used by the runtime's sharded table, whose global
    /// allocator mints WIDs across all shards. The internal counter is
    /// advanced past `wid` so local [`WorldTable::create`] calls can
    /// never collide with externally minted ids.
    ///
    /// # Errors
    ///
    /// [`WorldError::QuotaExceeded`] exactly as [`WorldTable::create`].
    ///
    /// # Panics
    ///
    /// Panics if `wid` already names a present entry (the allocator must
    /// never hand out duplicates).
    pub fn create_with_wid(
        &mut self,
        descriptor: WorldDescriptor,
        wid: Wid,
    ) -> Result<Wid, WorldError> {
        assert!(
            !self.entries.contains_key(&wid.raw()),
            "duplicate WID {wid} from external allocator"
        );
        if let Some(old) = self.by_context.get(&descriptor.context).copied() {
            self.entries.remove(&old.raw());
            self.owners.remove(&old.raw());
            if let Some(vm) = descriptor.owner {
                *self.per_vm_count.entry(vm).or_insert(1) -= 1;
            }
        } else if let Some(vm) = descriptor.owner {
            let count = self.per_vm_count.entry(vm).or_insert(0);
            if *count >= self.quota {
                return Err(WorldError::QuotaExceeded { quota: self.quota });
            }
        }
        self.next_wid = self.next_wid.max(wid.raw() + 1);
        self.insert_entry(descriptor, wid);
        Ok(wid)
    }

    fn insert_entry(&mut self, descriptor: WorldDescriptor, wid: Wid) {
        let entry = WorldEntry {
            present: true,
            wid,
            context: descriptor.context,
            entry_point: descriptor.entry_point,
        };
        self.entries.insert(wid.raw(), entry);
        self.by_context.insert(descriptor.context, wid);
        self.owners.insert(wid.raw(), descriptor.owner);
        if let Some(vm) = descriptor.owner {
            *self.per_vm_count.entry(vm).or_insert(0) += 1;
        }
    }

    /// Deletes a world.
    ///
    /// # Errors
    ///
    /// [`WorldError::InvalidWid`] if absent.
    pub fn delete(&mut self, wid: Wid) -> Result<(), WorldError> {
        let entry = self
            .entries
            .remove(&wid.raw())
            .ok_or(WorldError::InvalidWid { wid })?;
        self.by_context.remove(&entry.context);
        if let Some(Some(vm)) = self.owners.remove(&wid.raw()) {
            if let Some(c) = self.per_vm_count.get_mut(&vm) {
                *c = c.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// Looks up a world by WID — the walk the hypervisor performs on a
    /// WT-cache miss.
    pub fn lookup(&self, wid: Wid) -> Option<&WorldEntry> {
        self.entries.get(&wid.raw())
    }

    /// Looks up a world by context — the walk on an IWT-cache miss.
    pub fn lookup_context(&self, context: &WorldContext) -> Option<Wid> {
        self.by_context.get(context).copied()
    }

    /// Number of worlds owned by `vm`.
    pub fn world_count(&self, vm: VmId) -> usize {
        self.per_vm_count.get(&vm).copied().unwrap_or(0)
    }

    /// Iterates over all present entries.
    pub fn iter(&self) -> impl Iterator<Item = &WorldEntry> + '_ {
        self.entries.values()
    }
}

impl Default for WorldTable {
    fn default() -> WorldTable {
        WorldTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervisor::platform::Platform;
    use hypervisor::vm::VmConfig;

    fn guest_desc(p: &Platform, vm: VmId, cr3: u64) -> WorldDescriptor {
        WorldDescriptor::guest_user(p, vm, cr3, 0x40_0000).unwrap()
    }

    #[test]
    fn wids_are_never_reused() {
        let mut t = WorldTable::new();
        let a = t.create(WorldDescriptor::host_user(0x1000, 0)).unwrap();
        t.delete(a).unwrap();
        let b = t.create(WorldDescriptor::host_user(0x1000, 0)).unwrap();
        assert_ne!(a, b, "a deleted WID must never name a new world");
        assert!(t.lookup(a).is_none());
        assert!(t.lookup(b).is_some());
    }

    #[test]
    fn context_lookup_inverts_wid_lookup() {
        let mut t = WorldTable::new();
        let d = WorldDescriptor::host_kernel(0x3000, 0xFF);
        let wid = t.create(d).unwrap();
        assert_eq!(t.lookup_context(&d.context), Some(wid));
        assert_eq!(t.lookup(wid).unwrap().entry_point, 0xFF);
    }

    #[test]
    fn quota_enforced_per_vm() {
        let mut p = Platform::new_default();
        let vm1 = p.create_vm(VmConfig::default()).unwrap();
        let vm2 = p.create_vm(VmConfig::default()).unwrap();
        let mut t = WorldTable::with_quota(2);
        t.create(guest_desc(&p, vm1, 0x1000)).unwrap();
        t.create(guest_desc(&p, vm1, 0x2000)).unwrap();
        assert_eq!(
            t.create(guest_desc(&p, vm1, 0x3000)),
            Err(WorldError::QuotaExceeded { quota: 2 })
        );
        // vm2's quota is independent.
        assert!(t.create(guest_desc(&p, vm2, 0x1000)).is_ok());
        assert_eq!(t.world_count(vm1), 2);
        assert_eq!(t.world_count(vm2), 1);
    }

    #[test]
    fn delete_releases_quota() {
        let mut p = Platform::new_default();
        let vm = p.create_vm(VmConfig::default()).unwrap();
        let mut t = WorldTable::with_quota(1);
        let wid = t.create(guest_desc(&p, vm, 0x1000)).unwrap();
        t.delete(wid).unwrap();
        assert!(t.create(guest_desc(&p, vm, 0x2000)).is_ok());
    }

    #[test]
    fn host_worlds_are_unquota_ed() {
        let mut t = WorldTable::with_quota(1);
        for i in 0..10 {
            t.create(WorldDescriptor::host_user(0x1000 * (i + 1), 0))
                .unwrap();
        }
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn reregistering_same_context_replaces_old_wid() {
        let mut p = Platform::new_default();
        let vm = p.create_vm(VmConfig::default()).unwrap();
        let mut t = WorldTable::with_quota(1);
        let old = t.create(guest_desc(&p, vm, 0x1000)).unwrap();
        let new = t.create(guest_desc(&p, vm, 0x1000)).unwrap();
        assert_ne!(old, new);
        assert!(t.lookup(old).is_none(), "old WID invalidated");
        assert_eq!(t.world_count(vm), 1, "no extra quota consumed");
    }

    #[test]
    fn delete_unknown_wid_errors() {
        let mut t = WorldTable::new();
        let ghost = Wid::from_raw(99);
        assert_eq!(t.delete(ghost), Err(WorldError::InvalidWid { wid: ghost }));
    }

    #[test]
    #[should_panic(expected = "quota must be positive")]
    fn zero_quota_panics() {
        WorldTable::with_quota(0);
    }
}
