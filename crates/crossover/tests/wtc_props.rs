//! Property tests for the set-associative WT/IWT caches.
//!
//! A seeded [`SplitMix64`] drives randomised fill/lookup/invalidate
//! streams against `RefModel`, an obviously-correct executable spec:
//! per-set vectors kept in recency order, every operation O(set size).
//! The cache must agree with the model on *every* lookup result, on the
//! entry count, and on which key a full set evicts (per-set LRU).
//!
//! The model needs to know which set a key lands in, so it restates the
//! SplitMix64 finalizer the cache hashes with — the hash is part of the
//! observable contract (it decides conflict sets), so pinning it here is
//! deliberate.

use machine::mode::{Operation, Ring};
use machine::rng::SplitMix64;
use xover_crossover::world::{Wid, WorldContext, WorldEntry};
use xover_crossover::wtc::{CacheGeometry, IwtCache, WtCache};

/// The cache's hash finalizer, restated (see module docs).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Reference model: per-set association lists in recency order
/// (front = least recently used, back = most recently used).
struct RefModel<K: Copy + Eq, V: Copy> {
    sets: Vec<Vec<(K, V)>>,
    ways: usize,
}

impl<K: Copy + Eq, V: Copy> RefModel<K, V> {
    fn new(geometry: CacheGeometry) -> RefModel<K, V> {
        RefModel {
            sets: (0..geometry.sets).map(|_| Vec::new()).collect(),
            ways: geometry.ways,
        }
    }

    fn set_of(&self, hash: u64) -> usize {
        (mix64(hash) as usize) & (self.sets.len() - 1)
    }

    fn lookup(&mut self, hash: u64, key: K) -> Option<V> {
        let set = self.set_of(hash);
        let pos = self.sets[set].iter().position(|(k, _)| *k == key)?;
        let line = self.sets[set].remove(pos);
        self.sets[set].push(line); // refresh recency
        Some(line.1)
    }

    /// Fills `key`; returns the evicted key if the set was full.
    fn fill(&mut self, hash: u64, key: K, value: V) -> Option<K> {
        let set = self.set_of(hash);
        if let Some(pos) = self.sets[set].iter().position(|(k, _)| *k == key) {
            self.sets[set].remove(pos);
            self.sets[set].push((key, value));
            return None;
        }
        let victim = if self.sets[set].len() == self.ways {
            Some(self.sets[set].remove(0).0) // front = LRU
        } else {
            None
        };
        self.sets[set].push((key, value));
        victim
    }

    fn invalidate(&mut self, hash: u64, key: K) {
        let set = self.set_of(hash);
        self.sets[set].retain(|(k, _)| *k != key);
    }

    fn invalidate_values(&mut self, mut pred: impl FnMut(&V) -> bool) {
        for set in &mut self.sets {
            set.retain(|(_, v)| !pred(v));
        }
    }

    fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

fn ctx(ptp: u64) -> WorldContext {
    WorldContext {
        operation: Operation::NonRoot,
        ring: Ring::Ring0,
        eptp: 0xE_0000 + (ptp & 0x3) * 0x1000,
        ptp,
    }
}

fn entry(wid: u64) -> WorldEntry {
    WorldEntry {
        present: true,
        wid: Wid::from_raw(wid),
        context: ctx(0x1000 * wid),
        entry_point: 0xE000 + wid,
    }
}

/// The context-hash the IWT cache uses, restated like `mix64`.
fn context_hash(c: &WorldContext) -> u64 {
    let op = c.operation.is_host() as u64;
    let ring = c.ring.level() as u64;
    mix64(c.ptp ^ mix64(c.eptp ^ mix64(op << 2 | ring)))
}

const GEOMETRIES: [(usize, usize); 4] = [(1, 2), (1, 4), (4, 2), (8, 4)];
const SEEDS: [u64; 4] = [1, 0xDEAD_BEEF, 0x5EED_5EED, u64::MAX / 7];
const OPS_PER_RUN: usize = 4_000;

#[test]
fn wt_cache_agrees_with_reference_model() {
    for (sets, ways) in GEOMETRIES {
        for seed in SEEDS {
            let geometry = CacheGeometry::new(sets, ways);
            let mut cache = WtCache::with_geometry(geometry);
            let mut model: RefModel<u64, WorldEntry> = RefModel::new(geometry);
            let mut rng = SplitMix64::new(seed);
            // Key universe ~3× capacity so evictions are frequent.
            let universe = (geometry.capacity() as u64 * 3).max(4);
            for _ in 0..OPS_PER_RUN {
                let wid = rng.below(universe);
                match rng.below(4) {
                    0 => {
                        cache.fill(entry(wid));
                        model.fill(wid, wid, entry(wid));
                    }
                    1 => {
                        cache.invalidate(Wid::from_raw(wid));
                        model.invalidate(wid, wid);
                    }
                    _ => {
                        let got = cache.lookup(Wid::from_raw(wid));
                        let want = model.lookup(wid, wid);
                        assert_eq!(
                            got.map(|e| e.wid),
                            want.map(|e| e.wid),
                            "lookup({wid}) diverged (geometry {sets}x{ways}, seed {seed:#x})"
                        );
                    }
                }
                assert_eq!(cache.len(), model.len(), "entry count diverged");
            }
            assert!(cache.len() <= geometry.capacity());
        }
    }
}

#[test]
fn wt_evicts_exactly_the_per_set_lru_way() {
    for seed in SEEDS {
        let geometry = CacheGeometry::new(4, 4);
        let mut cache = WtCache::with_geometry(geometry);
        let mut model: RefModel<u64, WorldEntry> = RefModel::new(geometry);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..OPS_PER_RUN {
            let wid = rng.below(64);
            if rng.flip() {
                // The model predicts the victim; after the fill the
                // victim must miss and every other modelled key must hit.
                let victim = model.fill(wid, wid, entry(wid));
                cache.fill(entry(wid));
                if let Some(v) = victim {
                    assert!(
                        cache.lookup(Wid::from_raw(v)).is_none(),
                        "evicted {v} still resident (seed {seed:#x})"
                    );
                    model.lookup(v, v); // keep stats symmetric (miss both)
                }
            } else {
                let got = cache.lookup(Wid::from_raw(wid)).map(|e| e.wid.raw());
                let want = model.lookup(wid, wid).map(|e| e.wid.raw());
                assert_eq!(got, want, "lookup({wid}) diverged (seed {seed:#x})");
            }
        }
        // Survivors agree exactly: every modelled entry hits, and the
        // cache holds nothing else.
        for set in 0..4 {
            for &(k, _) in &model.sets[set] {
                assert!(cache.lookup(Wid::from_raw(k)).is_some());
            }
        }
        assert_eq!(cache.len(), model.len());
    }
}

#[test]
fn iwt_agrees_with_model_and_broadcast_leaves_no_stale_entries() {
    for seed in SEEDS {
        let geometry = CacheGeometry::new(8, 2);
        let mut cache = IwtCache::with_geometry(geometry);
        let mut model: RefModel<WorldContext, Wid> = RefModel::new(geometry);
        let mut rng = SplitMix64::new(seed);
        let contexts: Vec<WorldContext> = (0..48).map(|i| ctx(0x1000 * (i + 1))).collect();
        for _ in 0..OPS_PER_RUN {
            let c = contexts[rng.below(contexts.len() as u64) as usize];
            let wid = Wid::from_raw(rng.below(16));
            match rng.below(8) {
                0..=2 => {
                    cache.fill(c, wid);
                    model.fill(context_hash(&c), c, wid);
                }
                3 => {
                    // The broadcast a world deletion fans out: afterwards
                    // *no* context may still map to the dead WID.
                    cache.invalidate_wid(wid);
                    model.invalidate_values(|w| *w == wid);
                    for probe in &contexts {
                        let got = cache.lookup(probe);
                        assert_ne!(got, Some(wid), "stale WID after broadcast");
                        // The sweep above is also a full model/cache
                        // comparison under recency churn.
                        assert_eq!(got, model.lookup(context_hash(probe), *probe));
                    }
                }
                _ => {
                    let got = cache.lookup(&c);
                    let want = model.lookup(context_hash(&c), c);
                    assert_eq!(got, want, "IWT lookup diverged (seed {seed:#x})");
                }
            }
            assert_eq!(cache.len(), model.len());
        }
    }
}
