//! The gateway reactor: a deterministic virtual-time event loop that
//! drains per-tenant submission rings into the service and delivers
//! batched completions back.
//!
//! The service is a batch simulator — workers run when `start()` is
//! called and verdicts surface at `drain()` — so the reactor plays the
//! admission timeline *before* start using a virtual-server model of
//! the pool: `workers` servers, each admission occupying one for its
//! estimated duration. That model is what paces quota release (a
//! tenant's in-flight count drops when its modeled completion retires),
//! giving the same admission dynamics a live pool would show, while
//! staying exactly reproducible. After the pool drains, a second pass
//! replays the same servers with each call's *true* on-CPU latency to
//! place completion-delivery instants, so reported end-to-end latencies
//! reflect measured service time, not the estimate.
//!
//! Three invariants the loop maintains (checked by
//! [`GatewayReport::check_conservation`] and re-checked from the
//! recorded trace by `obs::verify`):
//!
//! 1. every enqueued submission is admitted or shed, never dropped;
//! 2. every admitted call produces exactly one delivered completion;
//! 3. sheds carry an explicit reason, counted per tenant.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use obs::{Event, EventKind};
use runtime::report::percentile;
use runtime::{CallVerdict, ServiceReport, SubmitError, WorldCallService};

use crate::ring::{CompletionRing, SubmissionRing};
use crate::{
    CallRequest, Completion, GatewayConfig, GatewayMode, ShedReason, Submission, GATEWAY_TRACK,
};

/// The admission model's estimate of per-call overhead on top of the
/// requested body work: state save, authentication, `world_call`,
/// return, state restore. Only used to pace the virtual servers during
/// admission — completion delivery uses each call's measured on-CPU
/// latency, so a wrong estimate skews interleaving, never accounting.
pub const EST_CALL_OVERHEAD_CYCLES: u64 = 200;

/// One admission the reactor performed, in admission order.
#[derive(Debug, Clone, Copy)]
struct Admitted {
    token: u64,
    user_tag: u64,
    tenant: u32,
    arrival_cycles: u64,
    admitted_cycles: u64,
}

/// Per-tenant accounting the reactor accumulates.
#[derive(Debug, Default, Clone, Copy)]
struct TenantTally {
    submitted: u64,
    admitted: u64,
    shed_ring_full: u64,
    shed_health: u64,
    shed_busy: u64,
    shed_denied: u64,
}

impl TenantTally {
    fn shed(&self) -> u64 {
        self.shed_ring_full + self.shed_health + self.shed_busy + self.shed_denied
    }
}

/// What one tenant saw from a gateway run.
#[derive(Debug)]
pub struct TenantReport {
    /// Tenant id (dense, the gateway config index).
    pub tenant: u32,
    /// Submissions the tenant enqueued.
    pub submitted: u64,
    /// Of those, admitted into the service.
    pub admitted: u64,
    /// Shed because the submission ring was full at arrival.
    pub shed_ring_full: u64,
    /// Shed because the service's health ladder was at `Shedding`.
    pub shed_health: u64,
    /// Shed on service backpressure (`Busy`, or the busy latch).
    pub shed_busy: u64,
    /// Shed because the service's authz policy holds no grant for the
    /// submission's (caller, callee) pair.
    pub shed_denied: u64,
    /// Deepest the tenant's submission ring got.
    pub ring_high_water: usize,
    /// The tenant's completion ring, holding every delivered verdict.
    pub completions: CompletionRing,
    /// p99 of end-to-end (arrival → delivery) cycles over the tenant's
    /// admitted calls; 0 if none were admitted.
    pub e2e_p99_cycles: u64,
}

impl TenantReport {
    /// Total sheds for this tenant, all reasons.
    pub fn shed(&self) -> u64 {
        self.shed_ring_full + self.shed_health + self.shed_busy + self.shed_denied
    }
}

/// The drained result of a gateway run: gateway-level accounting, the
/// per-tenant reports (completion rings included) and the wrapped
/// [`ServiceReport`] from the pool underneath.
#[derive(Debug)]
pub struct GatewayReport {
    /// Submissions enqueued across all tenants.
    pub submitted: u64,
    /// Of those, admitted into the service.
    pub admitted: u64,
    /// Of those, shed — every one carries a reason below.
    pub shed: u64,
    /// Sheds at the submission-ring door.
    pub shed_ring_full: u64,
    /// Sheds because the health ladder said `Shedding`.
    pub shed_health: u64,
    /// Sheds on service backpressure.
    pub shed_busy: u64,
    /// Sheds on authz policy refusal at the admission precheck.
    pub shed_denied: u64,
    /// Completions delivered to tenant rings (ring mode: == admitted).
    pub completions_delivered: u64,
    /// Delivery batches flushed (== `completion_batch` events emitted).
    pub completion_batches: u64,
    /// Per-tenant breakdowns, indexed by tenant id.
    pub tenants: Vec<TenantReport>,
    /// End-to-end cycles of every admitted call, sorted ascending.
    pub admitted_e2e_cycles: Vec<u64>,
    /// Gateway obs events (admit/shed/batch) on [`GATEWAY_TRACK`],
    /// time-ordered. Empty in `Off` mode.
    pub events: Vec<Event>,
    /// The underlying pool's drained report.
    pub service: ServiceReport,
}

impl GatewayReport {
    /// Percentile of end-to-end admitted-call latency (cycles).
    pub fn e2e_percentile(&self, pct: f64) -> u64 {
        percentile(&self.admitted_e2e_cycles, pct)
    }

    /// Checks the gateway's conservation contract and returns the first
    /// violation, if any:
    ///
    /// * `submitted == admitted + shed`, globally and per tenant;
    /// * every admitted call got exactly one verdict from the service
    ///   (`admitted == completed + timed_out + failed + dead_lettered`);
    /// * ring mode: every admitted call's completion was delivered.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.submitted != self.admitted + self.shed {
            return Err(format!(
                "gateway lost submissions: {} submitted != {} admitted + {} shed",
                self.submitted, self.admitted, self.shed
            ));
        }
        if self.shed != self.shed_ring_full + self.shed_health + self.shed_busy + self.shed_denied {
            return Err(format!("{} sheds lack a reason", self.shed));
        }
        for t in &self.tenants {
            if t.submitted != t.admitted + t.shed() {
                return Err(format!(
                    "tenant {}: {} submitted != {} admitted + {} shed",
                    t.tenant,
                    t.submitted,
                    t.admitted,
                    t.shed()
                ));
            }
        }
        let verdicts = self.service.completed
            + self.service.timed_out
            + self.service.failed
            + self.service.dead_lettered
            + self.service.denied;
        if self.admitted != verdicts {
            return Err(format!(
                "verdict conservation broken: {} admitted != {verdicts} verdicts",
                self.admitted
            ));
        }
        if !self.events.is_empty() && self.completions_delivered != self.admitted {
            return Err(format!(
                "delivery broken: {} admitted != {} completions delivered",
                self.admitted, self.completions_delivered
            ));
        }
        Ok(())
    }
}

/// The async tenant gateway. Build one over a [`GatewayConfig`], stage
/// the open-loop arrival trace with [`Gateway::enqueue`], then hand it
/// a fully configured (worlds registered, channels attached, not yet
/// started) service with [`Gateway::run`].
#[derive(Debug)]
pub struct Gateway {
    config: GatewayConfig,
    staged: Vec<Submission>,
    next_token: u64,
}

impl Gateway {
    /// A gateway with the given configuration.
    ///
    /// # Panics
    ///
    /// On nonsensical knobs (zero quota, ring capacity or batch size).
    pub fn new(config: GatewayConfig) -> Gateway {
        config.validate();
        Gateway {
            config,
            staged: Vec::new(),
            next_token: 0,
        }
    }

    /// Stages one open-loop submission arriving at `at_cycles` of
    /// virtual time, returning its completion token. Staging is
    /// unbounded — it is the *arrival trace*, not the ring; ring
    /// capacity is enforced when the reactor replays the trace.
    ///
    /// # Panics
    ///
    /// In ring mode, if `tenant` has no [`crate::TenantConfig`] entry.
    pub fn enqueue(&mut self, tenant: u32, at_cycles: u64, request: CallRequest) -> u64 {
        if self.config.mode == GatewayMode::Rings {
            assert!(
                (tenant as usize) < self.config.tenants.len(),
                "tenant {tenant} has no gateway config entry"
            );
        }
        let token = self.next_token;
        self.next_token += 1;
        self.staged.push(Submission {
            token,
            tenant,
            arrival_cycles: at_cycles,
            request,
        });
        token
    }

    /// Runs the staged trace against the service and drains it.
    ///
    /// The gateway owns the service lifecycle from here: admission
    /// happens against the un-started pool (every admitted call is
    /// pre-start, keeping single-worker runs cycle-deterministic), then
    /// `start()`/`drain()`, then completion delivery. In `Off` mode the
    /// staged requests are submitted untouched in arrival order — the
    /// service must be configured with queue capacity for the whole
    /// trace, exactly as a blocking-submit harness would be.
    pub fn run(mut self, svc: WorldCallService) -> GatewayReport {
        self.staged
            .sort_by_key(|s| (s.arrival_cycles, s.tenant, s.token));
        match self.config.mode {
            GatewayMode::Off => self.run_passthrough(svc),
            GatewayMode::Rings => self.run_rings(svc),
        }
    }

    /// `Off` mode: hand the trace to the service untouched.
    fn run_passthrough(self, mut svc: WorldCallService) -> GatewayReport {
        let mut tallies: HashMap<u32, u64> = HashMap::new();
        for sub in &self.staged {
            svc.submit(sub.request).expect("service open until drain");
            *tallies.entry(sub.tenant).or_insert(0) += 1;
        }
        svc.start();
        let service = svc.drain();
        let submitted = self.staged.len() as u64;
        let mut tenants: Vec<TenantReport> = tallies
            .into_iter()
            .map(|(tenant, submitted)| TenantReport {
                tenant,
                submitted,
                admitted: submitted,
                shed_ring_full: 0,
                shed_health: 0,
                shed_busy: 0,
                shed_denied: 0,
                ring_high_water: 0,
                completions: CompletionRing::new(),
                e2e_p99_cycles: 0,
            })
            .collect();
        tenants.sort_by_key(|t| t.tenant);
        GatewayReport {
            submitted,
            admitted: submitted,
            shed: 0,
            shed_ring_full: 0,
            shed_health: 0,
            shed_busy: 0,
            shed_denied: 0,
            completions_delivered: 0,
            completion_batches: 0,
            tenants,
            admitted_e2e_cycles: Vec::new(),
            events: Vec::new(),
            service,
        }
    }

    /// Ring mode: the two-pass reactor described in the module docs.
    fn run_rings(self, mut svc: WorldCallService) -> GatewayReport {
        let n = self.config.tenants.len();
        let workers = svc.config().workers.max(1);
        let mut rings: Vec<SubmissionRing> = self
            .config
            .tenants
            .iter()
            .map(|t| SubmissionRing::new(t.ring_capacity))
            .collect();
        let mut tallies = vec![TenantTally::default(); n];
        let mut in_flight = vec![0usize; n];
        // The admission model: one virtual server per worker, a min-heap
        // of server-free instants, and a min-heap of modeled completion
        // retirements (done, admission seq, tenant).
        let mut servers: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0)).collect();
        let mut retirements: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut admissions: Vec<Admitted> = Vec::new();
        let mut events: Vec<Event> = Vec::new();
        let mut busy_streak = 0u32;
        let mut busy_latched = false;

        let shed = |sub: Submission,
                    reason: ShedReason,
                    at: u64,
                    tallies: &mut Vec<TenantTally>,
                    events: &mut Vec<Event>| {
            let tally = &mut tallies[sub.tenant as usize];
            match reason {
                ShedReason::RingFull => tally.shed_ring_full += 1,
                ShedReason::Health => tally.shed_health += 1,
                ShedReason::Busy => tally.shed_busy += 1,
                ShedReason::Denied => tally.shed_denied += 1,
            }
            events.push(Event::new(
                at,
                GATEWAY_TRACK,
                EventKind::GatewayShed,
                sub.token,
                u64::from(sub.tenant),
                reason as u64,
            ));
        };

        let mut t: u64 = 0;
        let mut next_arrival = 0usize;
        loop {
            // 1. Arrivals due at or before t enter their tenant's ring
            //    (or shed at the door).
            while next_arrival < self.staged.len() && self.staged[next_arrival].arrival_cycles <= t
            {
                let sub = self.staged[next_arrival];
                next_arrival += 1;
                tallies[sub.tenant as usize].submitted += 1;
                if busy_latched {
                    // Gateway-decided sheds (the service never sees the
                    // submission) feed the service's SLO watchdog here
                    // and at each site below, so the per-tenant
                    // shed-rate objective covers the whole decided
                    // load. The try_submit `Busy` arm does NOT feed it:
                    // the service already counted that decision itself.
                    svc.note_external_shed(sub.tenant, t);
                    shed(sub, ShedReason::Busy, t, &mut tallies, &mut events);
                } else if let Err(rejected) = rings[sub.tenant as usize].push(sub) {
                    svc.note_external_shed(rejected.tenant, t);
                    shed(rejected, ShedReason::RingFull, t, &mut tallies, &mut events);
                }
            }
            // 2. Modeled completions due at or before t retire, freeing
            //    their tenant's quota.
            while let Some(&Reverse((done, _, tenant))) = retirements.peek() {
                if done > t {
                    break;
                }
                retirements.pop();
                in_flight[tenant as usize] -= 1;
            }
            // 3. WRR admission rounds at this instant, until a full
            //    round admits nothing.
            loop {
                let mut any = false;
                for tid in 0..n {
                    let mut credits = self.config.tenants[tid].class.weight();
                    while credits > 0 && !busy_latched {
                        if rings[tid].peek().is_none()
                            || in_flight[tid] >= self.config.tenants[tid].quota
                        {
                            break;
                        }
                        let sub = rings[tid].pop().expect("peeked above");
                        if svc.health().is_shedding() {
                            // The ladder's bottom rung: shed here, at
                            // the gateway, with per-tenant accounting —
                            // the service never sees the request.
                            svc.note_external_shed(sub.tenant, t);
                            shed(sub, ShedReason::Health, t, &mut tallies, &mut events);
                            continue;
                        }
                        // Authz precheck, side-effect-free (`would_admit`
                        // touches no counters and spends no tokens): a
                        // (caller, callee) pair the policy would refuse
                        // at dispatch anyway is shed here instead of
                        // burning queue capacity. Chain-provenance and
                        // rate-limit verdicts stay at dispatch — only
                        // the static grant is knowable this early.
                        if let Some(policy) = svc.authz() {
                            if !policy.would_admit(sub.request.caller, sub.request.callee) {
                                svc.note_external_shed(sub.tenant, t);
                                shed(sub, ShedReason::Denied, t, &mut tallies, &mut events);
                                continue;
                            }
                        }
                        let wire = sub.request.with_tag(sub.token).with_tenant(sub.tenant);
                        match svc.try_submit(wire) {
                            Ok(()) => {
                                busy_streak = 0;
                                let Reverse(free) = servers.pop().expect("one per worker");
                                let done = free.max(t)
                                    + sub.request.work_cycles
                                    + EST_CALL_OVERHEAD_CYCLES;
                                servers.push(Reverse(done));
                                retirements.push(Reverse((
                                    done,
                                    admissions.len() as u64,
                                    sub.tenant,
                                )));
                                in_flight[tid] += 1;
                                tallies[tid].admitted += 1;
                                events.push(Event::new(
                                    t,
                                    GATEWAY_TRACK,
                                    EventKind::GatewayAdmit,
                                    sub.token,
                                    u64::from(sub.tenant),
                                    sub.request.callee.raw(),
                                ));
                                admissions.push(Admitted {
                                    token: sub.token,
                                    user_tag: sub.request.tag,
                                    tenant: sub.tenant,
                                    arrival_cycles: sub.arrival_cycles,
                                    admitted_cycles: t,
                                });
                                credits -= 1;
                                any = true;
                            }
                            Err(SubmitError::Busy(_)) => {
                                shed(sub, ShedReason::Busy, t, &mut tallies, &mut events);
                                busy_streak += 1;
                                if busy_streak >= self.config.busy_shed_threshold {
                                    busy_latched = true;
                                }
                            }
                            Err(SubmitError::Closed(_)) => {
                                unreachable!("gateway owns the service until drain")
                            }
                        }
                    }
                }
                if !any {
                    break;
                }
            }
            // 4. A tripped busy latch means the service queue cannot
            //    take more pre-start work at all: fast-shed the whole
            //    remaining backlog instead of knocking per head.
            if busy_latched {
                for ring in rings.iter_mut() {
                    while let Some(sub) = ring.pop() {
                        svc.note_external_shed(sub.tenant, t);
                        shed(sub, ShedReason::Busy, t, &mut tallies, &mut events);
                    }
                }
                while next_arrival < self.staged.len() {
                    let sub = self.staged[next_arrival];
                    next_arrival += 1;
                    tallies[sub.tenant as usize].submitted += 1;
                    svc.note_external_shed(sub.tenant, sub.arrival_cycles);
                    shed(
                        sub,
                        ShedReason::Busy,
                        sub.arrival_cycles,
                        &mut tallies,
                        &mut events,
                    );
                }
                break;
            }
            // 5. Advance to the next arrival or modeled retirement;
            //    nothing left means the trace is fully decided.
            let next_a = self.staged.get(next_arrival).map(|s| s.arrival_cycles);
            let next_r = retirements.peek().map(|&Reverse((done, _, _))| done);
            t = match (next_a, next_r) {
                (Some(a), Some(r)) => a.min(r),
                (Some(a), None) => a,
                (None, Some(r)) => r,
                (None, None) => break,
            };
        }

        // The admission timeline is fixed; now run the pool for real.
        svc.start();
        let service = svc.drain();

        // Pass 2: replay the servers with measured latencies to place
        // completion-delivery instants, then batch per tenant.
        let mut by_token: HashMap<u64, (CallVerdict, u64)> = service
            .outcomes
            .iter()
            .map(|o| (o.request.tag, (o.verdict.clone(), o.latency_cycles)))
            .collect();
        let mut servers: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0)).collect();
        let mut deliveries: Vec<Completion> = admissions
            .iter()
            .map(|adm| {
                let (verdict, latency) = by_token
                    .remove(&adm.token)
                    .expect("exactly one verdict per admitted call");
                let Reverse(free) = servers.pop().expect("one per worker");
                let done = free.max(adm.admitted_cycles) + latency;
                servers.push(Reverse(done));
                Completion {
                    token: adm.token,
                    user_tag: adm.user_tag,
                    tenant: adm.tenant,
                    verdict,
                    arrival_cycles: adm.arrival_cycles,
                    admitted_cycles: adm.admitted_cycles,
                    done_cycles: done,
                }
            })
            .collect();
        deliveries.sort_by_key(|c| (c.done_cycles, c.token));

        let mut completion_rings: Vec<CompletionRing> =
            (0..n).map(|_| CompletionRing::new()).collect();
        let mut pending: Vec<Vec<Completion>> = vec![Vec::new(); n];
        let flush = |tid: usize,
                     pending: &mut Vec<Vec<Completion>>,
                     completion_rings: &mut Vec<CompletionRing>,
                     events: &mut Vec<Event>| {
            let batch = std::mem::take(&mut pending[tid]);
            if batch.is_empty() {
                return;
            }
            let ts = batch.last().expect("nonempty").done_cycles;
            events.push(Event::new(
                ts,
                GATEWAY_TRACK,
                EventKind::CompletionBatch,
                batch.len() as u64,
                tid as u64,
                0,
            ));
            completion_rings[tid].deliver(batch);
        };
        let mut delivered = 0u64;
        for c in deliveries {
            let tid = c.tenant as usize;
            delivered += 1;
            pending[tid].push(c);
            if pending[tid].len() >= self.config.completion_batch {
                flush(tid, &mut pending, &mut completion_rings, &mut events);
            }
        }
        for tid in 0..n {
            flush(tid, &mut pending, &mut completion_rings, &mut events);
        }
        events.sort_by_key(|e| e.ts);

        let mut admitted_e2e: Vec<u64> = Vec::new();
        let mut tenants: Vec<TenantReport> = Vec::with_capacity(n);
        let mut completion_batches = 0u64;
        for (tid, ring) in completion_rings.into_iter().enumerate() {
            let tally = tallies[tid];
            let mut e2e: Vec<u64> = ring.iter().map(Completion::end_to_end_cycles).collect();
            e2e.sort_unstable();
            admitted_e2e.extend_from_slice(&e2e);
            completion_batches += ring.batches();
            tenants.push(TenantReport {
                tenant: tid as u32,
                submitted: tally.submitted,
                admitted: tally.admitted,
                shed_ring_full: tally.shed_ring_full,
                shed_health: tally.shed_health,
                shed_busy: tally.shed_busy,
                shed_denied: tally.shed_denied,
                ring_high_water: rings[tid].high_water(),
                e2e_p99_cycles: percentile(&e2e, 99.0),
                completions: ring,
            });
        }
        admitted_e2e.sort_unstable();

        GatewayReport {
            submitted: tallies.iter().map(|t| t.submitted).sum(),
            admitted: tallies.iter().map(|t| t.admitted).sum(),
            shed: tallies.iter().map(TenantTally::shed).sum(),
            shed_ring_full: tallies.iter().map(|t| t.shed_ring_full).sum(),
            shed_health: tallies.iter().map(|t| t.shed_health).sum(),
            shed_busy: tallies.iter().map(|t| t.shed_busy).sum(),
            shed_denied: tallies.iter().map(|t| t.shed_denied).sum(),
            completions_delivered: delivered,
            completion_batches,
            tenants,
            admitted_e2e_cycles: admitted_e2e,
            events,
            service,
        }
    }
}
