//! `xover-gateway`: an async tenant gateway in front of the world-call
//! service.
//!
//! [`runtime::WorldCallService`] exposes a *synchronous* submission
//! surface: `submit` blocks on queue space, `try_submit` hands `Busy`
//! straight back to the caller. Every tenant therefore needs a thread
//! per in-flight call, and under overload the shedding decision lands
//! wherever the caller happened to be — deep inside the service, with
//! no per-tenant accounting and no fairness between tenants.
//!
//! This crate adds the io_uring-shaped alternative the paper's
//! switchless channels hint at, one layer up: per-tenant **submission
//! rings** a tenant fills with tagged call descriptors, per-tenant
//! **completion rings** verdicts come back on in batches, and a
//! **gateway reactor** between them that drains submission rings in
//! tenant-class weighted round-robin and owns every admission decision:
//!
//! * *Ring capacity* bounds a tenant's waiting-room: arrivals beyond it
//!   are shed immediately (reason `ring-full`) instead of queueing
//!   without bound.
//! * *In-flight quotas* bound what an admitted tenant can occupy: the
//!   reactor holds a ring head back (it does **not** shed it) until one
//!   of that tenant's calls completes. Ring capacity sheds; quotas
//!   delay.
//! * *Health*: the service's degradation ladder
//!   ([`runtime::HealthState`]) is consulted at admission, so a
//!   `Shedding` service sheds at the gateway — explicitly counted per
//!   tenant, reason `health` — instead of bouncing every request off
//!   `try_submit`.
//! * *Service backpressure*: a `Busy` verdict from `try_submit` sheds
//!   the head (reason `busy`); after
//!   [`GatewayConfig::busy_shed_threshold`] consecutive `Busy` results
//!   the reactor latches and fast-sheds the remaining backlog rather
//!   than hammering a full queue.
//!
//! Because ring capacity and quota bound everything in front of an
//! *admitted* call, its end-to-end latency is bounded by construction —
//! overload moves the overflow into explicit shed counts, never into
//! the admitted tail. That is the gateway's contract: **shed loudly,
//! never silently**, and `submitted == admitted + shed` at every level
//! (checked in-process by [`reactor::GatewayReport::check_conservation`]
//! and post-hoc by `obs::verify` over the recorded trace).
//!
//! Everything runs in virtual time. The reactor is a deterministic
//! event loop over the open-loop arrival trace (see
//! `workloads::openloop`): the same seed gives the same admissions, the
//! same sheds and the same completion order, every run, which is what
//! lets the property tests compare the gateway against blocking
//! submission verdict for verdict. [`GatewayMode::Off`] (the default)
//! bypasses the reactor entirely — requests flow to the service
//! untouched, bit-for-bit identical to calling `submit` yourself, and
//! the parity test pins that.

pub mod reactor;
pub mod ring;

use obs::TraceDoc;

pub use reactor::{Gateway, GatewayReport, TenantReport};
pub use ring::{CompletionRing, SubmissionRing};

pub use runtime::{CallRequest, CallVerdict};

/// Obs track id carrying every gateway event. Worker events use tracks
/// `0..workers` and submissions use `u32::MAX`; the gateway sits just
/// below so the streams never collide.
pub const GATEWAY_TRACK: u32 = u32::MAX - 1;

/// Service classes for weighted round-robin admission. The weight is
/// how many ring heads the reactor will admit for this tenant per WRR
/// round before moving on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TenantClass {
    /// Weight 4.
    Gold,
    /// Weight 2.
    #[default]
    Silver,
    /// Weight 1.
    Bronze,
}

impl TenantClass {
    /// Admissions this class may take per WRR round.
    pub fn weight(self) -> u32 {
        match self {
            TenantClass::Gold => 4,
            TenantClass::Silver => 2,
            TenantClass::Bronze => 1,
        }
    }
}

/// Per-tenant gateway knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// WRR service class.
    pub class: TenantClass,
    /// Maximum in-flight (admitted, not yet completed) calls. At the
    /// quota the ring head is *held*, not shed. Must be ≥ 1.
    pub quota: usize,
    /// Submission-ring capacity; arrivals beyond it are shed with
    /// reason `ring-full`. Must be ≥ 1.
    pub ring_capacity: usize,
}

impl TenantConfig {
    /// A tenant with the given class, quota and ring capacity.
    pub fn new(class: TenantClass, quota: usize, ring_capacity: usize) -> TenantConfig {
        TenantConfig {
            class,
            quota,
            ring_capacity,
        }
    }
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            class: TenantClass::Silver,
            quota: 64,
            ring_capacity: 256,
        }
    }
}

/// Whether the gateway actually gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GatewayMode {
    /// Passthrough: enqueued requests are handed to the service in
    /// arrival order, completely untouched — no token stamping, no
    /// rings, no events, no admission control. Bit-for-bit identical to
    /// blocking submission (pinned by the parity property test).
    #[default]
    Off,
    /// The full reactor: rings, WRR admission, quotas, shedding,
    /// batched completion delivery.
    Rings,
}

/// Gateway-wide configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Off (default) or the full ring reactor.
    pub mode: GatewayMode,
    /// One entry per tenant; tenant id is the index.
    pub tenants: Vec<TenantConfig>,
    /// Completions per delivery batch (the reactor flushes a tenant's
    /// pending completions whenever this many accumulate; a final
    /// partial batch flushes at drain). Must be ≥ 1.
    pub completion_batch: usize,
    /// Consecutive `Busy` results from `try_submit` before the reactor
    /// stops knocking and fast-sheds the rest of the backlog.
    pub busy_shed_threshold: u32,
}

impl GatewayConfig {
    /// A ring-mode gateway over the given tenants.
    pub fn rings(tenants: Vec<TenantConfig>) -> GatewayConfig {
        GatewayConfig {
            mode: GatewayMode::Rings,
            tenants,
            ..GatewayConfig::default()
        }
    }

    /// Panics on nonsensical knobs (zero quotas/capacities would
    /// deadlock or shed everything silently).
    pub(crate) fn validate(&self) {
        assert!(self.completion_batch >= 1, "completion_batch must be >= 1");
        for (id, t) in self.tenants.iter().enumerate() {
            assert!(t.quota >= 1, "tenant {id}: quota must be >= 1");
            assert!(
                t.ring_capacity >= 1,
                "tenant {id}: ring_capacity must be >= 1"
            );
        }
    }
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            mode: GatewayMode::Off,
            tenants: vec![TenantConfig::default()],
            completion_batch: 8,
            busy_shed_threshold: 4,
        }
    }
}

/// Why the gateway refused a submission. The discriminant is carried in
/// the `c` field of `GatewayShed` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's submission ring was full at arrival.
    RingFull = 0,
    /// The service's degradation ladder was at `Shedding`.
    Health = 1,
    /// `try_submit` returned `Busy` (or the busy latch had tripped).
    Busy = 2,
    /// The service's authz policy holds no grant for the submission's
    /// (caller, callee) pair — checked side-effect-free at admission,
    /// so a doomed request never burns dispatch capacity. Distinct
    /// from `Busy`: a denied tenant is refused by policy, not load.
    Denied = 3,
}

/// One entry in a tenant's submission ring: the tenant's request plus
/// the gateway-assigned completion token and its open-loop arrival
/// instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// Gateway-assigned token, unique across the run; completions carry
    /// it back. In ring mode it also rides the request's `tag` through
    /// the service (the original tag is restored on the completion).
    pub token: u64,
    /// Tenant that issued the submission.
    pub tenant: u32,
    /// Open-loop arrival instant in virtual cycles.
    pub arrival_cycles: u64,
    /// The call as the tenant described it.
    pub request: CallRequest,
}

/// One entry in a tenant's completion ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The token assigned at enqueue.
    pub token: u64,
    /// The tag the tenant originally put on the request (the gateway
    /// repurposes the wire tag for its token; this hands the original
    /// back).
    pub user_tag: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// How the call ended.
    pub verdict: CallVerdict,
    /// Open-loop arrival instant.
    pub arrival_cycles: u64,
    /// When the reactor admitted it into the service.
    pub admitted_cycles: u64,
    /// When its completion was delivered to the ring.
    pub done_cycles: u64,
}

impl Completion {
    /// End-to-end latency of the *admitted* call: arrival to completion
    /// delivery, in virtual cycles. This is the quantity the overload
    /// sweep holds bounded.
    pub fn end_to_end_cycles(&self) -> u64 {
        self.done_cycles.saturating_sub(self.arrival_cycles)
    }
}

/// Builds the recording document for a gateway run: the service's own
/// recorded trace (when [`runtime::RuntimeConfig::obs`] was on; an
/// event-less skeleton otherwise) with the gateway's admit/shed/batch
/// events appended on [`GATEWAY_TRACK`] and the gateway's conservation
/// counts riding along for `obs::verify`'s gateway checks.
pub fn gateway_trace_doc(benchmark: &str, report: &GatewayReport, frequency_ghz: f64) -> TraceDoc {
    let mut doc =
        runtime::trace_doc(benchmark, &report.service, frequency_ghz).unwrap_or_else(|| TraceDoc {
            benchmark: benchmark.to_string(),
            frequency_ghz,
            workers: report.service.smp.core_count(),
            makespan_cycles: report.service.smp.makespan_cycles(),
            total_cycles: report.service.smp.total_cycles(),
            counts: Vec::new(),
            events: Vec::new(),
            dropped: 0,
        });
    doc.counts
        .push(("gateway_submitted".to_string(), report.submitted));
    doc.counts
        .push(("gateway_admitted".to_string(), report.admitted));
    doc.counts.push(("gateway_shed".to_string(), report.shed));
    doc.events.extend(report.events.iter().cloned());
    doc
}
