//! The gateway's per-tenant rings.
//!
//! These are deliberately *models* of io_uring-style rings, not
//! lock-free memory: the reactor is a deterministic virtual-time event
//! loop, so a bounded FIFO with explicit capacity accounting carries
//! exactly the semantics the evaluation needs (what is waiting, what
//! overflows, what the high-water mark was) without pretending
//! concurrency the simulation doesn't have. The submission side is
//! bounded — overflow is the gateway's first shedding stage — while the
//! completion side records delivered batches and is drained by the
//! tenant at its leisure.

use std::collections::VecDeque;

use crate::{Completion, Submission};

/// A tenant's bounded submission ring. Arrivals wait here until the WRR
/// reactor admits them; an arrival that finds the ring full is shed at
/// the door (reason `ring-full`).
#[derive(Debug)]
pub struct SubmissionRing {
    entries: VecDeque<Submission>,
    capacity: usize,
    high_water: usize,
}

impl SubmissionRing {
    /// An empty ring holding at most `capacity` waiting submissions.
    pub fn new(capacity: usize) -> SubmissionRing {
        SubmissionRing {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
        }
    }

    /// Pushes a submission, or hands it back if the ring is full.
    ///
    /// # Errors
    ///
    /// The rejected submission itself, so the caller can account the
    /// shed without cloning — the Err carries ownership back by
    /// design.
    #[allow(clippy::result_large_err)]
    pub fn push(&mut self, sub: Submission) -> Result<(), Submission> {
        if self.entries.len() >= self.capacity {
            return Err(sub);
        }
        self.entries.push_back(sub);
        self.high_water = self.high_water.max(self.entries.len());
        Ok(())
    }

    /// The oldest waiting submission, if any.
    pub fn peek(&self) -> Option<&Submission> {
        self.entries.front()
    }

    /// Removes and returns the oldest waiting submission.
    pub fn pop(&mut self) -> Option<Submission> {
        self.entries.pop_front()
    }

    /// Waiting submissions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deepest the ring ever got.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// A tenant's completion ring: verdicts delivered in batches by the
/// reactor, in completion order. Delivery never drops — the ring grows
/// with its tenant's admitted traffic, and the batch counter is what
/// the trace's `completion_batch` events are reconciled against.
#[derive(Debug, Default)]
pub struct CompletionRing {
    entries: VecDeque<Completion>,
    batches: u64,
}

impl CompletionRing {
    /// An empty completion ring.
    pub fn new() -> CompletionRing {
        CompletionRing::default()
    }

    /// Delivers one batch of completions (the reactor calls this; batch
    /// size policy lives there).
    pub fn deliver(&mut self, batch: Vec<Completion>) {
        debug_assert!(!batch.is_empty(), "empty delivery batches are a bug");
        self.batches += 1;
        self.entries.extend(batch);
    }

    /// Pops the oldest undrained completion.
    pub fn pop(&mut self) -> Option<Completion> {
        self.entries.pop_front()
    }

    /// Undrained completions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring has been fully drained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Batches delivered so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Iterates the undrained completions oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Completion> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::{CallRequest, CallVerdict};

    fn sub(token: u64) -> Submission {
        Submission {
            token,
            tenant: 0,
            arrival_cycles: token * 10,
            request: CallRequest::new(
                crossover::world::Wid::from_raw(1),
                crossover::world::Wid::from_raw(2),
                100,
                10,
            ),
        }
    }

    #[test]
    fn submission_ring_bounds_and_orders() {
        let mut ring = SubmissionRing::new(2);
        assert!(ring.push(sub(1)).is_ok());
        assert!(ring.push(sub(2)).is_ok());
        let rejected = ring.push(sub(3)).unwrap_err();
        assert_eq!(rejected.token, 3);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.high_water(), 2);
        assert_eq!(ring.pop().unwrap().token, 1);
        assert_eq!(ring.peek().unwrap().token, 2);
        assert!(ring.push(sub(4)).is_ok());
        assert_eq!(ring.pop().unwrap().token, 2);
        assert_eq!(ring.pop().unwrap().token, 4);
        assert!(ring.is_empty());
        assert_eq!(ring.high_water(), 2);
    }

    #[test]
    fn completion_ring_counts_batches() {
        let completion = |token| Completion {
            token,
            user_tag: 0,
            tenant: 0,
            verdict: CallVerdict::Completed,
            arrival_cycles: 0,
            admitted_cycles: 1,
            done_cycles: 2,
        };
        let mut ring = CompletionRing::new();
        ring.deliver(vec![completion(1), completion(2)]);
        ring.deliver(vec![completion(3)]);
        assert_eq!(ring.batches(), 2);
        assert_eq!(ring.len(), 3);
        let tokens: Vec<u64> = ring.iter().map(|c| c.token).collect();
        assert_eq!(tokens, vec![1, 2, 3]);
        assert_eq!(ring.pop().unwrap().token, 1);
    }
}
