//! Gateway properties.
//!
//! The gateway's contract has three legs, mirroring the other planes'
//! parity suites:
//!
//! 1. **Off is invisible.** `GatewayMode::Off` (the default) hands the
//!    staged trace to the service untouched — bit-for-bit identical
//!    verdicts, meters and cache statistics to calling `submit`
//!    yourself.
//! 2. **Rings reorder, never rewrite.** For any seeded schedule the
//!    ring reactor yields the same per-tenant verdict multisets as
//!    blocking submission — admission control may delay or reorder
//!    calls, but what each call *is* (and therefore how it ends) is
//!    untouched. With spaced arrivals and generous quotas the
//!    admission order collapses to arrival order and the equality is
//!    exact, outcome for outcome, including under an injected fault
//!    plan.
//! 3. **Overload sheds loudly.** Undersized rings shed with explicit
//!    reasons, `submitted == admitted + shed` at every level, and the
//!    recorded trace replays through `obs::verify`'s gateway checks.
//!
//! Single worker throughout: these are determinism properties.

use machine::fault::{FaultKind, FaultPlan, FaultSite};
use machine::rng::SplitMix64;
use runtime::{
    CallRequest, CallVerdict, DegradeLevel, ObsConfig, RuntimeConfig, ServiceReport,
    SupervisorConfig, SwitchlessConfig, WorldCallService,
};
use xover_gateway::{
    gateway_trace_doc, Gateway, GatewayConfig, GatewayReport, TenantClass, TenantConfig,
};

const SEED: u64 = 0x06A7_EA11;
const CALLS: u64 = 400;
const TENANTS: u32 = 3;
const WORKING_SET_PAGES: u64 = 8;

/// Tenants × (user + kernel) with working sets and switchless channels:
/// the same service shape as the obs/fault parity suites, so the
/// gateway is exercised over every servicing path.
fn build_service(
    obs: ObsConfig,
    plan: Option<FaultPlan>,
) -> (WorldCallService, Vec<Vec<crossover::world::Wid>>) {
    let mut svc = WorldCallService::new(RuntimeConfig {
        workers: 1,
        queue_capacity: CALLS as usize + 16,
        batch_max: 32,
        switchless: SwitchlessConfig::fixed(8),
        supervisor: SupervisorConfig::default(),
        obs,
        ..RuntimeConfig::default()
    });
    if let Some(plan) = plan {
        svc.set_fault_plan(plan);
    }
    let mut worlds = Vec::new();
    for t in 0..u64::from(TENANTS) {
        let vm = svc
            .create_vm(hypervisor::vm::VmConfig::named(&format!("gw-{t}")))
            .expect("create vm");
        let user = svc
            .register_guest_user(vm, 0x1000 * (t + 1), 0x40_0000)
            .expect("register user world");
        let kernel = svc
            .register_guest_kernel(vm, 0x10_0000 * (t + 1), 0xFFFF_8000)
            .expect("register kernel world");
        for &w in &[user, kernel] {
            svc.attach_working_set(w, vm, WORKING_SET_PAGES)
                .expect("attach working set");
            svc.attach_channel(w, vm).expect("attach channel");
        }
        worlds.push(vec![user, kernel]);
    }
    (svc, worlds)
}

/// One tenant-attributed request: intra-tenant user→kernel half the
/// time (the hot pair, so channels engage), any cross pair otherwise;
/// 5% abusive with a budget far below the body so the timeout verdict
/// is a function of the request alone, order be damned.
fn draw_request(
    rng: &mut SplitMix64,
    worlds: &[Vec<crossover::world::Wid>],
    tenant: u32,
    i: u64,
) -> CallRequest {
    let own = &worlds[tenant as usize];
    let (caller, callee) = if rng.flip() {
        (own[0], own[1])
    } else {
        loop {
            let a = own[rng.below(2) as usize];
            let other = &worlds[rng.below(worlds.len() as u64) as usize];
            let b = other[rng.below(2) as usize];
            if a != b {
                break (a, b);
            }
        }
    };
    let work_cycles = 1_000 + rng.below(2_000);
    let mut req = CallRequest::new(caller, callee, work_cycles, work_cycles / 3)
        .with_touches(rng.below(WORKING_SET_PAGES))
        .with_tag(i)
        .with_tenant(tenant);
    if rng.chance(0.05) {
        req = req.with_budget(work_cycles / 4);
    }
    req
}

/// The seeded open-loop schedule: (tenant, arrival, request) triples in
/// arrival order, one stream interleaved round-robin with strictly
/// increasing arrival instants.
fn schedule(seed: u64, gap: u64) -> Vec<(u32, u64, CallRequest)> {
    // The worlds vector is only a shape here; requests drawn against
    // one service are submitted to another with identical registration
    // order, so the Wids line up.
    let (_svc, worlds) = build_service(ObsConfig::default(), None);
    let mut rng = SplitMix64::new(seed);
    (0..CALLS)
        .map(|i| {
            let tenant = (i % u64::from(TENANTS)) as u32;
            (tenant, i * gap, draw_request(&mut rng, &worlds, tenant, i))
        })
        .collect()
}

fn sorted_verdicts_per_tenant(label: &str, outcomes: &[(u32, CallVerdict)]) -> Vec<Vec<String>> {
    let mut per: Vec<Vec<String>> = vec![Vec::new(); TENANTS as usize];
    for (tenant, verdict) in outcomes {
        assert!(
            (*tenant as usize) < per.len(),
            "{label}: outcome for unknown tenant {tenant}"
        );
        per[*tenant as usize].push(format!("{verdict:?}"));
    }
    for v in &mut per {
        v.sort();
    }
    per
}

/// Blocking-submission baseline: the same schedule pushed through
/// `submit` in arrival order, no gateway anywhere.
fn run_direct(seed: u64, gap: u64, plan: Option<FaultPlan>) -> ServiceReport {
    let (mut svc, _worlds) = build_service(ObsConfig::default(), plan);
    for (_tenant, _at, req) in schedule(seed, gap) {
        svc.submit(req).expect("queue open");
    }
    svc.start();
    svc.drain()
}

fn run_gateway(
    seed: u64,
    gap: u64,
    config: GatewayConfig,
    obs: ObsConfig,
    plan: Option<FaultPlan>,
) -> GatewayReport {
    let (svc, _worlds) = build_service(obs, plan);
    let mut gw = Gateway::new(config);
    for (tenant, at, req) in schedule(seed, gap) {
        gw.enqueue(tenant, at, req);
    }
    gw.run(svc)
}

fn generous() -> GatewayConfig {
    GatewayConfig::rings(vec![
        TenantConfig::new(TenantClass::Gold, CALLS as usize, CALLS as usize),
        TenantConfig::new(TenantClass::Silver, CALLS as usize, CALLS as usize),
        TenantConfig::new(TenantClass::Bronze, CALLS as usize, CALLS as usize),
    ])
}

/// Leg 1: `Off` is bit-for-bit blocking submission.
#[test]
fn gateway_off_is_cycle_exact_passthrough() {
    let direct = run_direct(SEED, 97, None);
    let off = run_gateway(
        SEED,
        97,
        GatewayConfig::default(),
        ObsConfig::default(),
        None,
    );
    assert_eq!(
        off.service.outcomes, direct.outcomes,
        "outcome streams diverge"
    );
    assert_eq!(off.service.smp.total_cycles(), direct.smp.total_cycles());
    assert_eq!(
        off.service.smp.makespan_cycles(),
        direct.smp.makespan_cycles()
    );
    assert_eq!(off.service.wt, direct.wt);
    assert_eq!(off.service.iwt, direct.iwt);
    assert_eq!(off.service.tlb, direct.tlb);
    assert_eq!(off.service.queue_wait_cycles, direct.queue_wait_cycles);
    assert_eq!(
        off.service.switchless.world_calls,
        direct.switchless.world_calls
    );
    assert_eq!(
        off.service.switchless.world_returns,
        direct.switchless.world_returns
    );
    assert_eq!(off.submitted, CALLS);
    assert_eq!(off.admitted, CALLS);
    assert_eq!(off.shed, 0);
    assert!(off.events.is_empty(), "Off mode must record nothing");
    off.check_conservation().expect("conservation");
}

/// Leg 2a: spaced arrivals + generous quotas collapse admission order
/// to arrival order — the gateway is then *exactly* blocking
/// submission, outcome for outcome, across seeds and under faults.
#[test]
fn spaced_arrivals_match_direct_exactly_even_under_faults() {
    // Arrivals 5k cycles apart: each is admitted before the next lands.
    const GAP: u64 = 5_000;
    fn make_plan(case: u8) -> Option<FaultPlan> {
        match case {
            0 => None,
            1 => Some(FaultPlan::new().with(120_000, FaultSite::WorkerCrash, FaultKind::Crash)),
            _ => Some(
                FaultPlan::new()
                    .with(90_000, FaultSite::WorkerCrash, FaultKind::Crash)
                    .with(
                        240_000,
                        FaultSite::WorkerStall,
                        FaultKind::Stall { cycles: 8_000 },
                    ),
            ),
        }
    }
    for (seed, case) in [(SEED, 0u8), (0xD00_D1E, 0), (SEED, 1), (0xBAD_CAFE, 2)] {
        let direct = run_direct(seed, GAP, make_plan(case));
        let gw = run_gateway(seed, GAP, generous(), ObsConfig::default(), make_plan(case));
        assert_eq!(gw.shed, 0, "seed {seed:#x}: nothing to shed");
        assert_eq!(gw.admitted, CALLS);
        // The wire requests only differ in the tag field (gateway
        // tokens are assigned in arrival order, and the schedule's tags
        // already are the arrival index) — so the full outcome streams
        // must coincide.
        assert_eq!(
            gw.service.outcomes, direct.outcomes,
            "seed {seed:#x}: gateway diverged from blocking submission"
        );
        gw.check_conservation().expect("conservation");
        // Every admitted call came back on its tenant's completion ring.
        for t in &gw.tenants {
            assert_eq!(
                t.admitted,
                t.completions.len() as u64,
                "tenant {}",
                t.tenant
            );
        }
    }
}

/// Leg 2b: with every arrival at t=0 the WRR scheduler genuinely
/// reorders admissions across tenants — verdict multisets per tenant
/// must still match blocking submission, because admission control may
/// move a call, never change it.
#[test]
fn wrr_reordering_preserves_per_tenant_verdict_multisets() {
    for seed in [SEED, 0x5EED_0002, 0x5EED_0003] {
        let direct = run_direct(seed, 0, None);
        let config = GatewayConfig::rings(vec![
            TenantConfig::new(TenantClass::Gold, 8, CALLS as usize),
            TenantConfig::new(TenantClass::Silver, 4, CALLS as usize),
            TenantConfig::new(TenantClass::Bronze, 2, CALLS as usize),
        ]);
        let gw = run_gateway(seed, 0, config, ObsConfig::default(), None);
        assert_eq!(gw.shed, 0, "seed {seed:#x}: rings sized for the burst");
        assert_eq!(gw.admitted, CALLS);
        let direct_verdicts: Vec<(u32, CallVerdict)> = direct
            .outcomes
            .iter()
            .map(|o| (o.request.tenant, o.verdict.clone()))
            .collect();
        let gw_verdicts: Vec<(u32, CallVerdict)> = gw
            .tenants
            .iter()
            .flat_map(|t| t.completions.iter().map(|c| (c.tenant, c.verdict.clone())))
            .collect();
        assert_eq!(
            sorted_verdicts_per_tenant("gateway", &gw_verdicts),
            sorted_verdicts_per_tenant("direct", &direct_verdicts),
            "seed {seed:#x}: per-tenant verdict multisets diverge"
        );
        gw.check_conservation().expect("conservation");
        // Completions hand the original user tag back even though the
        // wire tag carried the gateway token.
        for t in &gw.tenants {
            for c in t.completions.iter() {
                assert_eq!(c.user_tag % u64::from(TENANTS), u64::from(c.tenant));
            }
        }
    }
}

/// Leg 3a: undersized rings shed at the door with explicit accounting,
/// and the recorded trace replays through `obs::verify`.
#[test]
fn overload_sheds_loudly_and_trace_verifies() {
    let config = GatewayConfig::rings(vec![
        TenantConfig::new(TenantClass::Gold, 4, 8),
        TenantConfig::new(TenantClass::Silver, 4, 8),
        TenantConfig::new(TenantClass::Bronze, 4, 8),
    ]);
    let gw = run_gateway(SEED, 0, config, ObsConfig::ring(), None);
    assert!(
        gw.shed > 0,
        "an all-at-once burst must overflow 8-deep rings"
    );
    assert!(
        gw.shed_ring_full > 0,
        "the overflow must be ring-full sheds"
    );
    assert_eq!(gw.submitted, CALLS);
    assert_eq!(gw.submitted, gw.admitted + gw.shed);
    assert_eq!(gw.completions_delivered, gw.admitted);
    assert_eq!(gw.service.outcomes.len() as u64, gw.admitted);
    gw.check_conservation().expect("conservation");
    for t in &gw.tenants {
        assert_eq!(t.submitted, t.admitted + t.shed(), "tenant {}", t.tenant);
        assert!(t.ring_high_water <= 8, "tenant {}", t.tenant);
    }
    // Bounded-by-construction: nothing an admitted call waits behind
    // exceeds ring + quota + the pool, so its end-to-end latency is
    // finite and the p99 is a real number over admitted calls only.
    assert!(gw.e2e_percentile(99.0) > 0);
    let doc = gateway_trace_doc("gateway_props", &gw, 2.0);
    let report = obs::verify(&doc);
    assert!(
        report.ok(),
        "trace verification failed: {:?}",
        report.failures()
    );
}

/// Leg 3b: a service already at the `Shedding` rung sheds at the
/// gateway — the pool never sees a single request, and every shed is
/// accounted with the health reason.
#[test]
fn health_shedding_sheds_at_the_gateway() {
    let (svc, worlds) = build_service(ObsConfig::default(), None);
    svc.health().escalate(DegradeLevel::Shedding, 0);
    let mut gw = Gateway::new(generous());
    let mut rng = SplitMix64::new(SEED);
    for i in 0..CALLS {
        let tenant = (i % u64::from(TENANTS)) as u32;
        gw.enqueue(tenant, i * 50, draw_request(&mut rng, &worlds, tenant, i));
    }
    let report = gw.run(svc);
    assert_eq!(report.admitted, 0);
    assert_eq!(report.shed, CALLS);
    assert_eq!(report.shed_health, CALLS);
    assert!(
        report.service.outcomes.is_empty(),
        "the pool must see nothing"
    );
    assert_eq!(report.service.admitted, 0, "service-side ledger agrees");
    report.check_conservation().expect("conservation");
}
