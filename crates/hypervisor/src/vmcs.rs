//! VM control structure: saved guest context across VMExit/VMEntry.

use machine::cpu::Registers;
use machine::mode::CpuMode;

use crate::exit::ExitReason;

/// The guest-state area of a VMCS: everything the hardware saves on a
/// VMExit and restores on VMEntry for one virtual CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vmcs {
    /// Saved privilege mode (non-root + ring at exit time).
    pub guest_mode: CpuMode,
    /// Saved CR3.
    pub guest_cr3: u64,
    /// Saved EPTP-list index the guest was running under.
    pub guest_eptp_index: u16,
    /// Saved IDT base.
    pub guest_idt: u64,
    /// Saved interrupt flag.
    pub guest_interrupts_enabled: bool,
    /// Saved general registers.
    pub guest_regs: Registers,
    /// Reason for the most recent exit, if any.
    pub last_exit: Option<ExitReason>,
    /// Pending virtual interrupt vector to deliver on next entry.
    pub pending_interrupt: Option<u8>,
}

impl Vmcs {
    /// Creates a VMCS for a freshly booted guest: user mode, no pending
    /// state.
    pub fn new() -> Vmcs {
        Vmcs {
            guest_mode: CpuMode::GUEST_USER,
            guest_cr3: 0,
            guest_eptp_index: 0,
            guest_idt: 0,
            guest_interrupts_enabled: true,
            guest_regs: Registers::default(),
            last_exit: None,
            pending_interrupt: None,
        }
    }
}

impl Default for Vmcs {
    fn default() -> Vmcs {
        Vmcs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vmcs_is_guest_user_with_no_pending_state() {
        let v = Vmcs::new();
        assert_eq!(v.guest_mode, CpuMode::GUEST_USER);
        assert!(v.last_exit.is_none());
        assert!(v.pending_interrupt.is_none());
        assert!(v.guest_interrupts_enabled);
    }

    #[test]
    fn vmcs_roundtrips_saved_state() {
        let mut v = Vmcs::new();
        v.guest_cr3 = 0x1234;
        v.guest_eptp_index = 7;
        v.pending_interrupt = Some(0x20);
        let copy = v.clone();
        assert_eq!(copy, v);
        assert_eq!(copy.guest_cr3, 0x1234);
    }
}
