//! The simulated machine: one CPU, host physical memory, hypervisor state
//! and the VMFUNC logic.
//!
//! All upper layers (guest kernels, the CrossOver world manager, the case
//! studies) drive the machine through `&mut Platform`. The platform's job
//! is to make every world transition *explicit and priced*: a VMExit saves
//! guest state into the VMCS, charges the hardware transition plus the
//! handler work for its reason, and flips the CPU to host kernel mode; a
//! VMFUNC validates the EPTP-list index and switches the active EPT without
//! any of that.

use machine::cost::CostModel;
use machine::cpu::Cpu;
use machine::mode::CpuMode;
use machine::trace::TransitionKind;
use mmu::addr::{Gpa, Gva, Hpa, PAGE_SIZE};
use mmu::ept::Ept;
use mmu::pagetable::PageTable;
use mmu::perms::Perms;
use mmu::phys::PhysMemory;
use mmu::tlb::{
    Tlb, TlbStats, STAGE1_WALK_ACCESSES, STAGE1_WALK_CYCLES, TLB_HIT_CYCLES, TWO_STAGE_WALK_CYCLES,
};
use mmu::translate::{translate, TWO_STAGE_WALK_ACCESSES};

use crate::exit::ExitReason;
use crate::sched::SchedModel;
use crate::vm::{Vm, VmConfig, VmId};
use crate::vmcs::Vmcs;
use crate::HvError;

/// The simulated machine.
///
/// # Example
///
/// ```
/// use xover_hypervisor::platform::Platform;
/// use xover_hypervisor::vm::VmConfig;
/// use xover_hypervisor::exit::ExitReason;
///
/// let mut p = Platform::new_default();
/// let vm = p.create_vm(VmConfig::named("guest-a"))?;
/// p.vmentry(vm)?;
/// p.vmexit(ExitReason::Vmcall(1))?;     // guest traps to the hypervisor
/// assert!(p.cpu().mode().is_hypervisor());
/// p.vmentry(vm)?;                        // hypervisor resumes the guest
/// # Ok::<(), xover_hypervisor::HvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    cpu: Cpu,
    phys: PhysMemory,
    epts: Vec<Ept>,
    vms: Vec<Vm>,
    vmcs: Vec<Vmcs>,
    /// VM whose VMCS is active (the VM we VMEntered), if in non-root mode.
    current_vm: Option<VmId>,
    /// EPT arena index currently translating guest accesses. May differ
    /// from `current_vm`'s primary EPT after a VMFUNC.
    active_ept: Option<usize>,
    sched: SchedModel,
    hypercalls: u64,
    /// Per-core unified GVA→HPA TLB tagged by (CR3, EPTP). Cloning the
    /// platform clones the TLB, so each simulated core has its own —
    /// exactly like hardware.
    tlb: Tlb,
    /// Ablation switch: with the TLB disabled every [`Platform::access_gva`]
    /// pays the full page walk (the pre-CrossOver baseline).
    tlb_enabled: bool,
}

/// Default unified-TLB capacity: 128 sets × 4 ways, the L2 STLB size of
/// the Haswell parts the paper measures on.
pub const DEFAULT_UNIFIED_TLB_CAPACITY: usize = 512;

impl Platform {
    /// Creates a platform with the given cost model.
    pub fn new(cost: CostModel) -> Platform {
        let mut cpu = Cpu::new(0, cost);
        // The machine powers on in the hypervisor.
        cpu.force_mode(CpuMode::HOST_KERNEL);
        Platform {
            cpu,
            phys: PhysMemory::new(),
            epts: Vec::new(),
            vms: Vec::new(),
            vmcs: Vec::new(),
            current_vm: None,
            active_ept: None,
            sched: SchedModel::idle(),
            hypercalls: 0,
            tlb: Tlb::new(DEFAULT_UNIFIED_TLB_CAPACITY),
            tlb_enabled: true,
        }
    }

    /// Creates a platform with the Haswell 3.4 GHz cost model.
    pub fn new_default() -> Platform {
        Platform::new(CostModel::haswell_3_4ghz())
    }

    /// The CPU.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable CPU access (for charging work and reading meters).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Host physical memory.
    pub fn phys(&self) -> &PhysMemory {
        &self.phys
    }

    /// Mutable host physical memory.
    pub fn phys_mut(&mut self) -> &mut PhysMemory {
        &mut self.phys
    }

    /// The scheduling model used for cross-VM wakeups.
    pub fn sched(&self) -> &SchedModel {
        &self.sched
    }

    /// Replaces the scheduling model (benchmarks sweep target-VM load).
    pub fn set_sched(&mut self, sched: SchedModel) {
        self.sched = sched;
    }

    /// Number of hypercalls dispatched so far.
    pub fn hypercall_count(&self) -> u64 {
        self.hypercalls
    }

    /// Ids of all VMs, in creation order.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.iter().map(|v| v.id()).collect()
    }

    /// The VM whose VMCS is active, if the CPU is in non-root operation.
    pub fn current_vm(&self) -> Option<VmId> {
        self.current_vm
    }

    /// The EPT arena index currently translating guest accesses.
    pub fn active_ept(&self) -> Option<usize> {
        self.active_ept
    }

    fn vm(&self, id: VmId) -> Result<&Vm, HvError> {
        self.vms
            .get(id.index() as usize)
            .ok_or(HvError::NoSuchVm { vm: id })
    }

    fn vm_mut(&mut self, id: VmId) -> Result<&mut Vm, HvError> {
        self.vms
            .get_mut(id.index() as usize)
            .ok_or(HvError::NoSuchVm { vm: id })
    }

    /// Creates a VM with a fresh primary EPT. The new VM's id doubles as
    /// the EPTP-list index other VMs use to VMFUNC into it (§4.3).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns `Result` for future
    /// quota enforcement symmetry with the world table.
    pub fn create_vm(&mut self, config: VmConfig) -> Result<VmId, HvError> {
        let id = VmId::new(self.vms.len() as u16);
        let ept_index = self.epts.len();
        // EPTP value: arena index + 1 so 0 stays invalid.
        self.epts.push(Ept::new(ept_index as u64 + 1));
        self.vms.push(Vm::new(id, config, ept_index));
        self.vmcs.push(Vmcs::new());
        Ok(id)
    }

    /// Read access to a VM's metadata.
    pub fn vm_info(&self, id: VmId) -> Result<&Vm, HvError> {
        self.vm(id)
    }

    /// Read access to a VM's VMCS.
    pub fn vmcs(&self, id: VmId) -> Result<&Vmcs, HvError> {
        self.vm(id)?;
        Ok(&self.vmcs[id.index() as usize])
    }

    /// Mutable access to a VM's VMCS (guest kernels update saved CR3 etc.
    /// when they switch processes while the VM is descheduled).
    pub fn vmcs_mut(&mut self, id: VmId) -> Result<&mut Vmcs, HvError> {
        self.vm(id)?;
        Ok(&mut self.vmcs[id.index() as usize])
    }

    /// Immutable access to a VM's primary EPT.
    pub fn ept(&self, id: VmId) -> Result<&Ept, HvError> {
        let vm = self.vm(id)?;
        Ok(&self.epts[vm.ept()])
    }

    /// Mutable access to a VM's primary EPT.
    pub fn ept_mut(&mut self, id: VmId) -> Result<&mut Ept, HvError> {
        let ept = self.vm(id)?.ept();
        Ok(&mut self.epts[ept])
    }

    /// Access an EPT by arena index (used after VMFUNC, when the active
    /// EPT is not the current VM's primary one).
    pub fn ept_by_index(&self, index: usize) -> Option<&Ept> {
        self.epts.get(index)
    }

    // ---------------------------------------------------------------
    // Guest memory management
    // ---------------------------------------------------------------

    /// Backs the guest-physical page containing `gpa` in `vm` with a fresh
    /// host frame, returning the frame base.
    ///
    /// # Errors
    ///
    /// * [`HvError::NoSuchVm`] for an unknown VM.
    /// * [`HvError::Mmu`] if the page is already mapped or misaligned.
    pub fn back_guest_page(&mut self, vm: VmId, gpa: Gpa, perms: Perms) -> Result<Hpa, HvError> {
        let ept_index = self.vm(vm)?.ept();
        let hpa = self.phys.alloc_frame();
        self.epts[ept_index].map(gpa, hpa, perms)?;
        Ok(hpa)
    }

    /// Backs a 2 MiB-aligned guest-physical region of `vm` with one huge
    /// EPT page (512 contiguous, aligned host frames) — the large-page
    /// backing real hypervisors prefer for guest RAM.
    ///
    /// # Errors
    ///
    /// * [`HvError::NoSuchVm`] for an unknown VM.
    /// * [`HvError::Mmu`] on misalignment or overlap.
    pub fn back_guest_huge_page(&mut self, vm: VmId, gpa: Gpa) -> Result<Hpa, HvError> {
        let ept_index = self.vm(vm)?.ept();
        let hpa = self.phys.alloc_frames_aligned(512, 512);
        self.epts[ept_index].map_huge(gpa, hpa, Perms::rwx())?;
        Ok(hpa)
    }

    /// Allocates `pages` fresh guest-physical pages in `vm` (bump
    /// allocated), backs them, and returns the guest-physical base.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::NoSuchVm`] for an unknown VM.
    pub fn alloc_guest_pages(&mut self, vm: VmId, pages: u64) -> Result<Gpa, HvError> {
        let base = self.vm_mut(vm)?.alloc_gpa_range(pages);
        for i in 0..pages {
            self.back_guest_page(vm, base + i * PAGE_SIZE, Perms::rwx())?;
        }
        Ok(base)
    }

    /// Reads guest-physical memory of `vm` through its primary EPT.
    ///
    /// # Errors
    ///
    /// [`HvError::Mmu`] on unmapped or permission-denied pages.
    pub fn read_gpa(&self, vm: VmId, gpa: Gpa, buf: &mut [u8]) -> Result<(), HvError> {
        let ept = self.ept(vm)?;
        // Translate page by page; accesses may span pages.
        let mut addr = gpa;
        let mut done = 0usize;
        while done < buf.len() {
            let hpa = ept.translate(addr, Perms::r())?;
            let n = (buf.len() - done).min((PAGE_SIZE - addr.page_offset()) as usize);
            self.phys.read(hpa, &mut buf[done..done + n])?;
            done += n;
            addr = addr.page_base() + PAGE_SIZE;
        }
        Ok(())
    }

    /// Writes guest-physical memory of `vm` through its primary EPT.
    ///
    /// # Errors
    ///
    /// [`HvError::Mmu`] on unmapped or permission-denied pages.
    pub fn write_gpa(&mut self, vm: VmId, gpa: Gpa, data: &[u8]) -> Result<(), HvError> {
        let ept_index = self.vm(vm)?.ept();
        let mut addr = gpa;
        let mut done = 0usize;
        while done < data.len() {
            let hpa = self.epts[ept_index].translate(addr, Perms::w())?;
            let n = (data.len() - done).min((PAGE_SIZE - addr.page_offset()) as usize);
            self.phys.write(hpa, &data[done..done + n])?;
            done += n;
            addr = addr.page_base() + PAGE_SIZE;
        }
        Ok(())
    }

    /// Maps one fresh host frame at `gpa` in *both* VMs — the inter-VM
    /// shared memory page used for parameter passing (§3.3 world-call
    /// setup, §4.3 cross-VM syscalls). Returns the shared frame.
    ///
    /// # Errors
    ///
    /// * [`HvError::NoSuchVm`] for unknown VMs.
    /// * [`HvError::SharedRegionConflict`] if either VM already maps `gpa`.
    pub fn map_shared_page(
        &mut self,
        vm_a: VmId,
        vm_b: VmId,
        gpa: Gpa,
        perms: Perms,
    ) -> Result<Hpa, HvError> {
        let ept_a = self.vm(vm_a)?.ept();
        let ept_b = self.vm(vm_b)?.ept();
        if self.epts[ept_a].entry(gpa).is_some() || self.epts[ept_b].entry(gpa).is_some() {
            return Err(HvError::SharedRegionConflict { gpa });
        }
        let hpa = self.phys.alloc_frame();
        self.epts[ept_a].map(gpa, hpa, perms)?;
        if ept_b != ept_a {
            self.epts[ept_b].map(gpa, hpa, perms)?;
        }
        Ok(hpa)
    }

    /// Maps one fresh read-execute host frame at the *same* guest-physical
    /// address in every existing VM — the cross-ring code page of §4.3
    /// ("we map a non-writable code page to the same guest physical
    /// address ... so that changing address space does not require loading
    /// and storing all context information"). Returns the shared frame.
    ///
    /// # Errors
    ///
    /// [`HvError::SharedRegionConflict`] if any VM already maps `gpa`.
    pub fn map_code_page_all_vms(&mut self, gpa: Gpa) -> Result<Hpa, HvError> {
        for vm in &self.vms {
            if self.epts[vm.ept()].entry(gpa).is_some() {
                return Err(HvError::SharedRegionConflict { gpa });
            }
        }
        let hpa = self.phys.alloc_frame();
        for ept in self.vms.iter().map(|v| v.ept()).collect::<Vec<_>>() {
            self.epts[ept].map(gpa, hpa, Perms::rx())?;
        }
        Ok(hpa)
    }

    // ---------------------------------------------------------------
    // VMX transitions
    // ---------------------------------------------------------------

    /// VMEntry: restores `vm`'s saved context and resumes the guest.
    /// Delivers any pending virtual interrupt (charging the injection).
    ///
    /// # Errors
    ///
    /// * [`HvError::AlreadyInGuest`] if the CPU is in non-root operation.
    /// * [`HvError::NoSuchVm`] for an unknown VM.
    pub fn vmentry(&mut self, vm: VmId) -> Result<(), HvError> {
        if self.cpu.mode().operation().is_guest() {
            return Err(HvError::AlreadyInGuest);
        }
        self.vm(vm)?;
        let vmcs = self.vmcs[vm.index() as usize].clone();
        // Resolve the EPT the guest was running under.
        let ept_index = match self.vms[vm.index() as usize].eptp_entry(vmcs.guest_eptp_index) {
            Some(i) => i,
            None => self.vms[vm.index() as usize].ept(),
        };
        if vmcs.pending_interrupt.is_some() {
            self.cpu.touch(TransitionKind::InterruptInject);
            self.vmcs[vm.index() as usize].pending_interrupt = None;
        }
        self.cpu
            .transition(TransitionKind::VmEntry, vmcs.guest_mode);
        self.cpu.force_cr3(vmcs.guest_cr3);
        self.cpu
            .load_eptp(vmcs.guest_eptp_index, self.epts[ept_index].eptp());
        *self.cpu.regs_mut() = vmcs.guest_regs;
        self.current_vm = Some(vm);
        self.active_ept = Some(ept_index);
        Ok(())
    }

    /// VMExit: saves the current guest context into its VMCS, charges the
    /// hardware transition plus `reason`'s handler work, and lands the CPU
    /// in the hypervisor.
    ///
    /// # Errors
    ///
    /// [`HvError::NotInGuest`] if the CPU is already in root operation.
    pub fn vmexit(&mut self, reason: ExitReason) -> Result<(), HvError> {
        if self.cpu.mode().operation().is_host() {
            return Err(HvError::NotInGuest);
        }
        let vm = self.current_vm.expect("non-root implies a current VM");
        let vmcs = &mut self.vmcs[vm.index() as usize];
        vmcs.guest_mode = self.cpu.mode();
        vmcs.guest_cr3 = self.cpu.cr3();
        vmcs.guest_eptp_index = self.cpu.eptp_index();
        vmcs.guest_idt = self.cpu.idt_base();
        vmcs.guest_interrupts_enabled = self.cpu.interrupts_enabled();
        vmcs.guest_regs = *self.cpu.regs();
        vmcs.last_exit = Some(reason);
        if let ExitReason::Vmcall(_) = reason {
            self.hypercalls += 1;
        }
        self.cpu
            .transition(TransitionKind::VmExit, CpuMode::HOST_KERNEL);
        self.cpu.charge_work(
            reason.handler_cycles(),
            reason.handler_instructions(),
            "vmexit handler",
        );
        self.current_vm = None;
        self.active_ept = None;
        Ok(())
    }

    /// Convenience: a hypercall round trip — VMExit with `Vmcall(nr)`,
    /// then VMEntry back into the same VM.
    ///
    /// # Errors
    ///
    /// Propagates [`Platform::vmexit`] / [`Platform::vmentry`] errors.
    pub fn hypercall_roundtrip(&mut self, nr: u64) -> Result<(), HvError> {
        let vm = self.current_vm.ok_or(HvError::NotInGuest)?;
        self.vmexit(ExitReason::Vmcall(nr))?;
        self.vmentry(vm)
    }

    /// Queues a virtual interrupt for `vm`, charging the injection work.
    /// The interrupt is delivered at the next [`Platform::vmentry`].
    ///
    /// # Errors
    ///
    /// [`HvError::NoSuchVm`] for an unknown VM.
    pub fn inject_interrupt(&mut self, vm: VmId, vector: u8) -> Result<(), HvError> {
        self.vm(vm)?;
        self.cpu.touch(TransitionKind::InterruptInject);
        self.vmcs[vm.index() as usize].pending_interrupt = Some(vector);
        Ok(())
    }

    /// Charges the scheduling latency of waking a process inside `vm`
    /// (the redirected-call servicing delay of the baseline systems).
    ///
    /// # Errors
    ///
    /// [`HvError::NoSuchVm`] for an unknown VM.
    pub fn charge_wakeup(&mut self, vm: VmId) -> Result<(), HvError> {
        self.vm(vm)?;
        let cycles = self.sched.wakeup_latency_cycles();
        let instructions = self.sched.wakeup_latency_instructions();
        self.cpu
            .charge_work(cycles, instructions, "scheduler wakeup");
        Ok(())
    }

    // ---------------------------------------------------------------
    // VMFUNC
    // ---------------------------------------------------------------

    /// Configures `vm`'s VMFUNC EPTP list, populating one slot per
    /// *currently existing* VM at that VM's id index (§4.3: "the
    /// hypervisor will ... keep track of each VM's EPT pointer by storing
    /// it in the EPT-list address with an offset, which is the same as the
    /// VM ID"). Call again after creating more VMs to refresh.
    ///
    /// # Errors
    ///
    /// [`HvError::NoSuchVm`] for an unknown VM.
    pub fn setup_vmfunc_eptp_list(&mut self, vm: VmId) -> Result<(), HvError> {
        self.vm(vm)?;
        let entries: Vec<(u16, usize)> =
            self.vms.iter().map(|v| (v.id().index(), v.ept())).collect();
        let vm_state = &mut self.vms[vm.index() as usize];
        if !vm_state.has_eptp_list() {
            vm_state.init_eptp_list();
        }
        for (index, ept) in entries {
            vm_state.set_eptp_entry(index, ept);
        }
        Ok(())
    }

    /// Executes `VMFUNC(0)` with EPTP-list index `index`: switches the
    /// active EPT without a VMExit. Callable from any guest ring.
    ///
    /// # Errors
    ///
    /// * [`HvError::VmfuncFromRoot`] if executed host-side.
    /// * [`HvError::EptpListNotConfigured`] if the current VM has no list.
    /// * [`HvError::InvalidEptpIndex`] if the slot is empty — on real
    ///   hardware this is a VM-function fault VMExit; callers that want
    ///   that behaviour chain [`Platform::vmexit`] with
    ///   [`ExitReason::VmfuncFault`].
    pub fn vmfunc_switch_ept(&mut self, index: u16) -> Result<(), HvError> {
        if self.cpu.mode().operation().is_host() {
            return Err(HvError::VmfuncFromRoot);
        }
        let vm = self.current_vm.expect("non-root implies a current VM");
        let vm_state = &self.vms[vm.index() as usize];
        if !vm_state.has_eptp_list() {
            return Err(HvError::EptpListNotConfigured { vm });
        }
        let ept_index = vm_state
            .eptp_entry(index)
            .ok_or(HvError::InvalidEptpIndex { index })?;
        self.cpu.touch(TransitionKind::Vmfunc);
        self.cpu.load_eptp(index, self.epts[ept_index].eptp());
        self.active_ept = Some(ept_index);
        Ok(())
    }

    /// Performs a full CrossOver world switch (the extended-VMFUNC
    /// hardware of §5.1): in **one** priced transition the CPU changes
    /// privilege mode, guest page-table root and EPT pointer, without any
    /// hypervisor involvement.
    ///
    /// `eptp == 0` designates a host-side world (no EPT translation);
    /// otherwise `eptp` must be the pointer of a registered EPT. The
    /// platform's current-VM/active-EPT bookkeeping follows the switch, so
    /// a subsequent VMExit is attributed to the world actually running.
    ///
    /// `kind` must be [`TransitionKind::WorldCall`] or
    /// [`TransitionKind::WorldReturn`]; it is supplied by the CrossOver
    /// call unit, which owns the world table and performs all checks
    /// *before* invoking the switch.
    ///
    /// # Errors
    ///
    /// [`HvError::InvalidEptpIndex`] if `eptp` is non-zero and matches no
    /// registered EPT.
    pub fn crossover_switch(
        &mut self,
        kind: TransitionKind,
        to_mode: CpuMode,
        cr3: u64,
        eptp: u64,
    ) -> Result<(), HvError> {
        debug_assert!(matches!(
            kind,
            TransitionKind::WorldCall | TransitionKind::WorldReturn
        ));
        if eptp == 0 {
            self.cpu.transition(kind, to_mode);
            self.cpu.force_cr3(cr3);
            self.cpu.load_eptp(0, 0);
            self.current_vm = None;
            self.active_ept = None;
            return Ok(());
        }
        let ept_index = self
            .epts
            .iter()
            .position(|e| e.eptp() == eptp)
            .ok_or(HvError::InvalidEptpIndex { index: 0 })?;
        self.cpu.transition(kind, to_mode);
        self.cpu.force_cr3(cr3);
        self.cpu.load_eptp(ept_index as u16, eptp);
        self.active_ept = Some(ept_index);
        // Attribute execution to the VM owning this EPT as its primary,
        // if any (extra per-world EPTs belong to their creating VM).
        self.current_vm = self
            .vms
            .iter()
            .find(|v| v.ept() == ept_index)
            .map(|v| v.id());
        Ok(())
    }

    /// The EPT pointer value of `vm`'s primary EPT — what a CrossOver
    /// world entry stores in its EPTP field.
    ///
    /// # Errors
    ///
    /// [`HvError::NoSuchVm`] for an unknown VM.
    pub fn eptp_of(&self, vm: VmId) -> Result<u64, HvError> {
        Ok(self.epts[self.vm(vm)?.ept()].eptp())
    }

    /// Reads guest-physical memory through the *active* EPT (which may be
    /// another VM's after a VMFUNC).
    ///
    /// # Errors
    ///
    /// * [`HvError::NotInGuest`] if no EPT is active.
    /// * [`HvError::Mmu`] on translation failure.
    pub fn read_active_gpa(&self, gpa: Gpa, buf: &mut [u8]) -> Result<(), HvError> {
        let ept_index = self.active_ept.ok_or(HvError::NotInGuest)?;
        let ept = &self.epts[ept_index];
        let mut addr = gpa;
        let mut done = 0usize;
        while done < buf.len() {
            let hpa = ept.translate(addr, Perms::r())?;
            let n = (buf.len() - done).min((PAGE_SIZE - addr.page_offset()) as usize);
            self.phys.read(hpa, &mut buf[done..done + n])?;
            done += n;
            addr = addr.page_base() + PAGE_SIZE;
        }
        Ok(())
    }

    /// Writes guest-physical memory through the *active* EPT.
    ///
    /// # Errors
    ///
    /// * [`HvError::NotInGuest`] if no EPT is active.
    /// * [`HvError::Mmu`] on translation failure.
    pub fn write_active_gpa(&mut self, gpa: Gpa, data: &[u8]) -> Result<(), HvError> {
        let ept_index = self.active_ept.ok_or(HvError::NotInGuest)?;
        let mut addr = gpa;
        let mut done = 0usize;
        while done < data.len() {
            let hpa = self.epts[ept_index].translate(addr, Perms::w())?;
            let n = (data.len() - done).min((PAGE_SIZE - addr.page_offset()) as usize);
            self.phys.write(hpa, &data[done..done + n])?;
            done += n;
            addr = addr.page_base() + PAGE_SIZE;
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Unified TLB: priced virtual-address accesses
    // ---------------------------------------------------------------

    /// The core's unified TLB.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The core's TLB statistics.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Whether [`Platform::access_gva`] consults the TLB.
    pub fn tlb_enabled(&self) -> bool {
        self.tlb_enabled
    }

    /// Enables or disables the TLB (ablation: the disabled configuration
    /// pays a full walk on every access, like a machine without EPTP
    /// tagging that must flush on every world switch).
    pub fn set_tlb_enabled(&mut self, enabled: bool) {
        self.tlb_enabled = enabled;
    }

    /// Flushes the core's TLB (a full `invept`-style sweep).
    pub fn flush_tlb(&mut self) {
        self.tlb.flush();
    }

    /// Invalidates every TLB entry tagged with `eptp` — required after an
    /// EPT edit that removes or tightens a mapping. (Edits that only *add*
    /// mappings cannot leave stale entries, since absent translations are
    /// never cached.)
    pub fn invalidate_tlb_eptp(&mut self, eptp: u64) {
        self.tlb.invalidate_eptp(eptp);
    }

    /// Performs one priced virtual-memory access under the CPU's current
    /// (CR3, EPTP) tags: TLB hit costs [`TLB_HIT_CYCLES`]; a miss walks
    /// `pt` (and the active EPT in guest mode) for the full hardware walk
    /// cost and fills the TLB. Because entries are tagged, a `world_call`
    /// EPT switch leaves them resident — repeated calls hit, which is the
    /// fast path the paper's Table 4 numbers rely on.
    ///
    /// Outside guest mode (no active EPT, host worlds) the walk is
    /// single-stage and the guest-physical result is used as the host
    /// frame identity-mapped.
    ///
    /// # Errors
    ///
    /// [`HvError::Mmu`] on translation failure at either stage.
    pub fn access_gva(&mut self, pt: &PageTable, gva: Gva, access: Perms) -> Result<Hpa, HvError> {
        let cr3 = self.cpu.cr3();
        let eptp = self.cpu.eptp();
        if self.tlb_enabled {
            if let Some(entry) = self.tlb.lookup(cr3, eptp, gva) {
                if entry.perms.allows(access) {
                    self.cpu.charge_work(TLB_HIT_CYCLES, 1, "tlb hit");
                    return Ok(entry.hpa_base + gva.page_offset());
                }
                // Cached with narrower permissions: hardware re-walks to
                // confirm the wider access, then upgrades the entry.
            }
        }
        let (hpa, walk_cycles, walk_accesses) = match self.active_ept {
            Some(index) => (
                translate(pt, &self.epts[index], gva, access)?,
                TWO_STAGE_WALK_CYCLES,
                TWO_STAGE_WALK_ACCESSES as u64,
            ),
            None => {
                let gpa = pt.translate(gva, access)?;
                (
                    Hpa(gpa.value()),
                    STAGE1_WALK_CYCLES,
                    STAGE1_WALK_ACCESSES as u64,
                )
            }
        };
        self.cpu
            .charge_work(walk_cycles, walk_accesses, "page walk");
        if self.tlb_enabled {
            self.tlb.insert(cr3, eptp, gva, hpa.page_base(), access);
        }
        Ok(hpa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::mode::CpuMode;

    fn two_vm_platform() -> (Platform, VmId, VmId) {
        let mut p = Platform::new_default();
        let a = p.create_vm(VmConfig::named("a")).unwrap();
        let b = p.create_vm(VmConfig::named("b")).unwrap();
        p.setup_vmfunc_eptp_list(a).unwrap();
        p.setup_vmfunc_eptp_list(b).unwrap();
        (p, a, b)
    }

    #[test]
    fn starts_in_hypervisor() {
        let p = Platform::new_default();
        assert!(p.cpu().mode().is_hypervisor());
        assert_eq!(p.current_vm(), None);
    }

    #[test]
    fn vmentry_vmexit_round_trip_saves_state() {
        let (mut p, a, _) = two_vm_platform();
        p.vmentry(a).unwrap();
        assert_eq!(p.current_vm(), Some(a));
        assert_eq!(p.cpu().mode(), CpuMode::GUEST_USER);
        p.cpu_mut().regs_mut().rax = 99;
        p.vmexit(ExitReason::Hlt).unwrap();
        assert!(p.cpu().mode().is_hypervisor());
        assert_eq!(p.vmcs(a).unwrap().guest_regs.rax, 99);
        assert_eq!(p.vmcs(a).unwrap().last_exit, Some(ExitReason::Hlt));
        // Re-entry restores registers.
        p.cpu_mut().regs_mut().rax = 0;
        p.vmentry(a).unwrap();
        assert_eq!(p.cpu().regs().rax, 99);
    }

    #[test]
    fn double_vmentry_rejected() {
        let (mut p, a, b) = two_vm_platform();
        p.vmentry(a).unwrap();
        assert_eq!(p.vmentry(b), Err(HvError::AlreadyInGuest));
    }

    #[test]
    fn vmexit_from_host_rejected() {
        let (mut p, _, _) = two_vm_platform();
        assert_eq!(p.vmexit(ExitReason::Hlt), Err(HvError::NotInGuest));
    }

    #[test]
    fn vmfunc_switches_ept_without_intervention() {
        let (mut p, a, b) = two_vm_platform();
        p.vmentry(a).unwrap();
        let interventions = p.cpu().trace().hypervisor_interventions();
        p.vmfunc_switch_ept(b.index()).unwrap();
        assert_eq!(p.cpu().trace().hypervisor_interventions(), interventions);
        assert_eq!(p.active_ept(), Some(p.vm_info(b).unwrap().ept()));
        // VMCS still belongs to VM a: we did not VMExit.
        assert_eq!(p.current_vm(), Some(a));
        // And back.
        p.vmfunc_switch_ept(a.index()).unwrap();
        assert_eq!(p.active_ept(), Some(p.vm_info(a).unwrap().ept()));
    }

    #[test]
    fn vmfunc_invalid_index_faults() {
        let (mut p, a, _) = two_vm_platform();
        p.vmentry(a).unwrap();
        assert_eq!(
            p.vmfunc_switch_ept(77),
            Err(HvError::InvalidEptpIndex { index: 77 })
        );
    }

    #[test]
    fn vmfunc_without_list_fails() {
        let mut p = Platform::new_default();
        let a = p.create_vm(VmConfig::default()).unwrap();
        p.vmentry(a).unwrap();
        assert_eq!(
            p.vmfunc_switch_ept(0),
            Err(HvError::EptpListNotConfigured { vm: a })
        );
    }

    #[test]
    fn vmfunc_from_root_rejected() {
        let (mut p, _, _) = two_vm_platform();
        assert_eq!(p.vmfunc_switch_ept(0), Err(HvError::VmfuncFromRoot));
    }

    #[test]
    fn shared_page_aliases_one_frame() {
        let (mut p, a, b) = two_vm_platform();
        let gpa = Gpa(0x8000);
        let hpa = p.map_shared_page(a, b, gpa, Perms::rw()).unwrap();
        p.write_gpa(a, gpa, b"ping").unwrap();
        let mut buf = [0u8; 4];
        p.read_gpa(b, gpa, &mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        assert!(p.phys().is_backed(hpa));
        // Conflict on re-mapping.
        assert!(matches!(
            p.map_shared_page(a, b, gpa, Perms::rw()),
            Err(HvError::SharedRegionConflict { .. })
        ));
    }

    #[test]
    fn vmfunc_view_reads_target_vm_memory() {
        let (mut p, a, b) = two_vm_platform();
        // Same GPA in both VMs, different content.
        let gpa = p.alloc_guest_pages(a, 1).unwrap();
        p.back_guest_page(b, gpa, Perms::rwx()).unwrap();
        p.write_gpa(a, gpa, b"from-a").unwrap();
        p.write_gpa(b, gpa, b"from-b").unwrap();

        p.vmentry(a).unwrap();
        let mut buf = [0u8; 6];
        p.read_active_gpa(gpa, &mut buf).unwrap();
        assert_eq!(&buf, b"from-a");
        p.vmfunc_switch_ept(b.index()).unwrap();
        p.read_active_gpa(gpa, &mut buf).unwrap();
        assert_eq!(&buf, b"from-b");
    }

    #[test]
    fn code_page_shared_across_all_vms() {
        let (mut p, a, b) = two_vm_platform();
        let gpa = Gpa(0xC000);
        let hpa = p.map_code_page_all_vms(gpa).unwrap();
        assert_eq!(p.ept(a).unwrap().entry(gpa).unwrap().hpa, hpa);
        assert_eq!(p.ept(b).unwrap().entry(gpa).unwrap().hpa, hpa);
        // Read-execute only: guests cannot write their call gate.
        assert!(p.write_gpa(a, gpa, b"overwrite").is_err());
    }

    #[test]
    fn pending_interrupt_delivered_on_entry() {
        let (mut p, a, _) = two_vm_platform();
        p.inject_interrupt(a, 0x20).unwrap();
        assert_eq!(p.vmcs(a).unwrap().pending_interrupt, Some(0x20));
        let injections_before = p.cpu().trace().count(TransitionKind::InterruptInject);
        p.vmentry(a).unwrap();
        assert_eq!(p.vmcs(a).unwrap().pending_interrupt, None);
        assert_eq!(
            p.cpu().trace().count(TransitionKind::InterruptInject),
            injections_before + 1
        );
    }

    #[test]
    fn hypercall_roundtrip_counts() {
        let (mut p, a, _) = two_vm_platform();
        p.vmentry(a).unwrap();
        p.hypercall_roundtrip(42).unwrap();
        assert_eq!(p.hypercall_count(), 1);
        assert_eq!(p.current_vm(), Some(a));
    }

    #[test]
    fn wakeup_charges_scale_with_load() {
        let (mut p, a, _) = two_vm_platform();
        let before = p.cpu().meter().cycles();
        p.charge_wakeup(a).unwrap();
        let idle_cost = p.cpu().meter().cycles() - before;

        p.set_sched(SchedModel::loaded(4));
        let before = p.cpu().meter().cycles();
        p.charge_wakeup(a).unwrap();
        let loaded_cost = p.cpu().meter().cycles() - before;
        assert!(loaded_cost > idle_cost);
    }

    #[test]
    fn crossover_switch_changes_everything_in_one_transition() {
        let (mut p, a, b) = two_vm_platform();
        p.vmentry(a).unwrap();
        let eptp_b = p.eptp_of(b).unwrap();
        let transitions_before = p.cpu().trace().len();
        p.crossover_switch(
            TransitionKind::WorldCall,
            CpuMode::GUEST_KERNEL,
            0xBEEF_0000,
            eptp_b,
        )
        .unwrap();
        assert_eq!(p.cpu().trace().len(), transitions_before + 1);
        assert_eq!(p.cpu().mode(), CpuMode::GUEST_KERNEL);
        assert_eq!(p.cpu().cr3(), 0xBEEF_0000);
        assert_eq!(p.cpu().eptp(), eptp_b);
        assert_eq!(p.current_vm(), Some(b));
    }

    #[test]
    fn crossover_switch_to_host_world() {
        let (mut p, a, _) = two_vm_platform();
        p.vmentry(a).unwrap();
        p.crossover_switch(TransitionKind::WorldCall, CpuMode::HOST_USER, 0x77000, 0)
            .unwrap();
        assert_eq!(p.cpu().mode(), CpuMode::HOST_USER);
        assert_eq!(p.current_vm(), None);
        assert_eq!(p.active_ept(), None);
    }

    #[test]
    fn crossover_switch_rejects_unknown_eptp() {
        let (mut p, a, _) = two_vm_platform();
        p.vmentry(a).unwrap();
        assert!(matches!(
            p.crossover_switch(
                TransitionKind::WorldCall,
                CpuMode::GUEST_KERNEL,
                0,
                0xDEAD_BEEF
            ),
            Err(HvError::InvalidEptpIndex { .. })
        ));
    }

    #[test]
    fn unknown_vm_errors() {
        let mut p = Platform::new_default();
        let ghost = VmId::new(9);
        assert_eq!(p.vmentry(ghost), Err(HvError::NoSuchVm { vm: ghost }));
        assert!(p.vm_info(ghost).is_err());
        assert!(p.inject_interrupt(ghost, 1).is_err());
        assert!(p.charge_wakeup(ghost).is_err());
    }

    #[test]
    fn access_gva_hit_is_cheap_miss_pays_walk() {
        let (mut p, a, _) = two_vm_platform();
        let gpa = p.alloc_guest_pages(a, 1).unwrap();
        let mut pt = PageTable::new(0x1000);
        pt.map(Gva(0x4000_0000), gpa, Perms::rw()).unwrap();
        p.vmentry(a).unwrap();
        p.cpu_mut().force_cr3(0x1000);

        let before = p.cpu().meter().cycles();
        p.access_gva(&pt, Gva(0x4000_0010), Perms::r()).unwrap();
        let miss_cost = p.cpu().meter().cycles() - before;
        assert_eq!(miss_cost, TWO_STAGE_WALK_CYCLES);

        let before = p.cpu().meter().cycles();
        let hpa = p.access_gva(&pt, Gva(0x4000_0020), Perms::r()).unwrap();
        let hit_cost = p.cpu().meter().cycles() - before;
        assert_eq!(hit_cost, TLB_HIT_CYCLES);
        assert_eq!(hpa.page_offset(), 0x20);
        assert_eq!(p.tlb_stats().hits, 1);
        assert_eq!(p.tlb_stats().misses, 1);
    }

    #[test]
    fn world_switch_preserves_tlb_entries() {
        let (mut p, a, b) = two_vm_platform();
        let gpa = p.alloc_guest_pages(a, 1).unwrap();
        p.back_guest_page(b, gpa, Perms::rwx()).unwrap();
        let mut pt = PageTable::new(0x1000);
        pt.map(Gva(0x4000_0000), gpa, Perms::rw()).unwrap();
        let eptp_a = p.eptp_of(a).unwrap();
        let eptp_b = p.eptp_of(b).unwrap();

        p.vmentry(a).unwrap();
        p.cpu_mut().force_cr3(0x1000);
        p.access_gva(&pt, Gva(0x4000_0000), Perms::r()).unwrap();

        // world_call into b and back: a's entry must still hit.
        p.crossover_switch(
            TransitionKind::WorldCall,
            CpuMode::GUEST_KERNEL,
            0x1000,
            eptp_b,
        )
        .unwrap();
        p.access_gva(&pt, Gva(0x4000_0000), Perms::r()).unwrap(); // b's view: miss
        p.crossover_switch(
            TransitionKind::WorldReturn,
            CpuMode::GUEST_USER,
            0x1000,
            eptp_a,
        )
        .unwrap();
        let misses_before = p.tlb_stats().misses;
        p.access_gva(&pt, Gva(0x4000_0000), Perms::r()).unwrap();
        assert_eq!(p.tlb_stats().misses, misses_before, "no flush on VMFUNC");
        assert_eq!(p.tlb_stats().hits, 1);
    }

    #[test]
    fn tlb_disabled_pays_walk_every_time() {
        let (mut p, a, _) = two_vm_platform();
        let gpa = p.alloc_guest_pages(a, 1).unwrap();
        let mut pt = PageTable::new(0x1000);
        pt.map(Gva(0x4000_0000), gpa, Perms::rw()).unwrap();
        p.set_tlb_enabled(false);
        p.vmentry(a).unwrap();
        p.cpu_mut().force_cr3(0x1000);
        let before = p.cpu().meter().cycles();
        p.access_gva(&pt, Gva(0x4000_0000), Perms::r()).unwrap();
        p.access_gva(&pt, Gva(0x4000_0000), Perms::r()).unwrap();
        let cost = p.cpu().meter().cycles() - before;
        assert_eq!(cost, 2 * TWO_STAGE_WALK_CYCLES);
        assert_eq!(p.tlb_stats().hits + p.tlb_stats().misses, 0);
    }

    #[test]
    fn access_gva_permission_upgrade_rewalks_once() {
        let (mut p, a, _) = two_vm_platform();
        let gpa = p.alloc_guest_pages(a, 1).unwrap();
        let mut pt = PageTable::new(0x1000);
        pt.map(Gva(0x4000_0000), gpa, Perms::rw()).unwrap();
        p.vmentry(a).unwrap();
        p.cpu_mut().force_cr3(0x1000);
        p.access_gva(&pt, Gva(0x4000_0000), Perms::r()).unwrap();
        // Write access: cached read-only entry cannot satisfy it — the
        // hardware re-walks and upgrades. A second write then hits.
        p.access_gva(&pt, Gva(0x4000_0000), Perms::w()).unwrap();
        let before = p.cpu().meter().cycles();
        p.access_gva(&pt, Gva(0x4000_0000), Perms::w()).unwrap();
        assert_eq!(p.cpu().meter().cycles() - before, TLB_HIT_CYCLES);
    }

    #[test]
    fn host_access_gva_is_single_stage() {
        let mut p = Platform::new_default();
        let mut pt = PageTable::new(0xE000);
        pt.map(Gva(0x7000_0000), Gpa(0x3000), Perms::rw()).unwrap();
        p.cpu_mut().force_cr3(0xE000);
        let before = p.cpu().meter().cycles();
        let hpa = p.access_gva(&pt, Gva(0x7000_0040), Perms::r()).unwrap();
        assert_eq!(p.cpu().meter().cycles() - before, STAGE1_WALK_CYCLES);
        assert_eq!(hpa, Hpa(0x3040));
    }

    #[test]
    fn huge_page_backing_spans_two_megabytes() {
        let (mut p, a, _) = two_vm_platform();
        let gpa = Gpa(0x20_0000); // 2 MiB aligned
        let hpa = p.back_guest_huge_page(a, gpa).unwrap();
        assert_eq!(hpa.value() % 0x20_0000, 0, "host backing is aligned");
        // Reads and writes work anywhere in the region.
        p.write_gpa(a, gpa + 0x1F_F000, b"edge").unwrap();
        let mut buf = [0u8; 4];
        p.read_gpa(a, gpa + 0x1F_F000, &mut buf).unwrap();
        assert_eq!(&buf, b"edge");
        // Overlapping 4 KiB backing is refused.
        assert!(p.back_guest_page(a, gpa + 0x1000, Perms::rw()).is_err());
    }
}
