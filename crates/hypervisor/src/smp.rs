//! A small SMP substrate: multiple cores with private meters and
//! cross-core IPIs.
//!
//! The paper's §3.3 rejects asynchronous and IPI-based call designs
//! partly on multi-core grounds: the callee runs on *another* core, so
//! the working set migrates and the reply waits on cross-core
//! signalling. The main [`crate::platform::Platform`] is single-vCPU
//! (faithful to the paper's benchmark guests); this module provides the
//! multi-core accounting those rejected designs need, so the ablations
//! can model them honestly rather than on one shared meter.

use machine::cost::CostModel;
use machine::cpu::Cpu;
use machine::fault::{FaultKind, FaultPlan, FaultSite};
use machine::mode::CpuMode;
use machine::trace::TransitionKind;

use std::collections::VecDeque;
use std::sync::Arc;

/// Identifier of a core in an [`SmpMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreId(pub u32);

/// A pending inter-processor interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipi {
    /// Sending core.
    pub from: CoreId,
    /// Interrupt vector.
    pub vector: u8,
}

/// Upper bound on undelivered IPIs per core. A runaway sender (e.g. a
/// tight notification loop whose receiver is wedged) would otherwise grow
/// the queue without bound; real APICs coalesce at one pending vector,
/// so any fixed bound is generous. Sends beyond it fail with
/// [`SmpError::IpiQueueFull`] — backpressure, not memory growth.
pub const MAX_PENDING_IPIS: usize = 1024;

/// A multi-core machine: per-core CPUs (each with its own meter and
/// trace) plus IPI queues.
///
/// # Example
///
/// ```
/// use xover_hypervisor::smp::{CoreId, SmpMachine};
///
/// let mut smp = SmpMachine::new(4);
/// smp.send_ipi(CoreId(0), CoreId(2), 0xEE)?;
/// let ipi = smp.take_ipi(CoreId(2))?.expect("delivered");
/// assert_eq!(ipi.from, CoreId(0));
/// # Ok::<(), xover_hypervisor::smp::SmpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SmpMachine {
    cores: Vec<Cpu>,
    ipi_queues: Vec<VecDeque<Ipi>>,
    // Extra delivery latency for the queued IPI at the same position in
    // `ipi_queues` (normally 0; fault injection can raise it).
    ipi_delays: Vec<VecDeque<u64>>,
    // Per-core count of IPIs that never reached the target's queue:
    // bounded-queue overflow plus injected wire loss. Surfaced in merged
    // meter reports rather than silently dropped.
    ipi_dropped: Vec<u64>,
    faults: Option<Arc<FaultPlan>>,
}

/// Errors from SMP operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmpError {
    /// Referenced a core that does not exist.
    NoSuchCore {
        /// The offending id.
        core: CoreId,
    },
    /// A core attempted to IPI itself.
    SelfIpi {
        /// The offending id.
        core: CoreId,
    },
    /// The target core's IPI queue is at [`MAX_PENDING_IPIS`].
    IpiQueueFull {
        /// The congested target.
        core: CoreId,
    },
    /// A machine needs at least one core.
    ZeroCores,
}

impl std::fmt::Display for SmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmpError::NoSuchCore { core } => write!(f, "no such core: {}", core.0),
            SmpError::SelfIpi { core } => write!(f, "core {} sent an IPI to itself", core.0),
            SmpError::IpiQueueFull { core } => {
                write!(
                    f,
                    "core {}'s IPI queue is full ({MAX_PENDING_IPIS} pending)",
                    core.0
                )
            }
            SmpError::ZeroCores => write!(f, "an SMP machine needs at least one core"),
        }
    }
}

impl std::error::Error for SmpError {}

impl SmpMachine {
    /// Creates a machine with `cores` cores (Haswell cost model), all in
    /// host kernel mode.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: u32) -> SmpMachine {
        SmpMachine::try_new(cores).expect("need at least one core")
    }

    /// Fallible constructor for callers sizing the machine from runtime
    /// configuration (e.g. a worker-pool service), where a zero count is
    /// an input error rather than a programming bug.
    ///
    /// # Errors
    ///
    /// [`SmpError::ZeroCores`] if `cores` is zero.
    pub fn try_new(cores: u32) -> Result<SmpMachine, SmpError> {
        if cores == 0 {
            return Err(SmpError::ZeroCores);
        }
        let cores: Vec<Cpu> = (0..cores)
            .map(|i| {
                let mut cpu = Cpu::new(i, CostModel::haswell_3_4ghz());
                cpu.force_mode(CpuMode::HOST_KERNEL);
                cpu
            })
            .collect();
        let queues = cores.iter().map(|_| VecDeque::new()).collect();
        let delays = cores.iter().map(|_| VecDeque::new()).collect();
        let dropped = vec![0; cores.len()];
        Ok(SmpMachine {
            cores,
            ipi_queues: queues,
            ipi_delays: delays,
            ipi_dropped: dropped,
            faults: None,
        })
    }

    /// Arms a fault plan: subsequent [`SmpMachine::send_ipi`] calls
    /// consult [`FaultSite::IpiLoss`] and [`FaultSite::IpiDelay`] with
    /// the *sender's* virtual clock. An empty plan changes nothing.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Disarms fault injection.
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Read access to one core's CPU.
    ///
    /// # Errors
    ///
    /// [`SmpError::NoSuchCore`] for an unknown core.
    pub fn core(&self, id: CoreId) -> Result<&Cpu, SmpError> {
        self.cores
            .get(id.0 as usize)
            .ok_or(SmpError::NoSuchCore { core: id })
    }

    /// Mutable access to one core's CPU.
    ///
    /// # Errors
    ///
    /// [`SmpError::NoSuchCore`] for an unknown core.
    pub fn core_mut(&mut self, id: CoreId) -> Result<&mut Cpu, SmpError> {
        self.cores
            .get_mut(id.0 as usize)
            .ok_or(SmpError::NoSuchCore { core: id })
    }

    /// Sends an IPI from `from` to `to`: the send cost lands on the
    /// sender's meter; the receive cost is charged when the target takes
    /// the interrupt via [`SmpMachine::take_ipi`].
    ///
    /// # Errors
    ///
    /// * [`SmpError::NoSuchCore`] for unknown cores.
    /// * [`SmpError::SelfIpi`] for self-IPIs (modelled as disallowed).
    /// * [`SmpError::IpiQueueFull`] when the target already has
    ///   [`MAX_PENDING_IPIS`] undelivered interrupts; no send cost is
    ///   charged for a refused send, but the drop is counted against
    ///   the target in [`SmpMachine::ipi_dropped`].
    ///
    /// With a fault plan armed, an `IpiLoss` event eats the interrupt
    /// on the wire (the sender pays and sees `Ok`, the target counts a
    /// drop) and an `IpiDelay` event adds delivery latency charged when
    /// the target takes the interrupt.
    pub fn send_ipi(&mut self, from: CoreId, to: CoreId, vector: u8) -> Result<(), SmpError> {
        if from == to {
            return Err(SmpError::SelfIpi { core: from });
        }
        if to.0 as usize >= self.cores.len() {
            return Err(SmpError::NoSuchCore { core: to });
        }
        if self.ipi_queues[to.0 as usize].len() >= MAX_PENDING_IPIS {
            self.ipi_dropped[to.0 as usize] += 1;
            return Err(SmpError::IpiQueueFull { core: to });
        }
        let mut delay = 0;
        if let (Some(plan), Some(sender)) = (self.faults.clone(), self.cores.get(from.0 as usize)) {
            let now = sender.meter().cycles();
            if plan.fire(FaultSite::IpiLoss, now).is_some() {
                // Lost on the wire: the sender pays for a send it
                // believes succeeded; the target never sees it.
                self.core_mut(from)?.touch(TransitionKind::IpiSend);
                self.ipi_dropped[to.0 as usize] += 1;
                return Ok(());
            }
            if let Some(FaultKind::Delay { cycles }) = plan.fire(FaultSite::IpiDelay, now) {
                delay = cycles;
            }
        }
        self.core_mut(from)?.touch(TransitionKind::IpiSend);
        self.ipi_queues[to.0 as usize].push_back(Ipi { from, vector });
        self.ipi_delays[to.0 as usize].push_back(delay);
        Ok(())
    }

    /// Takes the next pending IPI on `core`, charging the receive cost.
    /// Returns `None` when no interrupt is pending.
    ///
    /// # Errors
    ///
    /// [`SmpError::NoSuchCore`] for an unknown core.
    pub fn take_ipi(&mut self, core: CoreId) -> Result<Option<Ipi>, SmpError> {
        if core.0 as usize >= self.cores.len() {
            return Err(SmpError::NoSuchCore { core });
        }
        match self.ipi_queues[core.0 as usize].pop_front() {
            Some(ipi) => {
                let delay = self.ipi_delays[core.0 as usize].pop_front().unwrap_or(0);
                let cpu = self.core_mut(core)?;
                if delay > 0 {
                    cpu.charge_work(delay, 0, "ipi delivery delay");
                }
                cpu.touch(TransitionKind::IpiReceive);
                Ok(Some(ipi))
            }
            None => Ok(None),
        }
    }

    /// IPIs destined for `core` that were never delivered: bounded-queue
    /// overflow plus injected wire loss.
    ///
    /// # Errors
    ///
    /// [`SmpError::NoSuchCore`] for an unknown core.
    pub fn ipi_dropped(&self, core: CoreId) -> Result<u64, SmpError> {
        self.ipi_dropped
            .get(core.0 as usize)
            .copied()
            .ok_or(SmpError::NoSuchCore { core })
    }

    /// Undelivered IPIs summed over all cores.
    pub fn total_ipi_dropped(&self) -> u64 {
        self.ipi_dropped.iter().sum()
    }

    /// Pending IPI count on `core`.
    ///
    /// # Errors
    ///
    /// [`SmpError::NoSuchCore`] for an unknown core.
    pub fn pending_ipis(&self, core: CoreId) -> Result<usize, SmpError> {
        self.ipi_queues
            .get(core.0 as usize)
            .map(|q| q.len())
            .ok_or(SmpError::NoSuchCore { core })
    }

    /// Total cycles across all cores (system-wide work, the metric the
    /// async design optimizes at the expense of latency).
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.meter().cycles()).sum()
    }

    /// The maximum single-core cycle count (a proxy for wall-clock when
    /// cores run concurrently).
    pub fn makespan_cycles(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.meter().cycles())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_meters_are_independent() {
        let mut smp = SmpMachine::new(2);
        smp.core_mut(CoreId(0)).unwrap().charge_work(100, 10, "a");
        assert_eq!(smp.core(CoreId(0)).unwrap().meter().cycles(), 100);
        assert_eq!(smp.core(CoreId(1)).unwrap().meter().cycles(), 0);
        assert_eq!(smp.total_cycles(), 100);
        assert_eq!(smp.makespan_cycles(), 100);
    }

    #[test]
    fn ipi_round_trip_charges_both_sides() {
        let mut smp = SmpMachine::new(2);
        smp.send_ipi(CoreId(0), CoreId(1), 0xEE).unwrap();
        assert_eq!(smp.pending_ipis(CoreId(1)).unwrap(), 1);
        let ipi = smp.take_ipi(CoreId(1)).unwrap().unwrap();
        assert_eq!(
            ipi,
            Ipi {
                from: CoreId(0),
                vector: 0xEE
            }
        );
        // Send cost on core 0, receive cost on core 1.
        assert!(smp.core(CoreId(0)).unwrap().meter().cycles() > 0);
        assert!(smp.core(CoreId(1)).unwrap().meter().cycles() > 0);
        assert!(smp.take_ipi(CoreId(1)).unwrap().is_none());
    }

    #[test]
    fn self_ipi_and_bad_cores_rejected() {
        let mut smp = SmpMachine::new(1);
        assert_eq!(
            smp.send_ipi(CoreId(0), CoreId(0), 1),
            Err(SmpError::SelfIpi { core: CoreId(0) })
        );
        assert_eq!(
            smp.send_ipi(CoreId(0), CoreId(5), 1),
            Err(SmpError::NoSuchCore { core: CoreId(5) })
        );
        assert!(smp.core(CoreId(9)).is_err());
    }

    #[test]
    fn ipis_deliver_in_order() {
        let mut smp = SmpMachine::new(3);
        smp.send_ipi(CoreId(0), CoreId(2), 1).unwrap();
        smp.send_ipi(CoreId(1), CoreId(2), 2).unwrap();
        assert_eq!(smp.take_ipi(CoreId(2)).unwrap().unwrap().vector, 1);
        assert_eq!(smp.take_ipi(CoreId(2)).unwrap().unwrap().vector, 2);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        SmpMachine::new(0);
    }

    #[test]
    fn try_new_reports_zero_cores_as_an_error() {
        assert_eq!(SmpMachine::try_new(0).err(), Some(SmpError::ZeroCores));
        assert_eq!(SmpMachine::try_new(3).unwrap().core_count(), 3);
    }

    #[test]
    fn ipi_queue_is_bounded() {
        let mut smp = SmpMachine::new(2);
        for _ in 0..MAX_PENDING_IPIS {
            smp.send_ipi(CoreId(0), CoreId(1), 0x20).unwrap();
        }
        let send_cycles = smp.core(CoreId(0)).unwrap().meter().cycles();
        assert_eq!(
            smp.send_ipi(CoreId(0), CoreId(1), 0x20),
            Err(SmpError::IpiQueueFull { core: CoreId(1) })
        );
        // A refused send charges nothing on the sender.
        assert_eq!(smp.core(CoreId(0)).unwrap().meter().cycles(), send_cycles);
        // Draining one slot unblocks the sender.
        smp.take_ipi(CoreId(1)).unwrap().unwrap();
        assert!(smp.send_ipi(CoreId(0), CoreId(1), 0x20).is_ok());
        assert_eq!(smp.pending_ipis(CoreId(1)).unwrap(), MAX_PENDING_IPIS);
    }

    #[test]
    fn self_ipi_rejected_before_queue_bound_check() {
        // Self-IPI is an error in its own right, not a queue problem.
        let mut smp = SmpMachine::new(2);
        assert_eq!(
            smp.send_ipi(CoreId(1), CoreId(1), 7),
            Err(SmpError::SelfIpi { core: CoreId(1) })
        );
        assert_eq!(smp.pending_ipis(CoreId(1)).unwrap(), 0);
        assert_eq!(smp.core(CoreId(1)).unwrap().meter().cycles(), 0);
    }

    #[test]
    fn queue_overflow_counts_dropped_ipis() {
        let mut smp = SmpMachine::new(2);
        for _ in 0..MAX_PENDING_IPIS {
            smp.send_ipi(CoreId(0), CoreId(1), 0x20).unwrap();
        }
        assert_eq!(smp.ipi_dropped(CoreId(1)).unwrap(), 0);
        for _ in 0..3 {
            assert!(smp.send_ipi(CoreId(0), CoreId(1), 0x20).is_err());
        }
        assert_eq!(smp.ipi_dropped(CoreId(1)).unwrap(), 3);
        assert_eq!(smp.ipi_dropped(CoreId(0)).unwrap(), 0);
        assert_eq!(smp.total_ipi_dropped(), 3);
        assert!(smp.ipi_dropped(CoreId(9)).is_err());
    }

    #[test]
    fn injected_loss_charges_sender_but_never_delivers() {
        let mut smp = SmpMachine::new(2);
        let plan = Arc::new(FaultPlan::new());
        plan.schedule(0, FaultSite::IpiLoss, FaultKind::Drop);
        smp.set_fault_plan(plan.clone());
        // First send is eaten by the wire; sender still pays and sees Ok.
        smp.send_ipi(CoreId(0), CoreId(1), 0xAB).unwrap();
        let paid = smp.core(CoreId(0)).unwrap().meter().cycles();
        assert!(paid > 0);
        assert_eq!(smp.pending_ipis(CoreId(1)).unwrap(), 0);
        assert_eq!(smp.ipi_dropped(CoreId(1)).unwrap(), 1);
        assert_eq!(plan.fired_count(FaultSite::IpiLoss), 1);
        // The plan is exhausted: the next send goes through.
        smp.send_ipi(CoreId(0), CoreId(1), 0xAB).unwrap();
        assert_eq!(smp.pending_ipis(CoreId(1)).unwrap(), 1);
    }

    #[test]
    fn injected_delay_charges_receiver_on_take() {
        let mut smp = SmpMachine::new(2);
        let plan = Arc::new(FaultPlan::new());
        plan.schedule(0, FaultSite::IpiDelay, FaultKind::Delay { cycles: 777 });
        smp.set_fault_plan(plan);
        smp.send_ipi(CoreId(0), CoreId(1), 0x33).unwrap();

        let mut clean = SmpMachine::new(2);
        clean.send_ipi(CoreId(0), CoreId(1), 0x33).unwrap();

        smp.take_ipi(CoreId(1)).unwrap().unwrap();
        clean.take_ipi(CoreId(1)).unwrap().unwrap();
        let delayed = smp.core(CoreId(1)).unwrap().meter().cycles();
        let prompt = clean.core(CoreId(1)).unwrap().meter().cycles();
        assert_eq!(delayed, prompt + 777);
    }

    #[test]
    fn empty_fault_plan_is_a_no_op() {
        let mut faulty = SmpMachine::new(2);
        faulty.set_fault_plan(Arc::new(FaultPlan::new()));
        let mut clean = SmpMachine::new(2);
        for (smp, _) in [(&mut faulty, 0), (&mut clean, 1)] {
            smp.send_ipi(CoreId(0), CoreId(1), 0x11).unwrap();
            smp.take_ipi(CoreId(1)).unwrap().unwrap();
        }
        assert_eq!(faulty.total_cycles(), clean.total_cycles());
        assert_eq!(faulty.total_ipi_dropped(), 0);
    }

    #[test]
    fn error_display_covers_new_variants() {
        assert!(SmpError::ZeroCores
            .to_string()
            .contains("at least one core"));
        assert!(SmpError::IpiQueueFull { core: CoreId(3) }
            .to_string()
            .contains("full"));
    }
}
