//! Virtual machines and their per-VM hypervisor state.

use std::fmt;

use mmu::addr::Gpa;

/// Identifier of a virtual machine.
///
/// Per §4.3, "after a VM boots up, the hypervisor will assign a unique VM
/// ID to each VM and keep track of each VM's EPT pointer by storing it in
/// the EPTP-list address with an offset, which is the same as the VM ID" —
/// so a `VmId`'s [`VmId::index`] doubles as the VMFUNC EPTP-list index for
/// cross-VM switching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(u16);

impl VmId {
    /// Creates a VM id from its raw index.
    pub fn new(index: u16) -> VmId {
        VmId(index)
    }

    /// The raw index, also used as the VMFUNC EPTP-list offset.
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VM-{}", self.0)
    }
}

/// Configuration for creating a VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmConfig {
    /// Guest RAM size in pages (paper guests are 2 GB; tests use far
    /// less — memory is lazily backed either way).
    pub ram_pages: u64,
    /// Human-readable name for traces and reports.
    pub name: String,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            ram_pages: 512, // 2 MiB of lazily-backed guest RAM for tests
            name: String::from("guest"),
        }
    }
}

impl VmConfig {
    /// Creates a named config with the default RAM size.
    pub fn named(name: &str) -> VmConfig {
        VmConfig {
            name: name.to_string(),
            ..VmConfig::default()
        }
    }
}

/// Run state of a VM as seen by the hypervisor's scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmRunState {
    /// Has runnable work.
    #[default]
    Runnable,
    /// Blocked waiting for an event (e.g. an injected completion).
    Blocked,
}

/// Per-VM hypervisor-side state.
#[derive(Debug, Clone)]
pub struct Vm {
    id: VmId,
    config: VmConfig,
    /// Index of this VM's primary EPT in the platform's EPT arena.
    ept: usize,
    /// EPTP-list for VMFUNC: maps list index -> EPT arena index.
    /// `None` until the hypervisor configures it.
    eptp_list: Option<Vec<Option<usize>>>,
    /// Next free guest-physical page for simple bump allocation of guest
    /// RAM regions.
    next_gpa: Gpa,
    run_state: VmRunState,
}

/// Number of entries in a VMFUNC EPTP list (architecturally 512).
pub const EPTP_LIST_ENTRIES: usize = 512;

impl Vm {
    /// Creates per-VM state. Used by the platform; library users go
    /// through [`crate::platform::Platform::create_vm`].
    pub(crate) fn new(id: VmId, config: VmConfig, ept: usize) -> Vm {
        Vm {
            id,
            config,
            ept,
            eptp_list: None,
            next_gpa: Gpa(0x10_000), // leave low memory for fixed structures
            run_state: VmRunState::default(),
        }
    }

    /// This VM's id.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The configuration the VM was created with.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Index of the VM's primary EPT in the platform arena.
    pub fn ept(&self) -> usize {
        self.ept
    }

    /// Current scheduler run state.
    pub fn run_state(&self) -> VmRunState {
        self.run_state
    }

    /// Sets the scheduler run state.
    pub fn set_run_state(&mut self, state: VmRunState) {
        self.run_state = state;
    }

    /// Whether the EPTP list has been configured.
    pub fn has_eptp_list(&self) -> bool {
        self.eptp_list.is_some()
    }

    /// Installs an empty EPTP list.
    pub(crate) fn init_eptp_list(&mut self) {
        self.eptp_list = Some(vec![None; EPTP_LIST_ENTRIES]);
    }

    /// Populates one EPTP-list slot with an EPT arena index.
    pub(crate) fn set_eptp_entry(&mut self, index: u16, ept: usize) {
        let list = self
            .eptp_list
            .as_mut()
            .expect("EPTP list must be initialized first");
        list[index as usize] = Some(ept);
    }

    /// Resolves an EPTP-list index to an EPT arena index.
    pub(crate) fn eptp_entry(&self, index: u16) -> Option<usize> {
        self.eptp_list
            .as_ref()
            .and_then(|l| l.get(index as usize).copied().flatten())
    }

    /// Bump-allocates `pages` guest-physical pages, returning the base.
    pub(crate) fn alloc_gpa_range(&mut self, pages: u64) -> Gpa {
        let base = self.next_gpa;
        self.next_gpa = self.next_gpa + pages * mmu::addr::PAGE_SIZE;
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_id_display_and_index() {
        let id = VmId::new(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "VM-3");
    }

    #[test]
    fn eptp_list_lifecycle() {
        let mut vm = Vm::new(VmId::new(0), VmConfig::default(), 0);
        assert!(!vm.has_eptp_list());
        assert_eq!(vm.eptp_entry(0), None);
        vm.init_eptp_list();
        assert!(vm.has_eptp_list());
        vm.set_eptp_entry(5, 42);
        assert_eq!(vm.eptp_entry(5), Some(42));
        assert_eq!(vm.eptp_entry(6), None);
    }

    #[test]
    fn gpa_bump_allocation_is_disjoint() {
        let mut vm = Vm::new(VmId::new(0), VmConfig::default(), 0);
        let a = vm.alloc_gpa_range(2);
        let b = vm.alloc_gpa_range(1);
        assert!(b.value() >= a.value() + 2 * mmu::addr::PAGE_SIZE);
    }

    #[test]
    fn run_state_toggles() {
        let mut vm = Vm::new(VmId::new(1), VmConfig::named("t"), 0);
        assert_eq!(vm.run_state(), VmRunState::Runnable);
        vm.set_run_state(VmRunState::Blocked);
        assert_eq!(vm.run_state(), VmRunState::Blocked);
    }

    #[test]
    fn named_config() {
        let c = VmConfig::named("private");
        assert_eq!(c.name, "private");
        assert_eq!(c.ram_pages, VmConfig::default().ram_pages);
    }
}
