//! A KVM-like hypervisor for the CrossOver reproduction.
//!
//! The baseline systems the paper studies (Proxos, HyperShell, Tahoma,
//! ShadowContext) all bounce through the hypervisor on every cross-world
//! interaction; CrossOver's entire contribution is removing those bounces.
//! This crate provides the hypervisor whose intervention is being removed:
//!
//! * [`vm`] — virtual machines and their per-VM state (EPT, EPTP list,
//!   VM id used as the VMFUNC index in §4.3).
//! * [`vmcs`] — the VM control structure: saved guest context across
//!   VMExit/VMEntry.
//! * [`exit`] — VMExit reasons.
//! * [`platform`] — the [`platform::Platform`]: one simulated machine
//!   binding a CPU, host physical memory, the hypervisor state and the
//!   VMFUNC logic together. All upper layers (guest OS, CrossOver, case
//!   studies) operate through `&mut Platform`.
//! * [`sched`] — the VM/process scheduling-latency model that dominates
//!   the baseline systems' worst cases (§7.1.1's "up to 35X" Proxos note).
//! * [`smp`] — a multi-core substrate with per-core meters and IPIs, used
//!   by the ablations of the §3.3 rejected designs.
//!
//! # Example
//!
//! ```
//! use xover_hypervisor::platform::Platform;
//! use xover_hypervisor::vm::VmConfig;
//!
//! let mut p = Platform::new_default();
//! let vm1 = p.create_vm(VmConfig::default())?;
//! let vm2 = p.create_vm(VmConfig::default())?;
//! p.setup_vmfunc_eptp_list(vm1)?;
//! p.setup_vmfunc_eptp_list(vm2)?;
//! // Enter VM 1 and VMFUNC over to VM 2's EPT without a VMExit.
//! p.vmentry(vm1)?;
//! let before = p.cpu().trace().hypervisor_interventions();
//! p.vmfunc_switch_ept(vm2.index())?;
//! assert_eq!(p.cpu().trace().hypervisor_interventions(), before);
//! # Ok::<(), xover_hypervisor::HvError>(())
//! ```

pub mod exit;
pub mod platform;
pub mod sched;
pub mod smp;
pub mod vm;
pub mod vmcs;

pub use exit::ExitReason;
pub use platform::Platform;
pub use sched::SchedModel;
pub use vm::{VmConfig, VmId};
pub use vmcs::Vmcs;

use std::fmt;

use mmu::addr::Gpa;

/// Errors raised by hypervisor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HvError {
    /// Referenced a VM id that does not exist.
    NoSuchVm {
        /// The offending id.
        vm: VmId,
    },
    /// VMFUNC invoked with an EPTP-list index that is not populated.
    /// On real hardware this raises a VMExit with "VM function fault".
    InvalidEptpIndex {
        /// The index passed to VMFUNC.
        index: u16,
    },
    /// VMFUNC invoked while in VMX root operation (host side), where it is
    /// architecturally undefined.
    VmfuncFromRoot,
    /// VMEntry attempted while already in non-root operation.
    AlreadyInGuest,
    /// VMExit processed while not in non-root operation.
    NotInGuest,
    /// The per-VM EPTP list was never configured.
    EptpListNotConfigured {
        /// The VM whose list is missing.
        vm: VmId,
    },
    /// An MMU error encountered while manipulating guest memory.
    Mmu(mmu::MmuError),
    /// The hypervisor refused to map a shared region (e.g. overlap).
    SharedRegionConflict {
        /// The guest-physical address that conflicted.
        gpa: Gpa,
    },
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::NoSuchVm { vm } => write!(f, "no such VM: {vm}"),
            HvError::InvalidEptpIndex { index } => {
                write!(f, "VMFUNC fault: EPTP list index {index} is not populated")
            }
            HvError::VmfuncFromRoot => write!(f, "VMFUNC executed in VMX root operation"),
            HvError::AlreadyInGuest => write!(f, "VMEntry while already in non-root operation"),
            HvError::NotInGuest => write!(f, "VMExit processed while in root operation"),
            HvError::EptpListNotConfigured { vm } => {
                write!(f, "EPTP list not configured for {vm}")
            }
            HvError::Mmu(e) => write!(f, "guest memory error: {e}"),
            HvError::SharedRegionConflict { gpa } => {
                write!(f, "shared region conflicts with existing mapping at {gpa}")
            }
        }
    }
}

impl std::error::Error for HvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HvError::Mmu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mmu::MmuError> for HvError {
    fn from(e: mmu::MmuError) -> HvError {
        HvError::Mmu(e)
    }
}
