//! VMExit reasons.

use std::fmt;

use mmu::addr::Gpa;

/// Why a guest trapped to the hypervisor.
///
/// Each reason carries the handler cost the hypervisor charges when
/// dispatching it (see [`crate::platform::Platform::vmexit`]); the costs
/// model KVM's handler paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitReason {
    /// Explicit `vmcall` with a hypercall number.
    Vmcall(u64),
    /// EPT violation at a guest-physical address.
    EptViolation(Gpa),
    /// External interrupt arrived while in guest mode.
    ExternalInterrupt,
    /// Guest executed `hlt` (idle / waiting for injection).
    Hlt,
    /// Port or MMIO access that must be emulated (virtual devices).
    IoAccess,
    /// Guest executed `int3`; HyperShell's helper process uses this to
    /// poll the hypervisor for redirected syscalls (§6, case study 2).
    Breakpoint,
    /// VMFUNC executed with an invalid EPTP index ("VM function fault").
    VmfuncFault,
    /// A CrossOver world-table-cache miss trapped for a software fill
    /// (§5.1: the WT/IWT caches are software-managed like a soft TLB).
    WorldTableCacheMiss,
}

impl ExitReason {
    /// Cycles of hypervisor handler work this exit reason costs, on top
    /// of the raw VMExit/VMEntry hardware transition prices.
    pub fn handler_cycles(self) -> u64 {
        match self {
            // Hypercall dispatch: decode + table lookup + handler body.
            ExitReason::Vmcall(_) => 1500,
            // EPT violations walk both paging structures.
            ExitReason::EptViolation(_) => 2200,
            ExitReason::ExternalInterrupt => 900,
            ExitReason::Hlt => 700,
            // Device emulation is the most expensive common exit.
            ExitReason::IoAccess => 2800,
            ExitReason::Breakpoint => 1100,
            ExitReason::VmfuncFault => 1000,
            // World-table walk + cache fill, kept small by design (§5.1).
            ExitReason::WorldTableCacheMiss => 1300,
        }
    }

    /// Instructions retired by the handler (for Table 7 style instruction
    /// accounting).
    pub fn handler_instructions(self) -> u64 {
        match self {
            ExitReason::Vmcall(_) => 230,
            ExitReason::EptViolation(_) => 610,
            ExitReason::ExternalInterrupt => 260,
            ExitReason::Hlt => 180,
            ExitReason::IoAccess => 750,
            ExitReason::Breakpoint => 300,
            ExitReason::VmfuncFault => 280,
            ExitReason::WorldTableCacheMiss => 340,
        }
    }
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Vmcall(nr) => write!(f, "vmcall({nr})"),
            ExitReason::EptViolation(gpa) => write!(f, "ept-violation({gpa})"),
            ExitReason::ExternalInterrupt => write!(f, "external-interrupt"),
            ExitReason::Hlt => write!(f, "hlt"),
            ExitReason::IoAccess => write!(f, "io-access"),
            ExitReason::Breakpoint => write!(f, "breakpoint"),
            ExitReason::VmfuncFault => write!(f, "vmfunc-fault"),
            ExitReason::WorldTableCacheMiss => write!(f, "wtc-miss"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_costs_are_positive() {
        let reasons = [
            ExitReason::Vmcall(0),
            ExitReason::EptViolation(Gpa(0)),
            ExitReason::ExternalInterrupt,
            ExitReason::Hlt,
            ExitReason::IoAccess,
            ExitReason::Breakpoint,
            ExitReason::VmfuncFault,
            ExitReason::WorldTableCacheMiss,
        ];
        for r in reasons {
            assert!(r.handler_cycles() > 0, "{r}");
            assert!(r.handler_instructions() > 0, "{r}");
        }
    }

    #[test]
    fn io_is_most_expensive_common_exit() {
        assert!(ExitReason::IoAccess.handler_cycles() > ExitReason::Vmcall(0).handler_cycles());
        assert!(ExitReason::IoAccess.handler_cycles() > ExitReason::Hlt.handler_cycles());
    }

    #[test]
    fn wtc_miss_is_cheap_by_design() {
        // §5.1: the software fill path is deliberately lightweight so rare
        // misses do not erase the benefit of intervention-free calls.
        assert!(
            ExitReason::WorldTableCacheMiss.handler_cycles()
                < ExitReason::EptViolation(Gpa(0)).handler_cycles()
        );
    }

    #[test]
    fn display_includes_payloads() {
        assert_eq!(ExitReason::Vmcall(7).to_string(), "vmcall(7)");
        assert!(ExitReason::EptViolation(Gpa(0x1000))
            .to_string()
            .contains("0x1000"));
    }
}
