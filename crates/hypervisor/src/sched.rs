//! Scheduling-latency model.
//!
//! The baseline systems depend on *another* VM or process being scheduled
//! to service a redirected call: Proxos enqueues the call on a host-process
//! descriptor "executed when the host process is scheduled" (§6), and the
//! paper notes Proxos' original evaluation saw up to 35X overhead "due to
//! the delay required to schedule the VM and the app to run" (§7.1.1).
//! CrossOver's synchronous world_call removes that dependency entirely.
//!
//! The model charges a wake-up latency that grows with the load (number of
//! competing runnable tasks) of the target VM. Benchmarks pin
//! `load = 0` to reproduce the paper's "rare context switches" setting and
//! sweep load for the §7.1.2 discussion of target-VM load sensitivity.

/// Scheduling-latency model for waking a process in a target VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedModel {
    /// Fixed cost of the scheduler pass that selects the woken task.
    pub wakeup_cycles: u64,
    /// Instructions retired by the wakeup path.
    pub wakeup_instructions: u64,
    /// Additional delay per competing runnable task (one quantum's worth
    /// of interference amortized).
    pub per_competitor_cycles: u64,
    /// Number of competing runnable tasks in the target VM.
    pub load: u32,
}

impl SchedModel {
    /// The paper's benchmark configuration: an otherwise idle target VM,
    /// so a wakeup is just a scheduler pass.
    pub fn idle() -> SchedModel {
        SchedModel {
            wakeup_cycles: 1900,
            wakeup_instructions: 120,
            per_competitor_cycles: 40_000,
            load: 0,
        }
    }

    /// A loaded target VM with `load` competing runnable tasks.
    pub fn loaded(load: u32) -> SchedModel {
        SchedModel {
            load,
            ..SchedModel::idle()
        }
    }

    /// Cycles charged for one wakeup of a process in the target VM.
    pub fn wakeup_latency_cycles(&self) -> u64 {
        self.wakeup_cycles + u64::from(self.load) * self.per_competitor_cycles
    }

    /// Instructions charged for one wakeup.
    pub fn wakeup_latency_instructions(&self) -> u64 {
        self.wakeup_instructions
    }
}

impl Default for SchedModel {
    fn default() -> SchedModel {
        SchedModel::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_wakeup_is_fixed_cost() {
        let m = SchedModel::idle();
        assert_eq!(m.wakeup_latency_cycles(), m.wakeup_cycles);
    }

    #[test]
    fn load_increases_latency_linearly() {
        let idle = SchedModel::idle().wakeup_latency_cycles();
        let l1 = SchedModel::loaded(1).wakeup_latency_cycles();
        let l4 = SchedModel::loaded(4).wakeup_latency_cycles();
        assert!(l1 > idle);
        assert_eq!(l4 - idle, 4 * (l1 - idle));
    }

    #[test]
    fn loaded_wakeup_dwarfs_a_vmfunc() {
        // The point of §7.1.2: under load, hypervisor-mediated calls
        // degrade while CrossOver's synchronous call does not.
        let l8 = SchedModel::loaded(8).wakeup_latency_cycles();
        assert!(l8 > 100 * 150); // >> VMFUNC's ~150 cycles
    }
}
