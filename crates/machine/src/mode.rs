//! Privilege state of the simulated CPU.
//!
//! Virtualized x86 exposes two orthogonal privilege axes: VMX *operation*
//! (root for the hypervisor side, non-root for guests) and the classic
//! protection *ring* (0 through 3). The paper calls every distinct
//! (operation, ring, address space) combination a **world**; this module
//! models the mode part of that triple.

use std::fmt;

/// VMX operation: whether the CPU currently runs host-side (root) or
/// guest-side (non-root) software.
///
/// # Example
///
/// ```
/// use xover_machine::mode::Operation;
/// assert!(Operation::Root.is_host());
/// assert!(!Operation::NonRoot.is_host());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operation {
    /// VMX root operation — the hypervisor and host OS/user run here.
    Root,
    /// VMX non-root operation — guest VMs run here.
    NonRoot,
}

impl Operation {
    /// Returns `true` for [`Operation::Root`].
    pub fn is_host(self) -> bool {
        matches!(self, Operation::Root)
    }

    /// Returns `true` for [`Operation::NonRoot`].
    pub fn is_guest(self) -> bool {
        matches!(self, Operation::NonRoot)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Root => write!(f, "host"),
            Operation::NonRoot => write!(f, "guest"),
        }
    }
}

/// x86 protection ring. Only ring 0 (kernel) and ring 3 (user) are used by
/// commodity stacks, but rings 1 and 2 exist for completeness (e.g. the
/// Xen-Blanket paths in Table 1 of the paper use a paravirtual "ring 1").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ring {
    /// Most privileged: kernels and the hypervisor.
    Ring0,
    /// Historically used by paravirtualized guest kernels.
    Ring1,
    /// Unused by commodity systems.
    Ring2,
    /// Least privileged: user programs.
    Ring3,
}

impl Ring {
    /// All rings, most privileged first.
    pub const ALL: [Ring; 4] = [Ring::Ring0, Ring::Ring1, Ring::Ring2, Ring::Ring3];

    /// Numeric privilege level (0 = most privileged).
    pub fn level(self) -> u8 {
        match self {
            Ring::Ring0 => 0,
            Ring::Ring1 => 1,
            Ring::Ring2 => 2,
            Ring::Ring3 => 3,
        }
    }

    /// Constructs a ring from its numeric level.
    ///
    /// Returns `None` if `level > 3`.
    pub fn from_level(level: u8) -> Option<Ring> {
        match level {
            0 => Some(Ring::Ring0),
            1 => Some(Ring::Ring1),
            2 => Some(Ring::Ring2),
            3 => Some(Ring::Ring3),
            _ => None,
        }
    }

    /// Whether this ring is at least as privileged as `other`
    /// (lower level = more privileged).
    pub fn at_least_as_privileged_as(self, other: Ring) -> bool {
        self.level() <= other.level()
    }

    /// `true` for ring 0.
    pub fn is_kernel(self) -> bool {
        self == Ring::Ring0
    }

    /// `true` for ring 3.
    pub fn is_user(self) -> bool {
        self == Ring::Ring3
    }
}

impl fmt::Display for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring-{}", self.level())
    }
}

/// The combined privilege mode of the CPU: VMX operation plus ring.
///
/// A `CpuMode` together with an address space identifies a *world* in the
/// paper's terminology. Two `CpuMode`s differing in either component require
/// a mode switch to move between.
///
/// # Example
///
/// ```
/// use xover_machine::mode::{CpuMode, Operation, Ring};
///
/// let guest_user = CpuMode::new(Operation::NonRoot, Ring::Ring3);
/// let guest_kernel = CpuMode::new(Operation::NonRoot, Ring::Ring0);
/// assert!(guest_user.crosses_ring(guest_kernel));
/// assert!(!guest_user.crosses_operation(guest_kernel));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuMode {
    operation: Operation,
    ring: Ring,
}

impl CpuMode {
    /// Guest user mode (`U_VM` in the paper's notation).
    pub const GUEST_USER: CpuMode = CpuMode {
        operation: Operation::NonRoot,
        ring: Ring::Ring3,
    };
    /// Guest kernel mode (`K_VM`).
    pub const GUEST_KERNEL: CpuMode = CpuMode {
        operation: Operation::NonRoot,
        ring: Ring::Ring0,
    };
    /// Host user mode (`U_host`).
    pub const HOST_USER: CpuMode = CpuMode {
        operation: Operation::Root,
        ring: Ring::Ring3,
    };
    /// Host kernel / hypervisor mode (`K_host`).
    pub const HOST_KERNEL: CpuMode = CpuMode {
        operation: Operation::Root,
        ring: Ring::Ring0,
    };

    /// Creates a mode from its two components.
    pub fn new(operation: Operation, ring: Ring) -> CpuMode {
        CpuMode { operation, ring }
    }

    /// The VMX operation component.
    pub fn operation(self) -> Operation {
        self.operation
    }

    /// The ring component.
    pub fn ring(self) -> Ring {
        self.ring
    }

    /// Whether moving from `self` to `other` changes the ring level.
    pub fn crosses_ring(self, other: CpuMode) -> bool {
        self.ring != other.ring
    }

    /// Whether moving from `self` to `other` changes host/guest operation
    /// (a "H/G switch" in Table 3 of the paper).
    pub fn crosses_operation(self, other: CpuMode) -> bool {
        self.operation != other.operation
    }

    /// Whether any mode component differs.
    pub fn crosses_any(self, other: CpuMode) -> bool {
        self != other
    }

    /// `true` if this is the hypervisor's mode (host ring 0).
    pub fn is_hypervisor(self) -> bool {
        self == CpuMode::HOST_KERNEL
    }
}

impl Default for CpuMode {
    /// CPUs come up running guest user code in this simulation, since all
    /// workloads in the paper start in a guest application.
    fn default() -> CpuMode {
        CpuMode::GUEST_USER
    }
}

impl fmt::Display for CpuMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.operation, self.ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_levels_round_trip() {
        for ring in Ring::ALL {
            assert_eq!(Ring::from_level(ring.level()), Some(ring));
        }
        assert_eq!(Ring::from_level(4), None);
        assert_eq!(Ring::from_level(255), None);
    }

    #[test]
    fn ring_privilege_ordering() {
        assert!(Ring::Ring0.at_least_as_privileged_as(Ring::Ring3));
        assert!(Ring::Ring0.at_least_as_privileged_as(Ring::Ring0));
        assert!(!Ring::Ring3.at_least_as_privileged_as(Ring::Ring0));
        assert!(Ring::Ring1.at_least_as_privileged_as(Ring::Ring2));
    }

    #[test]
    fn kernel_and_user_predicates() {
        assert!(Ring::Ring0.is_kernel());
        assert!(!Ring::Ring0.is_user());
        assert!(Ring::Ring3.is_user());
        assert!(!Ring::Ring1.is_kernel());
    }

    #[test]
    fn operation_predicates() {
        assert!(Operation::Root.is_host());
        assert!(Operation::NonRoot.is_guest());
        assert!(!Operation::Root.is_guest());
    }

    #[test]
    fn mode_crossing_classification() {
        let gu = CpuMode::GUEST_USER;
        let gk = CpuMode::GUEST_KERNEL;
        let hu = CpuMode::HOST_USER;
        let hk = CpuMode::HOST_KERNEL;

        assert!(gu.crosses_ring(gk));
        assert!(!gu.crosses_operation(gk));

        assert!(gu.crosses_operation(hu));
        assert!(!gu.crosses_ring(hu));

        assert!(gu.crosses_ring(hk));
        assert!(gu.crosses_operation(hk));

        assert!(!gu.crosses_any(gu));
        assert!(gu.crosses_any(hk));
    }

    #[test]
    fn hypervisor_mode_is_host_ring0() {
        assert!(CpuMode::HOST_KERNEL.is_hypervisor());
        assert!(!CpuMode::HOST_USER.is_hypervisor());
        assert!(!CpuMode::GUEST_KERNEL.is_hypervisor());
    }

    #[test]
    fn default_mode_is_guest_user() {
        assert_eq!(CpuMode::default(), CpuMode::GUEST_USER);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CpuMode::GUEST_USER.to_string(), "guest/ring-3");
        assert_eq!(CpuMode::HOST_KERNEL.to_string(), "host/ring-0");
    }
}
