//! A tiny deterministic PRNG for tests and benchmarks.
//!
//! The workspace builds in air-gapped environments, so it cannot depend
//! on the `rand` or `proptest` crates. This SplitMix64 generator is the
//! replacement: seeded explicitly, reproducible across runs and
//! platforms, and good enough for generating randomized test schedules
//! and benchmark workloads (it passes BigCrush as the seeding stage of
//! xoshiro; we only need uncorrelated streams).

/// SplitMix64: one multiply-xorshift pipeline per output.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift range reduction (Lemire); bias is < 2^-64 * bound,
        // irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Probability-`p` boolean (`p` clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Zipf(s) sampler over ranks `0..n` via a precomputed CDF.
///
/// Rank 0 is the most popular element; rank `k` has weight
/// `1 / (k + 1)^s`. Benchmarks use it to draw skewed callee
/// distributions (a few hot service worlds, a long cold tail), the
/// shape the switchless controller is designed around. Sampling is one
/// uniform draw plus a binary search — O(log n) and allocation-free
/// after construction.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[k]` = P(rank <= k); the last entry is 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF for `n` ranks with exponent `s`.
    ///
    /// `s == 0.0` degenerates to the uniform distribution; `s` around
    /// 1.0 is the classic Zipf shape.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "need at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        cdf[n - 1] = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank (sampling always returns 0).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `[0, n)` using `rng` for the uniform variate.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_is_inclusive_exclusive() {
        let mut r = SplitMix64::new(1);
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
            seen_lo |= v == 5;
        }
        assert!(seen_lo, "lower bound should be reachable");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(16, 1.0);
        let mut r = SplitMix64::new(0xD15C);
        let mut counts = [0u64; 16];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        // Rank 0 carries weight 1 / H_16 ~ 0.296; rank 15 ~ 0.0185.
        assert!(counts[0] > 25_000, "rank 0 undersampled: {}", counts[0]);
        assert!(counts[0] > 10 * counts[15], "tail not suppressed");
        // Monotone-ish head: the first rank strictly dominates the next.
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(8, 0.0);
        let mut r = SplitMix64::new(9);
        let mut counts = [0u64; 8];
        for _ in 0..80_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            // Each rank expects 10_000; allow a generous 15% band.
            assert!((8_500..=11_500).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let z = Zipf::new(1, 1.2);
        let mut r = SplitMix64::new(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_is_deterministic() {
        let z = Zipf::new(32, 0.9);
        let mut a = SplitMix64::new(77);
        let mut b = SplitMix64::new(77);
        for _ in 0..1_000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
