//! A tiny deterministic PRNG for tests and benchmarks.
//!
//! The workspace builds in air-gapped environments, so it cannot depend
//! on the `rand` or `proptest` crates. This SplitMix64 generator is the
//! replacement: seeded explicitly, reproducible across runs and
//! platforms, and good enough for generating randomized test schedules
//! and benchmark workloads (it passes BigCrush as the seeding stage of
//! xoshiro; we only need uncorrelated streams).

/// SplitMix64: one multiply-xorshift pipeline per output.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift range reduction (Lemire); bias is < 2^-64 * bound,
        // irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Probability-`p` boolean (`p` clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_is_inclusive_exclusive() {
        let mut r = SplitMix64::new(1);
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
            seen_lo |= v == 5;
        }
        assert!(seen_lo, "lower bound should be reachable");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }
}
