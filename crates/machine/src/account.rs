//! Cycle and instruction accounting.
//!
//! A [`Meter`] accumulates the cycles and instructions charged by
//! transitions (priced by the [`crate::cost::CostModel`]) and by explicit
//! *work* items (syscall bodies, hypervisor handlers, crypto, TCP stacks —
//! anything that is software running between transitions). Benchmarks read
//! the meter before and after an operation and report the delta, exactly as
//! lmbench reads the TSC.

use std::fmt;

use crate::cost::{Cycles, Frequency};

/// A cycle + instruction meter.
///
/// # Example
///
/// ```
/// use xover_machine::account::Meter;
///
/// let mut meter = Meter::new();
/// meter.charge_work(786, 640, "null syscall dispatch");
/// let snap = meter.snapshot();
/// meter.charge_work(100, 10, "more");
/// let delta = meter.since(snap);
/// assert_eq!(delta.cycles.0, 100);
/// assert_eq!(delta.instructions, 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Meter {
    cycles: u64,
    instructions: u64,
    work_items: u64,
}

/// A point-in-time reading of a [`Meter`], used to compute deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    cycles: u64,
    instructions: u64,
}

/// The difference between two meter readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Delta {
    /// Cycles elapsed.
    pub cycles: Cycles,
    /// Instructions retired.
    pub instructions: u64,
}

impl Delta {
    /// Wall time of this delta in microseconds at `freq`.
    pub fn micros(&self, freq: Frequency) -> f64 {
        self.cycles.as_micros(freq)
    }

    /// Wall time of this delta in milliseconds at `freq`.
    pub fn millis(&self, freq: Frequency) -> f64 {
        self.cycles.as_millis(freq)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {} instructions", self.cycles, self.instructions)
    }
}

impl Meter {
    /// Creates a zeroed meter.
    pub fn new() -> Meter {
        Meter::default()
    }

    /// Total cycles charged so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total instructions charged so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of distinct work items charged (diagnostic).
    pub fn work_items(&self) -> u64 {
        self.work_items
    }

    /// Charges raw cycles and instructions for a named piece of software
    /// work. The label is for debuggability only and is not stored.
    pub fn charge_work(&mut self, cycles: u64, instructions: u64, _label: &str) {
        self.cycles += cycles;
        self.instructions += instructions;
        self.work_items += 1;
    }

    /// Charges a transition's price (called by [`crate::cpu::Cpu`]).
    pub fn charge_transition(&mut self, cycles: u64, instructions: u64) {
        self.cycles += cycles;
        self.instructions += instructions;
    }

    /// Takes a snapshot for later delta computation.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cycles: self.cycles,
            instructions: self.instructions,
        }
    }

    /// Computes the delta since `snapshot`.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` was taken from a meter with larger totals (i.e.
    /// from a different or reset meter).
    pub fn since(&self, snapshot: Snapshot) -> Delta {
        assert!(
            self.cycles >= snapshot.cycles && self.instructions >= snapshot.instructions,
            "snapshot does not precede this meter state"
        );
        Delta {
            cycles: Cycles(self.cycles - snapshot.cycles),
            instructions: self.instructions - snapshot.instructions,
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Meter::default();
    }

    /// Absorbs another meter's totals into this one.
    ///
    /// Concurrent runtimes give each OS-thread worker a private meter
    /// (metering stays lock-free on the hot path) and merge them into a
    /// system-wide meter when the workers are joined.
    pub fn absorb(&mut self, other: &Meter) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.work_items += other.work_items;
    }
}

impl fmt::Display for Meter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} instructions",
            self.cycles, self.instructions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Frequency;

    #[test]
    fn charges_accumulate() {
        let mut m = Meter::new();
        m.charge_work(100, 10, "a");
        m.charge_transition(50, 5);
        assert_eq!(m.cycles(), 150);
        assert_eq!(m.instructions(), 15);
        assert_eq!(m.work_items(), 1);
    }

    #[test]
    fn snapshot_delta() {
        let mut m = Meter::new();
        m.charge_work(1000, 100, "setup");
        let snap = m.snapshot();
        m.charge_work(986, 640, "null syscall");
        let d = m.since(snap);
        assert_eq!(d.cycles.0, 986);
        assert_eq!(d.instructions, 640);
        // 986 cycles at 3.4 GHz is the paper's 0.29 us native null syscall.
        assert!((d.micros(Frequency::GHZ_3_4) - 0.29).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "snapshot does not precede")]
    fn stale_snapshot_panics() {
        let mut m = Meter::new();
        m.charge_work(10, 1, "x");
        let snap = m.snapshot();
        m.reset();
        let _ = m.since(snap);
    }

    #[test]
    fn reset_zeroes() {
        let mut m = Meter::new();
        m.charge_work(10, 1, "x");
        m.reset();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.instructions(), 0);
        assert_eq!(m.work_items(), 0);
    }

    #[test]
    fn absorb_merges_worker_meters() {
        let mut total = Meter::new();
        let mut w1 = Meter::new();
        let mut w2 = Meter::new();
        w1.charge_work(100, 10, "worker 1");
        w2.charge_work(200, 20, "worker 2");
        w2.charge_transition(5, 1);
        total.absorb(&w1);
        total.absorb(&w2);
        assert_eq!(total.cycles(), 305);
        assert_eq!(total.instructions(), 31);
        assert_eq!(total.work_items(), 2);
    }

    #[test]
    fn delta_display_nonempty() {
        let d = Delta::default();
        assert!(!d.to_string().is_empty());
    }
}
