//! Simulated CPU substrate for the CrossOver reproduction.
//!
//! The ISCA'15 CrossOver paper measures systems whose performance is
//! dominated by *world transitions*: syscalls, VMExits/VMEntries, VMFUNC
//! invocations, context switches and the proposed `world_call`. This crate
//! provides the hardware model those transitions run on:
//!
//! * [`mode`] — privilege state: host/guest (VMX root/non-root) operation and
//!   protection rings, combined into a [`mode::CpuMode`].
//! * [`cost`] — a calibrated [`cost::CostModel`] mapping each
//!   [`trace::TransitionKind`] to cycles and instructions, with a Haswell
//!   i7-4770 @ 3.4 GHz preset matching the paper's evaluation platform.
//! * [`account`] — cycle/instruction meters ([`account::Meter`]) that the
//!   rest of the stack charges work against.
//! * [`trace`] — an event trace of every transition, from which ring-crossing
//!   counts (Table 1, Figure 2) are derived rather than assumed.
//! * [`cpu`] — the virtual CPU: register file, control registers, current
//!   mode, and checked mode-transition helpers.
//!
//! # Example
//!
//! ```
//! use xover_machine::cost::CostModel;
//! use xover_machine::cpu::Cpu;
//! use xover_machine::mode::{CpuMode, Operation, Ring};
//! use xover_machine::trace::TransitionKind;
//!
//! let mut cpu = Cpu::new(0, CostModel::haswell_3_4ghz());
//! assert_eq!(cpu.mode(), CpuMode::new(Operation::NonRoot, Ring::Ring3));
//! // A syscall enters guest ring 0 and charges the calibrated cost.
//! cpu.transition(TransitionKind::SyscallEnter,
//!                CpuMode::new(Operation::NonRoot, Ring::Ring0));
//! assert!(cpu.meter().cycles() > 0);
//! ```

pub mod account;
pub mod cost;
pub mod cpu;
pub mod fault;
pub mod mode;
pub mod rng;
pub mod trace;

pub use account::Meter;
pub use cost::{CostModel, Cycles, Frequency};
pub use cpu::Cpu;
pub use mode::{CpuMode, Operation, Ring};
pub use trace::{Event, Trace, TransitionKind};
