//! The virtual CPU.
//!
//! A [`Cpu`] bundles the privilege mode, a minimal register file, the
//! control state that world switches manipulate (CR3, the current EPTP, the
//! IDT base, the interrupt flag) and the accounting machinery ([`Meter`] and
//! [`Trace`]). Higher layers — the hypervisor, guest OSes and CrossOver
//! itself — perform all their transitions through this type so that every
//! ring crossing is priced and traced.

use std::fmt;

use crate::account::Meter;
use crate::cost::CostModel;
use crate::mode::{CpuMode, Ring};
use crate::trace::{Trace, TransitionKind};

/// Errors raised by privileged operations on the [`Cpu`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// The operation requires ring 0 but the CPU is in a less privileged
    /// ring.
    PrivilegeViolation {
        /// What was attempted.
        operation: &'static str,
        /// The ring the CPU was in.
        ring: Ring,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::PrivilegeViolation { operation, ring } => {
                write!(f, "{operation} attempted from {ring}, requires ring-0")
            }
        }
    }
}

impl std::error::Error for CpuError {}

/// General-purpose registers used for call/return values and the
/// `world_call` calling convention (the paper passes the peer WID in a
/// register).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Registers {
    /// Return value / syscall number.
    pub rax: u64,
    /// First argument.
    pub rdi: u64,
    /// Second argument.
    pub rsi: u64,
    /// Third argument.
    pub rdx: u64,
    /// Stack pointer.
    pub rsp: u64,
    /// Instruction pointer.
    pub rip: u64,
}

/// The simulated CPU.
///
/// # Example
///
/// ```
/// use xover_machine::cost::CostModel;
/// use xover_machine::cpu::Cpu;
/// use xover_machine::mode::CpuMode;
/// use xover_machine::trace::TransitionKind;
///
/// let mut cpu = Cpu::new(0, CostModel::haswell_3_4ghz());
/// cpu.transition(TransitionKind::SyscallEnter, CpuMode::GUEST_KERNEL);
/// cpu.write_cr3(0x4000)?;
/// assert_eq!(cpu.cr3(), 0x4000);
/// # Ok::<(), xover_machine::cpu::CpuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    id: u32,
    mode: CpuMode,
    regs: Registers,
    cr3: u64,
    eptp: u64,
    eptp_index: u16,
    idt_base: u64,
    interrupts_enabled: bool,
    cost: CostModel,
    meter: Meter,
    trace: Trace,
}

impl Cpu {
    /// Creates a CPU with the given id and cost model, starting in guest
    /// user mode with a full event trace.
    pub fn new(id: u32, cost: CostModel) -> Cpu {
        Cpu {
            id,
            mode: CpuMode::GUEST_USER,
            regs: Registers::default(),
            cr3: 0,
            eptp: 0,
            eptp_index: 0,
            idt_base: 0,
            interrupts_enabled: true,
            cost,
            meter: Meter::new(),
            trace: Trace::new(),
        }
    }

    /// Like [`Cpu::new`] but with a statistics-only trace, for long
    /// benchmark runs.
    pub fn new_counting_only(id: u32, cost: CostModel) -> Cpu {
        let mut cpu = Cpu::new(id, cost);
        cpu.trace = Trace::counting_only();
        cpu
    }

    /// This CPU's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current privilege mode.
    pub fn mode(&self) -> CpuMode {
        self.mode
    }

    /// The register file.
    pub fn regs(&self) -> &Registers {
        &self.regs
    }

    /// Mutable access to the register file.
    pub fn regs_mut(&mut self) -> &mut Registers {
        &mut self.regs
    }

    /// Current CR3 (guest page-table root, a guest-physical address).
    pub fn cr3(&self) -> u64 {
        self.cr3
    }

    /// Current EPT pointer (a host-physical address).
    pub fn eptp(&self) -> u64 {
        self.eptp
    }

    /// Index of the current EPTP within the VM's EPTP list.
    pub fn eptp_index(&self) -> u16 {
        self.eptp_index
    }

    /// Current IDT base address.
    pub fn idt_base(&self) -> u64 {
        self.idt_base
    }

    /// Whether maskable interrupts are enabled.
    pub fn interrupts_enabled(&self) -> bool {
        self.interrupts_enabled
    }

    /// The cost model pricing this CPU's transitions.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The accumulated meter.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Mutable meter access, for charging software work.
    pub fn meter_mut(&mut self) -> &mut Meter {
        &mut self.meter
    }

    /// The transition trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Clears the transition trace (meter is unaffected).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Performs a transition of `kind` into `to` mode, charging its price
    /// and recording it. Returns the new mode.
    ///
    /// This is the single funnel through which all mode changes flow; it
    /// performs no policy checks — callers (hypervisor, OS, CrossOver
    /// hardware logic) enforce who may transition where.
    pub fn transition(&mut self, kind: TransitionKind, to: CpuMode) -> CpuMode {
        let price = self.cost.price(kind);
        self.meter
            .charge_transition(price.cycles, price.instructions);
        self.trace
            .record(kind, self.mode, to, price.cycles, price.instructions);
        self.mode = to;
        to
    }

    /// Records a priced operation that does not change the privilege mode
    /// (CR3 writes, IDT swaps, cache fills, ...).
    pub fn touch(&mut self, kind: TransitionKind) {
        let mode = self.mode;
        self.transition(kind, mode);
    }

    /// Charges arbitrary software work (syscall bodies, handlers, crypto).
    pub fn charge_work(&mut self, cycles: u64, instructions: u64, label: &str) {
        self.meter.charge_work(cycles, instructions, label);
    }

    /// Writes CR3, switching the guest address space.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::PrivilegeViolation`] unless the CPU is in ring 0:
    /// this restriction is why the paper's VMFUNC-based cross-VM *user*
    /// calls must first trap into their own guest kernel (§4.3).
    pub fn write_cr3(&mut self, value: u64) -> Result<(), CpuError> {
        if !self.mode.ring().is_kernel() {
            return Err(CpuError::PrivilegeViolation {
                operation: "mov cr3",
                ring: self.mode.ring(),
            });
        }
        self.touch(TransitionKind::Cr3Write);
        self.cr3 = value;
        Ok(())
    }

    /// Loads a new IDT base (`lidt`).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::PrivilegeViolation`] unless in ring 0.
    pub fn write_idt(&mut self, base: u64) -> Result<(), CpuError> {
        if !self.mode.ring().is_kernel() {
            return Err(CpuError::PrivilegeViolation {
                operation: "lidt",
                ring: self.mode.ring(),
            });
        }
        self.touch(TransitionKind::IdtSwap);
        self.idt_base = base;
        Ok(())
    }

    /// Disables or enables maskable interrupts (`cli`/`sti`).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::PrivilegeViolation`] unless in ring 0.
    pub fn set_interrupts(&mut self, enabled: bool) -> Result<(), CpuError> {
        if !self.mode.ring().is_kernel() {
            return Err(CpuError::PrivilegeViolation {
                operation: if enabled { "sti" } else { "cli" },
                ring: self.mode.ring(),
            });
        }
        self.touch(TransitionKind::InterruptMask);
        self.interrupts_enabled = enabled;
        Ok(())
    }

    /// Installs a new EPT pointer. Called by the VMFUNC/world_call hardware
    /// logic and by the hypervisor on VMEntry; *not* privilege-checked here
    /// because VMFUNC is architecturally callable from any ring once the
    /// hypervisor has enabled it (§4.1).
    pub fn load_eptp(&mut self, index: u16, eptp: u64) {
        self.eptp_index = index;
        self.eptp = eptp;
    }

    /// Directly sets CR3 without a privilege check or charge — used by the
    /// hypervisor when restoring a world's context on VMEntry and by the
    /// `world_call` hardware logic (the hardware does not execute `mov cr3`;
    /// the switch cost is folded into the `world_call` price).
    pub fn force_cr3(&mut self, value: u64) {
        self.cr3 = value;
    }

    /// Directly sets the privilege mode without a transition record — used
    /// only when *constructing* initial vCPU state, never on a running path.
    pub fn force_mode(&mut self, mode: CpuMode) {
        self.mode = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::mode::{CpuMode, Operation, Ring};

    fn cpu() -> Cpu {
        Cpu::new(0, CostModel::haswell_3_4ghz())
    }

    #[test]
    fn transition_charges_and_records() {
        let mut c = cpu();
        c.transition(TransitionKind::SyscallEnter, CpuMode::GUEST_KERNEL);
        assert_eq!(c.mode(), CpuMode::GUEST_KERNEL);
        let price = c.cost_model().price(TransitionKind::SyscallEnter);
        assert_eq!(c.meter().cycles(), price.cycles);
        assert_eq!(c.trace().len(), 1);
        assert_eq!(c.trace().ring_crossings(), 1);
    }

    #[test]
    fn cr3_write_requires_ring0() {
        let mut c = cpu();
        // Guest user: must fail.
        let err = c.write_cr3(0x1000).unwrap_err();
        assert!(matches!(err, CpuError::PrivilegeViolation { .. }));
        assert_eq!(c.cr3(), 0);

        c.transition(TransitionKind::SyscallEnter, CpuMode::GUEST_KERNEL);
        c.write_cr3(0x1000).unwrap();
        assert_eq!(c.cr3(), 0x1000);
    }

    #[test]
    fn idt_and_interrupt_ops_require_ring0() {
        let mut c = cpu();
        assert!(c.write_idt(0x2000).is_err());
        assert!(c.set_interrupts(false).is_err());
        c.force_mode(CpuMode::GUEST_KERNEL);
        c.write_idt(0x2000).unwrap();
        c.set_interrupts(false).unwrap();
        assert_eq!(c.idt_base(), 0x2000);
        assert!(!c.interrupts_enabled());
    }

    #[test]
    fn ring1_cannot_write_cr3() {
        let mut c = cpu();
        c.force_mode(CpuMode::new(Operation::NonRoot, Ring::Ring1));
        assert!(c.write_cr3(0x3000).is_err());
    }

    #[test]
    fn load_eptp_unprivileged() {
        let mut c = cpu();
        // VMFUNC logic may run in guest user mode.
        c.load_eptp(2, 0xdead_0000);
        assert_eq!(c.eptp_index(), 2);
        assert_eq!(c.eptp(), 0xdead_0000);
    }

    #[test]
    fn touch_does_not_change_mode() {
        let mut c = cpu();
        c.force_mode(CpuMode::GUEST_KERNEL);
        let before = c.mode();
        c.touch(TransitionKind::WtcFill);
        assert_eq!(c.mode(), before);
        assert_eq!(c.trace().count(TransitionKind::WtcFill), 1);
        assert_eq!(c.trace().ring_crossings(), 0);
    }

    #[test]
    fn charge_work_reaches_meter() {
        let mut c = cpu();
        c.charge_work(786, 640, "syscall body");
        assert_eq!(c.meter().cycles(), 786);
        assert_eq!(c.meter().instructions(), 640);
        // Work is not a transition.
        assert!(c.trace().is_empty());
    }

    #[test]
    fn privilege_error_display() {
        let err = CpuError::PrivilegeViolation {
            operation: "mov cr3",
            ring: Ring::Ring3,
        };
        assert_eq!(
            err.to_string(),
            "mov cr3 attempted from ring-3, requires ring-0"
        );
    }

    #[test]
    fn counting_only_cpu_keeps_stats() {
        let mut c = Cpu::new_counting_only(1, CostModel::uniform(10));
        c.transition(TransitionKind::Vmfunc, CpuMode::GUEST_USER);
        assert!(c.trace().events().is_empty());
        assert_eq!(c.trace().count(TransitionKind::Vmfunc), 1);
    }
}
