//! Calibrated cost model for world transitions.
//!
//! Every transition the simulated CPU performs is priced in **cycles** and
//! **instructions** by a [`CostModel`]. The default preset,
//! [`CostModel::haswell_3_4ghz`], is calibrated to the paper's evaluation
//! platform (Intel Core i7-4770 @ 3.40 GHz) using published order-of-
//! magnitude figures: a VMExit/VMEntry round trip costs on the order of a
//! microsecond once handler work is included, VMFUNC costs ~150 cycles, a
//! syscall entry ~100 cycles. The reproduction does not claim cycle accuracy
//! — it claims that because call *paths* are executed and each step priced,
//! the relative results (latency reductions, overhead factors, crossover
//! points) match the paper's shape.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::trace::TransitionKind;

/// A cycle count on the simulated CPU.
///
/// # Example
///
/// ```
/// use xover_machine::cost::{Cycles, Frequency};
/// let c = Cycles(3400);
/// assert!((c.as_micros(Frequency::GHZ_3_4) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Converts to microseconds at the given clock frequency.
    pub fn as_micros(self, freq: Frequency) -> f64 {
        self.0 as f64 / freq.cycles_per_micro()
    }

    /// Converts to milliseconds at the given clock frequency.
    pub fn as_millis(self, freq: Frequency) -> f64 {
        self.as_micros(freq) / 1000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A CPU clock frequency, used to convert cycle counts to wall time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// The paper's platform: 3.40 GHz (Intel Core i7-4770, Haswell).
    pub const GHZ_3_4: Frequency = Frequency { hz: 3.4e9 };

    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn from_hz(hz: f64) -> Frequency {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        Frequency { hz }
    }

    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_ghz(ghz: f64) -> Frequency {
        Frequency::from_hz(ghz * 1e9)
    }

    /// The frequency in hertz.
    pub fn hz(self) -> f64 {
        self.hz
    }

    /// Cycles elapsing per microsecond.
    pub fn cycles_per_micro(self) -> f64 {
        self.hz / 1e6
    }
}

impl Default for Frequency {
    fn default() -> Frequency {
        Frequency::GHZ_3_4
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.hz / 1e9)
    }
}

/// The price of one transition: cycles spent and instructions retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Price {
    /// Cycles charged for the transition.
    pub cycles: u64,
    /// Instructions retired performing the transition.
    pub instructions: u64,
}

impl Price {
    /// Creates a new price.
    pub fn new(cycles: u64, instructions: u64) -> Price {
        Price {
            cycles,
            instructions,
        }
    }
}

/// Maps each [`TransitionKind`] to its [`Price`], plus the clock frequency
/// used to convert totals to wall time.
///
/// Construct via [`CostModel::haswell_3_4ghz`] (the paper's platform) or
/// [`CostModel::uniform`] (every transition costs the same — useful in tests
/// where only *counts* matter), then adjust individual entries with
/// [`CostModel::set`].
///
/// # Example
///
/// ```
/// use xover_machine::cost::{CostModel, Price};
/// use xover_machine::trace::TransitionKind;
///
/// let mut model = CostModel::haswell_3_4ghz();
/// model.set(TransitionKind::Vmfunc, Price::new(134, 1));
/// assert_eq!(model.price(TransitionKind::Vmfunc).cycles, 134);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    frequency: Frequency,
    prices: [Price; TransitionKind::COUNT],
}

impl CostModel {
    /// Calibration preset for the paper's Haswell i7-4770 @ 3.4 GHz.
    ///
    /// The individual constants below were chosen so that executing the
    /// paper's call paths reproduces its headline numbers:
    /// native NULL syscall ≈ 0.29 µs, VMFUNC-optimized cross-VM syscall
    /// ≈ 0.42 µs, hypervisor-bounced redirection ≈ 2.5–3.5 µs.
    pub fn haswell_3_4ghz() -> CostModel {
        let mut m = CostModel {
            frequency: Frequency::GHZ_3_4,
            prices: [Price::default(); TransitionKind::COUNT],
        };
        use TransitionKind::*;
        // Ring crossings within one VM / the host.
        m.set(SyscallEnter, Price::new(100, 12));
        m.set(SyscallExit, Price::new(100, 10));
        // VMX transitions. The raw hardware VMExit is ~800 cycles on
        // Haswell; the *handler* work is charged separately by the
        // hypervisor crate.
        m.set(VmExit, Price::new(1000, 60));
        m.set(VmEntry, Price::new(700, 40));
        // VMFUNC(0): EPTP switch without VMExit, ~134-170 cycles measured
        // on Haswell; we use the middle of the range.
        m.set(Vmfunc, Price::new(140, 1));
        // Privileged register writes on the cross-VM syscall path (Fig. 4).
        m.set(Cr3Write, Price::new(45, 1));
        m.set(IdtSwap, Price::new(20, 1));
        m.set(InterruptMask, Price::new(5, 1));
        // Virtual interrupt injection (hypervisor -> guest).
        m.set(InterruptInject, Price::new(600, 35));
        // Guest process context switch including scheduler pass; this
        // dominates pipe latency (lmbench pipe ≈ 3.3 µs native includes two
        // switches).
        m.set(ContextSwitch, Price::new(4500, 320));
        m.set(HostContextSwitch, Price::new(3100, 280));
        // Full CrossOver world_call: EPTP + CR3 + mode + PC switch in one
        // instruction; slightly above VMFUNC because it does strictly more.
        m.set(WorldCall, Price::new(200, 1));
        m.set(WorldReturn, Price::new(200, 1));
        // World-table-cache management (VMFUNC index 0x2) and the exception
        // path on a cache miss (trap to hypervisor + table walk + fill).
        m.set(WtcFill, Price::new(250, 8));
        m.set(WtcMissFault, Price::new(2600, 180));
        // Cross-core signalling, used by the rejected asynchronous designs.
        m.set(IpiSend, Price::new(1100, 20));
        m.set(IpiReceive, Price::new(1600, 45));
        m
    }

    /// A model where every transition costs exactly `cycles` cycles and one
    /// instruction. Useful for tests that assert on counts rather than
    /// calibrated magnitudes.
    pub fn uniform(cycles: u64) -> CostModel {
        CostModel {
            frequency: Frequency::GHZ_3_4,
            prices: [Price::new(cycles, 1); TransitionKind::COUNT],
        }
    }

    /// The clock frequency of the modeled CPU.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Replaces the clock frequency.
    pub fn set_frequency(&mut self, frequency: Frequency) -> &mut CostModel {
        self.frequency = frequency;
        self
    }

    /// The price of one transition of kind `kind`.
    pub fn price(&self, kind: TransitionKind) -> Price {
        self.prices[kind.index()]
    }

    /// Overrides the price of `kind`.
    pub fn set(&mut self, kind: TransitionKind, price: Price) -> &mut CostModel {
        self.prices[kind.index()] = price;
        self
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::haswell_3_4ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_micros_at_3_4ghz() {
        assert!((Cycles(3400).as_micros(Frequency::GHZ_3_4) - 1.0).abs() < 1e-12);
        assert!((Cycles(1700).as_micros(Frequency::GHZ_3_4) - 0.5).abs() < 1e-12);
        assert!((Cycles(3_400_000).as_millis(Frequency::GHZ_3_4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(10) - Cycles(4), Cycles(6));
        assert_eq!(Cycles(3).saturating_sub(Cycles(5)), Cycles::ZERO);
        let mut c = Cycles(1);
        c += Cycles(2);
        assert_eq!(c, Cycles(3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_hz(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nan_frequency_rejected() {
        let _ = Frequency::from_hz(f64::NAN);
    }

    #[test]
    fn haswell_preset_relative_magnitudes() {
        let m = CostModel::haswell_3_4ghz();
        use TransitionKind::*;
        // VMFUNC must be far cheaper than a VMExit round trip: that is the
        // entire premise of the paper.
        let vmfunc = m.price(Vmfunc).cycles;
        let exit_entry = m.price(VmExit).cycles + m.price(VmEntry).cycles;
        assert!(vmfunc * 5 < exit_entry);
        // world_call does strictly more than VMFUNC and must not be cheaper.
        assert!(m.price(WorldCall).cycles >= vmfunc);
        // A WTC miss fault (trap to hypervisor) dwarfs a hit-path call.
        assert!(m.price(WtcMissFault).cycles > 10 * m.price(WorldCall).cycles);
        // Syscall entry is ~100 cycles, far below a VMExit.
        assert!(m.price(SyscallEnter).cycles < m.price(VmExit).cycles / 5);
    }

    #[test]
    fn uniform_model_prices_everything_equally() {
        let m = CostModel::uniform(7);
        for kind in TransitionKind::ALL {
            assert_eq!(m.price(kind), Price::new(7, 1));
        }
    }

    #[test]
    fn set_overrides_price() {
        let mut m = CostModel::haswell_3_4ghz();
        m.set(TransitionKind::Vmfunc, Price::new(42, 2));
        assert_eq!(m.price(TransitionKind::Vmfunc), Price::new(42, 2));
        // Other entries untouched.
        assert_eq!(
            m.price(TransitionKind::SyscallEnter),
            CostModel::haswell_3_4ghz().price(TransitionKind::SyscallEnter)
        );
    }

    #[test]
    fn frequency_display() {
        assert_eq!(Frequency::GHZ_3_4.to_string(), "3.40 GHz");
    }
}
