//! Deterministic, seeded fault-injection plane.
//!
//! Robustness claims are only testable if failures are *reproducible*:
//! a fault schedule must be a value, not a coin flip at runtime. A
//! [`FaultPlan`] is exactly that — a set of `(virtual-time, site, kind)`
//! events, either laid out explicitly or generated from a seed by the
//! in-tree [`SplitMix64`] generator. Layers that can fail consult the
//! plan at named [`FaultSite`]s with their own virtual clock (their
//! meter's cycle count); an event whose timestamp has passed *fires*
//! exactly once and the layer then misbehaves in the prescribed way —
//! a worker stalls or crashes, an IPI is eaten or delayed, a channel
//! slot reads back corrupt, an invalidation broadcast is dropped, a
//! world-table lookup transiently vanishes.
//!
//! Two properties the rest of the stack builds on:
//!
//! * **An empty plan is a strict no-op.** [`FaultPlan::fire`] charges
//!   nothing, mutates nothing observable and returns `None`, so a
//!   runtime wired to an empty plan is cycle-for-cycle identical to one
//!   wired to no plan at all (the parity tests assert this).
//! * **Determinism in virtual time.** Event times and kinds are fixed
//!   at construction. On a single consumer the full fault schedule is
//!   reproducible bit for bit; with several concurrent consumers the
//!   *schedule* is fixed but which thread draws a given event depends
//!   on interleaving — invariant checks (exactly-one-verdict, no
//!   panics) must therefore hold under *every* draw order, which is
//!   precisely what the chaos suite exercises.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::rng::SplitMix64;

/// A named point in the stack where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A worker vCPU stalls (burns cycles making no progress) before
    /// servicing its next batch.
    WorkerStall,
    /// A worker's drain loop dies mid-run; the supervisor must respawn
    /// it (fresh call unit, reconciled backlog) without losing requests.
    WorkerCrash,
    /// An inter-processor interrupt is sent but never delivered.
    IpiLoss,
    /// An inter-processor interrupt is delivered late (extra receive
    /// cycles on the target core).
    IpiDelay,
    /// A switchless channel slot reads back with a bad seqno/checksum.
    ChannelCorruption,
    /// A channel page access faults at the EPT (permission revoked or
    /// mapping torn down under the resident dispatcher).
    ChannelEptFault,
    /// An invalidation broadcast is dropped on its way to one worker's
    /// caches (a stale WT/IWT window until the next re-delivery).
    InvalidationDrop,
    /// A world-table lookup transiently fails as if the world were
    /// deleted mid-flight (the deletion race, made reproducible).
    WorldLookupRace,
}

/// Every site, in a fixed order (the per-site queue index).
pub const FAULT_SITES: [FaultSite; 8] = [
    FaultSite::WorkerStall,
    FaultSite::WorkerCrash,
    FaultSite::IpiLoss,
    FaultSite::IpiDelay,
    FaultSite::ChannelCorruption,
    FaultSite::ChannelEptFault,
    FaultSite::InvalidationDrop,
    FaultSite::WorldLookupRace,
];

impl FaultSite {
    /// Stable queue index of this site.
    pub fn index(self) -> usize {
        match self {
            FaultSite::WorkerStall => 0,
            FaultSite::WorkerCrash => 1,
            FaultSite::IpiLoss => 2,
            FaultSite::IpiDelay => 3,
            FaultSite::ChannelCorruption => 4,
            FaultSite::ChannelEptFault => 5,
            FaultSite::InvalidationDrop => 6,
            FaultSite::WorldLookupRace => 7,
        }
    }

    /// Human-readable site name (the catalogue key in reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WorkerStall => "worker-stall",
            FaultSite::WorkerCrash => "worker-crash",
            FaultSite::IpiLoss => "ipi-loss",
            FaultSite::IpiDelay => "ipi-delay",
            FaultSite::ChannelCorruption => "channel-corruption",
            FaultSite::ChannelEptFault => "channel-ept-fault",
            FaultSite::InvalidationDrop => "invalidation-drop",
            FaultSite::WorldLookupRace => "world-lookup-race",
        }
    }
}

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Burn `cycles` of virtual time making no progress.
    Stall {
        /// Cycles the stall costs.
        cycles: u64,
    },
    /// Die; the consumer is expected to respawn and reconcile.
    Crash,
    /// Silently discard the message/broadcast in flight.
    Drop,
    /// Deliver late: `cycles` extra on the receiving side.
    Delay {
        /// Extra delivery cycles.
        cycles: u64,
    },
    /// Flip bits: the payload reads back with a bad seqno/checksum.
    Corrupt,
    /// Refuse the access (EPT permission fault).
    Deny,
    /// Pretend the looked-up entity does not exist right now.
    Vanish,
}

/// One scheduled fault: fires the first time its site is consulted at
/// or after `at_cycles` of the consumer's virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time (cycles on the consulting clock) the event arms at.
    pub at_cycles: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

/// A deterministic fault schedule: per-site queues of [`FaultEvent`]s,
/// consumed in timestamp order by [`FaultPlan::fire`]. Thread-safe
/// (share via `Arc`); an empty plan is a strict no-op.
#[derive(Debug, Default)]
pub struct FaultPlan {
    queues: [Mutex<VecDeque<FaultEvent>>; FAULT_SITES.len()],
    fired: [AtomicU64; FAULT_SITES.len()],
}

impl FaultPlan {
    /// An empty plan (nothing ever fires).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules one event. Events at the same site fire in `at_cycles`
    /// order; ties fire in insertion order.
    pub fn schedule(&self, at_cycles: u64, site: FaultSite, kind: FaultKind) {
        let mut q = self.lock(site);
        let pos = q.partition_point(|e| e.at_cycles <= at_cycles);
        q.insert(pos, FaultEvent { at_cycles, kind });
    }

    /// Builder-style [`FaultPlan::schedule`].
    #[must_use]
    pub fn with(self, at_cycles: u64, site: FaultSite, kind: FaultKind) -> FaultPlan {
        self.schedule(at_cycles, site, kind);
        self
    }

    /// Generates a plan from a seed: `events_per_site` events at every
    /// site, uniform over `[0, horizon_cycles)` virtual time, with
    /// site-appropriate kinds and parameter draws. The same
    /// `(seed, horizon, events)` triple always yields the same plan.
    pub fn from_seed(seed: u64, horizon_cycles: u64, events_per_site: u32) -> FaultPlan {
        let plan = FaultPlan::new();
        let mut rng = SplitMix64::new(seed);
        let horizon = horizon_cycles.max(1);
        for site in FAULT_SITES {
            for _ in 0..events_per_site {
                let at = rng.below(horizon);
                let kind = match site {
                    FaultSite::WorkerStall => FaultKind::Stall {
                        cycles: rng.range(2_000, 20_000),
                    },
                    FaultSite::WorkerCrash => FaultKind::Crash,
                    FaultSite::IpiLoss => FaultKind::Drop,
                    FaultSite::IpiDelay => FaultKind::Delay {
                        cycles: rng.range(200, 2_000),
                    },
                    FaultSite::ChannelCorruption => FaultKind::Corrupt,
                    FaultSite::ChannelEptFault => FaultKind::Deny,
                    FaultSite::InvalidationDrop => FaultKind::Drop,
                    FaultSite::WorldLookupRace => FaultKind::Vanish,
                };
                plan.schedule(at, site, kind);
            }
        }
        plan
    }

    /// Consults the plan at `site` with the caller's virtual clock. The
    /// earliest event whose `at_cycles <= now_cycles` fires (is removed
    /// and returned); later events wait for later consultations. `None`
    /// means behave normally — for an empty plan this is free of side
    /// effects, observable state and cost.
    pub fn fire(&self, site: FaultSite, now_cycles: u64) -> Option<FaultKind> {
        let mut q = self.lock(site);
        if q.front().is_some_and(|e| e.at_cycles <= now_cycles) {
            let e = q.pop_front().expect("front just checked");
            drop(q);
            self.fired[site.index()].fetch_add(1, Ordering::Relaxed);
            Some(e.kind)
        } else {
            None
        }
    }

    /// Events still armed at `site`.
    pub fn pending(&self, site: FaultSite) -> usize {
        self.lock(site).len()
    }

    /// Events still armed across all sites.
    pub fn pending_total(&self) -> usize {
        FAULT_SITES.iter().map(|&s| self.pending(s)).sum()
    }

    /// Whether the plan has no armed events left (an exhausted plan
    /// behaves exactly like an empty one).
    pub fn is_empty(&self) -> bool {
        self.pending_total() == 0
    }

    /// Events that have fired at `site`.
    pub fn fired_count(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Events that have fired across all sites.
    pub fn fired_total(&self) -> u64 {
        FAULT_SITES.iter().map(|&s| self.fired_count(s)).sum()
    }

    fn lock(&self, site: FaultSite) -> std::sync::MutexGuard<'_, VecDeque<FaultEvent>> {
        // A consumer panicking mid-fire cannot corrupt a VecDeque pop;
        // recover the guard instead of propagating the poison.
        self.queues[site.index()]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        for site in FAULT_SITES {
            assert_eq!(plan.fire(site, u64::MAX), None);
            assert_eq!(plan.fired_count(site), 0);
        }
        assert_eq!(plan.fired_total(), 0);
    }

    #[test]
    fn events_fire_in_time_order_and_only_once() {
        let plan = FaultPlan::new()
            .with(500, FaultSite::WorkerStall, FaultKind::Stall { cycles: 9 })
            .with(100, FaultSite::WorkerStall, FaultKind::Stall { cycles: 7 });
        // Not armed yet at t=50.
        assert_eq!(plan.fire(FaultSite::WorkerStall, 50), None);
        // t=600 passes both, but one consultation pops exactly one
        // event — the earliest.
        assert_eq!(
            plan.fire(FaultSite::WorkerStall, 600),
            Some(FaultKind::Stall { cycles: 7 })
        );
        assert_eq!(
            plan.fire(FaultSite::WorkerStall, 600),
            Some(FaultKind::Stall { cycles: 9 })
        );
        assert_eq!(plan.fire(FaultSite::WorkerStall, 600), None);
        assert_eq!(plan.fired_count(FaultSite::WorkerStall), 2);
        assert!(plan.is_empty());
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::new().with(0, FaultSite::IpiLoss, FaultKind::Drop);
        assert_eq!(plan.fire(FaultSite::IpiDelay, 1_000), None);
        assert_eq!(plan.pending(FaultSite::IpiLoss), 1);
        assert_eq!(plan.fire(FaultSite::IpiLoss, 0), Some(FaultKind::Drop));
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::from_seed(0xFA_17, 1_000_000, 3);
        let b = FaultPlan::from_seed(0xFA_17, 1_000_000, 3);
        assert_eq!(a.pending_total(), FAULT_SITES.len() * 3);
        for site in FAULT_SITES {
            loop {
                let (ea, eb) = (a.fire(site, u64::MAX), b.fire(site, u64::MAX));
                assert_eq!(ea, eb, "seeded schedules must agree at {}", site.name());
                if ea.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn seeded_kinds_match_their_sites() {
        let plan = FaultPlan::from_seed(7, 10_000, 2);
        assert!(matches!(
            plan.fire(FaultSite::WorkerCrash, u64::MAX),
            Some(FaultKind::Crash)
        ));
        assert!(matches!(
            plan.fire(FaultSite::IpiDelay, u64::MAX),
            Some(FaultKind::Delay { cycles } ) if (200..2_000).contains(&cycles)
        ));
        assert!(matches!(
            plan.fire(FaultSite::ChannelCorruption, u64::MAX),
            Some(FaultKind::Corrupt)
        ));
        assert!(matches!(
            plan.fire(FaultSite::WorldLookupRace, u64::MAX),
            Some(FaultKind::Vanish)
        ));
    }

    #[test]
    fn site_index_matches_catalogue_order() {
        for (i, site) in FAULT_SITES.iter().enumerate() {
            assert_eq!(site.index(), i);
            assert!(!site.name().is_empty());
        }
    }
}
