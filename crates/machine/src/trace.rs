//! Transition event tracing.
//!
//! Every world transition the simulated CPU performs is appended to a
//! [`Trace`]. The paper's Table 1 and Figure 2 count *ring crossings and
//! context switches* along each system's call path; in this reproduction
//! those counts are **derived from the trace of an actual execution**, not
//! hardcoded, which is what makes the reproduction falsifiable.

use std::fmt;

use crate::mode::CpuMode;

/// The kinds of world transitions and privileged operations the CPU can
/// perform. Each kind is priced by a [`crate::cost::CostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// `syscall`/`int 0x80`: user to kernel within one address-space family.
    SyscallEnter,
    /// `sysret`/`iret`: kernel back to user.
    SyscallExit,
    /// VMX non-root to root (trap to the hypervisor), including `vmcall`.
    VmExit,
    /// VMX root to non-root (resume a guest).
    VmEntry,
    /// `VMFUNC(0)`: EPTP switch without leaving non-root operation.
    Vmfunc,
    /// Write to CR3 (guest page-table root change).
    Cr3Write,
    /// `lidt`: swap the interrupt descriptor table (Fig. 4 step ②/⑦).
    IdtSwap,
    /// `cli`/`sti` pair around the non-atomic switch window.
    InterruptMask,
    /// Hypervisor injecting a virtual interrupt into a guest.
    InterruptInject,
    /// Guest OS process context switch (scheduler included).
    ContextSwitch,
    /// Host OS process context switch.
    HostContextSwitch,
    /// Full CrossOver `world_call` (VMFUNC index 0x1): EPTP + CR3 + mode +
    /// PC switch in one instruction.
    WorldCall,
    /// `world_call` used in the return direction.
    WorldReturn,
    /// `manage_wtc` (VMFUNC index 0x2): world-table-cache fill/invalidate.
    WtcFill,
    /// World-table-cache miss: exception to the hypervisor, world-table
    /// walk, cache fill, and retry.
    WtcMissFault,
    /// Inter-processor interrupt, send side (used by rejected async design).
    IpiSend,
    /// Inter-processor interrupt, receive side.
    IpiReceive,
}

impl TransitionKind {
    /// Number of distinct kinds (array-map size for the cost model).
    pub const COUNT: usize = 17;

    /// All kinds, in declaration order.
    pub const ALL: [TransitionKind; TransitionKind::COUNT] = [
        TransitionKind::SyscallEnter,
        TransitionKind::SyscallExit,
        TransitionKind::VmExit,
        TransitionKind::VmEntry,
        TransitionKind::Vmfunc,
        TransitionKind::Cr3Write,
        TransitionKind::IdtSwap,
        TransitionKind::InterruptMask,
        TransitionKind::InterruptInject,
        TransitionKind::ContextSwitch,
        TransitionKind::HostContextSwitch,
        TransitionKind::WorldCall,
        TransitionKind::WorldReturn,
        TransitionKind::WtcFill,
        TransitionKind::WtcMissFault,
        TransitionKind::IpiSend,
        TransitionKind::IpiReceive,
    ];

    /// Dense index for array-backed maps.
    pub fn index(self) -> usize {
        // Discriminants are assigned in declaration order, which is also the
        // order of `ALL` — the density test below pins this down. A direct
        // cast keeps `record()` O(1) instead of scanning `ALL` per event.
        self as usize
    }

    /// Whether this kind crosses between privilege modes (counts as a
    /// "ring crossing" in the paper's Table 1 accounting).
    pub fn is_mode_crossing(self) -> bool {
        matches!(
            self,
            TransitionKind::SyscallEnter
                | TransitionKind::SyscallExit
                | TransitionKind::VmExit
                | TransitionKind::VmEntry
                | TransitionKind::WorldCall
                | TransitionKind::WorldReturn
        )
    }

    /// Whether this kind switches address spaces without the hypervisor's
    /// involvement (the intervention-free switches CrossOver introduces).
    pub fn is_intervention_free_switch(self) -> bool {
        matches!(
            self,
            TransitionKind::Vmfunc | TransitionKind::WorldCall | TransitionKind::WorldReturn
        )
    }
}

impl fmt::Display for TransitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TransitionKind::SyscallEnter => "syscall",
            TransitionKind::SyscallExit => "sysret",
            TransitionKind::VmExit => "vmexit",
            TransitionKind::VmEntry => "vmentry",
            TransitionKind::Vmfunc => "vmfunc",
            TransitionKind::Cr3Write => "cr3-write",
            TransitionKind::IdtSwap => "idt-swap",
            TransitionKind::InterruptMask => "int-mask",
            TransitionKind::InterruptInject => "int-inject",
            TransitionKind::ContextSwitch => "ctx-switch",
            TransitionKind::HostContextSwitch => "host-ctx-switch",
            TransitionKind::WorldCall => "world_call",
            TransitionKind::WorldReturn => "world_return",
            TransitionKind::WtcFill => "wtc-fill",
            TransitionKind::WtcMissFault => "wtc-miss-fault",
            TransitionKind::IpiSend => "ipi-send",
            TransitionKind::IpiReceive => "ipi-receive",
        };
        f.write_str(name)
    }
}

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number within the trace.
    pub seq: u64,
    /// What happened.
    pub kind: TransitionKind,
    /// Mode before the transition.
    pub from: CpuMode,
    /// Mode after the transition.
    pub to: CpuMode,
    /// Cycles charged.
    pub cycles: u64,
    /// Instructions charged.
    pub instructions: u64,
}

impl Event {
    /// Whether the privilege mode actually changed.
    pub fn changed_mode(&self) -> bool {
        self.from != self.to
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.changed_mode() {
            write!(
                f,
                "#{:<4} {:<16} {} -> {}",
                self.seq,
                self.kind.to_string(),
                self.from,
                self.to
            )
        } else {
            write!(
                f,
                "#{:<4} {:<16} ({})",
                self.seq,
                self.kind.to_string(),
                self.from
            )
        }
    }
}

/// An append-only log of [`Event`]s with derived statistics.
///
/// # Example
///
/// ```
/// use xover_machine::mode::CpuMode;
/// use xover_machine::trace::{Trace, TransitionKind};
///
/// let mut trace = Trace::new();
/// trace.record(TransitionKind::SyscallEnter,
///              CpuMode::GUEST_USER, CpuMode::GUEST_KERNEL, 100, 12);
/// trace.record(TransitionKind::SyscallExit,
///              CpuMode::GUEST_KERNEL, CpuMode::GUEST_USER, 100, 10);
/// assert_eq!(trace.ring_crossings(), 2);
/// assert_eq!(trace.count(TransitionKind::SyscallEnter), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<Event>,
    enabled: bool,
    next_seq: u64,
    counts: [u64; TransitionKind::COUNT],
    mode_changes: u64,
}

impl Trace {
    /// Creates an empty, enabled trace.
    pub fn new() -> Trace {
        Trace {
            enabled: true,
            ..Trace::default()
        }
    }

    /// Creates a trace that keeps statistics but discards per-event
    /// records. Use for long benchmark runs where storing every event would
    /// dominate memory.
    pub fn counting_only() -> Trace {
        Trace {
            enabled: false,
            ..Trace::default()
        }
    }

    /// Appends an event and returns it.
    pub fn record(
        &mut self,
        kind: TransitionKind,
        from: CpuMode,
        to: CpuMode,
        cycles: u64,
        instructions: u64,
    ) -> Event {
        let event = Event {
            seq: self.next_seq,
            kind,
            from,
            to,
            cycles,
            instructions,
        };
        self.next_seq += 1;
        self.counts[kind.index()] += 1;
        if from != to {
            self.mode_changes += 1;
        }
        if self.enabled {
            self.events.push(event);
        }
        event
    }

    /// The recorded events (empty if constructed with
    /// [`Trace::counting_only`]).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total number of transitions recorded (including discarded ones).
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// Whether no transitions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// How many transitions of `kind` were recorded.
    pub fn count(&self, kind: TransitionKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Number of transitions that changed the privilege mode — the paper's
    /// "ring crossings" metric from Table 1.
    pub fn ring_crossings(&self) -> u64 {
        self.mode_changes
    }

    /// Number of world switches that bounced through the hypervisor
    /// (VMExit + VMEntry pairs plus injections).
    pub fn hypervisor_interventions(&self) -> u64 {
        self.count(TransitionKind::VmExit)
            + self.count(TransitionKind::VmEntry)
            + self.count(TransitionKind::InterruptInject)
    }

    /// Number of intervention-free switches (VMFUNC / world_call family).
    pub fn intervention_free_switches(&self) -> u64 {
        TransitionKind::ALL
            .iter()
            .filter(|k| k.is_intervention_free_switch())
            .map(|k| self.count(*k))
            .sum()
    }

    /// Clears all events and statistics while preserving the enabled flag.
    pub fn clear(&mut self) {
        let enabled = self.enabled;
        *self = Trace {
            enabled,
            ..Trace::default()
        };
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        write!(
            f,
            "({} transitions, {} ring crossings)",
            self.len(),
            self.ring_crossings()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::CpuMode;

    #[test]
    fn kind_indices_are_dense_and_unique() {
        let mut seen = [false; TransitionKind::COUNT];
        for kind in TransitionKind::ALL {
            let i = kind.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn record_accumulates_counts() {
        let mut t = Trace::new();
        for _ in 0..3 {
            t.record(
                TransitionKind::Vmfunc,
                CpuMode::GUEST_KERNEL,
                CpuMode::GUEST_KERNEL,
                150,
                1,
            );
        }
        assert_eq!(t.count(TransitionKind::Vmfunc), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.events().len(), 3);
        // Same-mode VMFUNC is not a ring crossing.
        assert_eq!(t.ring_crossings(), 0);
    }

    #[test]
    fn ring_crossings_counts_only_mode_changes() {
        let mut t = Trace::new();
        t.record(
            TransitionKind::SyscallEnter,
            CpuMode::GUEST_USER,
            CpuMode::GUEST_KERNEL,
            100,
            12,
        );
        t.record(
            TransitionKind::Cr3Write,
            CpuMode::GUEST_KERNEL,
            CpuMode::GUEST_KERNEL,
            120,
            1,
        );
        t.record(
            TransitionKind::VmExit,
            CpuMode::GUEST_KERNEL,
            CpuMode::HOST_KERNEL,
            1000,
            60,
        );
        assert_eq!(t.ring_crossings(), 2);
    }

    #[test]
    fn counting_only_discards_events_but_keeps_stats() {
        let mut t = Trace::counting_only();
        t.record(
            TransitionKind::WorldCall,
            CpuMode::GUEST_USER,
            CpuMode::GUEST_KERNEL,
            200,
            1,
        );
        assert!(t.events().is_empty());
        assert_eq!(t.len(), 1);
        assert_eq!(t.count(TransitionKind::WorldCall), 1);
        assert_eq!(t.ring_crossings(), 1);
    }

    #[test]
    fn intervention_accounting() {
        let mut t = Trace::new();
        t.record(
            TransitionKind::VmExit,
            CpuMode::GUEST_KERNEL,
            CpuMode::HOST_KERNEL,
            1000,
            60,
        );
        t.record(
            TransitionKind::InterruptInject,
            CpuMode::HOST_KERNEL,
            CpuMode::HOST_KERNEL,
            600,
            35,
        );
        t.record(
            TransitionKind::VmEntry,
            CpuMode::HOST_KERNEL,
            CpuMode::GUEST_KERNEL,
            700,
            40,
        );
        t.record(
            TransitionKind::Vmfunc,
            CpuMode::GUEST_KERNEL,
            CpuMode::GUEST_KERNEL,
            150,
            1,
        );
        assert_eq!(t.hypervisor_interventions(), 3);
        assert_eq!(t.intervention_free_switches(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = Trace::new();
        t.record(
            TransitionKind::SyscallEnter,
            CpuMode::GUEST_USER,
            CpuMode::GUEST_KERNEL,
            100,
            12,
        );
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.ring_crossings(), 0);
        assert_eq!(t.count(TransitionKind::SyscallEnter), 0);
        // Still records after clear.
        t.record(
            TransitionKind::SyscallEnter,
            CpuMode::GUEST_USER,
            CpuMode::GUEST_KERNEL,
            100,
            12,
        );
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn display_includes_mode_change_arrow() {
        let mut t = Trace::new();
        let e = t.record(
            TransitionKind::SyscallEnter,
            CpuMode::GUEST_USER,
            CpuMode::GUEST_KERNEL,
            100,
            12,
        );
        let s = e.to_string();
        assert!(s.contains("syscall"));
        assert!(s.contains("->"));
    }

    #[test]
    fn mode_crossing_classification() {
        assert!(TransitionKind::SyscallEnter.is_mode_crossing());
        assert!(TransitionKind::WorldCall.is_mode_crossing());
        assert!(!TransitionKind::Cr3Write.is_mode_crossing());
        assert!(TransitionKind::Vmfunc.is_intervention_free_switch());
        assert!(!TransitionKind::VmExit.is_intervention_free_switch());
    }
}
