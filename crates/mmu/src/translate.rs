//! Two-stage address translation: GVA → GPA → HPA.

use crate::addr::{Gva, Hpa};
use crate::ept::Ept;
use crate::pagetable::PageTable;
use crate::perms::Perms;
use crate::MmuError;

/// Translates a guest virtual address through both stages, checking
/// `access` at each stage (guest page-table permissions first, then EPT
/// permissions — the order real hardware faults in).
///
/// # Errors
///
/// * [`MmuError::PageFault`] if the guest page table has no mapping.
/// * [`MmuError::EptViolation`] if the EPT has no mapping.
/// * [`MmuError::PermissionDenied`] if either stage denies the access.
///
/// # Example
///
/// ```
/// use xover_mmu::addr::{Gpa, Gva, Hpa};
/// use xover_mmu::ept::Ept;
/// use xover_mmu::pagetable::PageTable;
/// use xover_mmu::perms::Perms;
/// use xover_mmu::translate::translate;
///
/// let mut pt = PageTable::new(0x1000);
/// let mut ept = Ept::new(0xA000);
/// pt.map(Gva(0x8000), Gpa(0x2000), Perms::rw())?;
/// ept.map(Gpa(0x2000), Hpa(0x3000), Perms::rw())?;
/// assert_eq!(translate(&pt, &ept, Gva(0x8010), Perms::w())?, Hpa(0x3010));
/// # Ok::<(), xover_mmu::MmuError>(())
/// ```
pub fn translate(pt: &PageTable, ept: &Ept, gva: Gva, access: Perms) -> Result<Hpa, MmuError> {
    let gpa = pt.translate(gva, access)?;
    ept.translate(gpa, access)
}

/// The number of memory accesses a full two-stage hardware walk performs
/// on a TLB miss. A two-dimensional walk touches each guest level and, for
/// each guest level *and* the final access, walks the EPT: with 4-level
/// tables that is 4 × (4 + 1) + 4 = 24 accesses on real hardware.
pub const TWO_STAGE_WALK_ACCESSES: u32 = 24;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Gpa;

    fn setup() -> (PageTable, Ept) {
        let mut pt = PageTable::new(0x1000);
        let mut ept = Ept::new(0xA000);
        pt.map(Gva(0x8000), Gpa(0x2000), Perms::rw()).unwrap();
        ept.map(Gpa(0x2000), Hpa(0x3000), Perms::rw()).unwrap();
        (pt, ept)
    }

    #[test]
    fn both_stages_compose() {
        let (pt, ept) = setup();
        assert_eq!(
            translate(&pt, &ept, Gva(0x8abc), Perms::r()).unwrap(),
            Hpa(0x3abc)
        );
    }

    #[test]
    fn stage1_fault_takes_precedence() {
        let (pt, ept) = setup();
        let err = translate(&pt, &ept, Gva(0xdead_0000), Perms::r()).unwrap_err();
        assert!(matches!(err, MmuError::PageFault { .. }));
    }

    #[test]
    fn stage2_violation_reported() {
        let (mut pt, ept) = setup();
        // Guest maps a GPA that the hypervisor never backed.
        pt.map(Gva(0x9000), Gpa(0xF000), Perms::rw()).unwrap();
        let err = translate(&pt, &ept, Gva(0x9000), Perms::r()).unwrap_err();
        assert!(matches!(err, MmuError::EptViolation { gpa: Gpa(0xF000) }));
    }

    #[test]
    fn ept_permissions_override_guest_permissions() {
        // Guest thinks the page is writable, but the hypervisor granted
        // read-only at the EPT level (the mechanism Overshadow-style
        // systems rely on).
        let mut pt = PageTable::new(0x1000);
        let mut ept = Ept::new(0xA000);
        pt.map(Gva(0x8000), Gpa(0x2000), Perms::rw()).unwrap();
        ept.map(Gpa(0x2000), Hpa(0x3000), Perms::r()).unwrap();
        assert!(translate(&pt, &ept, Gva(0x8000), Perms::r()).is_ok());
        assert!(matches!(
            translate(&pt, &ept, Gva(0x8000), Perms::w()),
            Err(MmuError::PermissionDenied { .. })
        ));
    }
}
