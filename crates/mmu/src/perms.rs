//! Page access permissions.

use std::fmt;
use std::ops::{BitAnd, BitOr};

/// Read/write/execute permission bits for a page mapping.
///
/// Implemented as a tiny flag set (the external `bitflags` crate is not in
/// this project's dependency budget).
///
/// # Example
///
/// ```
/// use xover_mmu::perms::Perms;
///
/// let granted = Perms::rx();
/// assert!(granted.allows(Perms::r()));
/// assert!(granted.allows(Perms::x()));
/// assert!(!granted.allows(Perms::w()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    const READ: u8 = 0b001;
    const WRITE: u8 = 0b010;
    const EXEC: u8 = 0b100;

    /// No access.
    pub const NONE: Perms = Perms(0);

    /// Read-only.
    pub fn r() -> Perms {
        Perms(Perms::READ)
    }

    /// Write-only (used as an access *request*; mappings normally grant
    /// read alongside write).
    pub fn w() -> Perms {
        Perms(Perms::WRITE)
    }

    /// Execute-only access request.
    pub fn x() -> Perms {
        Perms(Perms::EXEC)
    }

    /// Read + write.
    pub fn rw() -> Perms {
        Perms(Perms::READ | Perms::WRITE)
    }

    /// Read + execute (e.g. the non-writable cross-ring code page of §4.3).
    pub fn rx() -> Perms {
        Perms(Perms::READ | Perms::EXEC)
    }

    /// Read + write + execute.
    pub fn rwx() -> Perms {
        Perms(Perms::READ | Perms::WRITE | Perms::EXEC)
    }

    /// Whether reading is permitted.
    pub fn can_read(self) -> bool {
        self.0 & Perms::READ != 0
    }

    /// Whether writing is permitted.
    pub fn can_write(self) -> bool {
        self.0 & Perms::WRITE != 0
    }

    /// Whether executing is permitted.
    pub fn can_exec(self) -> bool {
        self.0 & Perms::EXEC != 0
    }

    /// Whether this grant covers every bit of the `requested` access.
    pub fn allows(self, requested: Perms) -> bool {
        self.0 & requested.0 == requested.0
    }

    /// Whether no access is permitted.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        assert!(Perms::r().can_read());
        assert!(!Perms::r().can_write());
        assert!(Perms::rw().can_write());
        assert!(Perms::rx().can_exec());
        assert!(Perms::rwx().allows(Perms::rw()));
        assert!(Perms::NONE.is_none());
    }

    #[test]
    fn allows_is_subset_check() {
        assert!(Perms::rw().allows(Perms::r()));
        assert!(Perms::rw().allows(Perms::w()));
        assert!(!Perms::rw().allows(Perms::x()));
        assert!(!Perms::r().allows(Perms::rw()));
        // Everything allows the empty request.
        assert!(Perms::NONE.allows(Perms::NONE));
        assert!(Perms::r().allows(Perms::NONE));
    }

    #[test]
    fn bit_ops() {
        assert_eq!(Perms::r() | Perms::w(), Perms::rw());
        assert_eq!(Perms::rwx() & Perms::w(), Perms::w());
    }

    #[test]
    fn display() {
        assert_eq!(Perms::rw().to_string(), "rw-");
        assert_eq!(Perms::rx().to_string(), "r-x");
        assert_eq!(Perms::NONE.to_string(), "---");
    }
}
