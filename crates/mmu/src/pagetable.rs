//! Guest page tables: GVA → GPA mappings identified by a CR3 root value.

use crate::addr::{Gpa, Gva, PAGE_SIZE};
use crate::perms::Perms;
use crate::radix::{HugeError, Radix};
use crate::MmuError;

/// Size of a huge (2 MiB) page mapping.
pub const HUGE_PAGE_SIZE: u64 = PAGE_SIZE * 512;

/// A leaf page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The guest-physical page this virtual page maps to.
    pub gpa: Gpa,
    /// Access permissions granted by the guest OS.
    pub perms: Perms,
}

/// A guest page table, the first translation stage.
///
/// Identified by its `cr3` root value; loading that value into the CPU's
/// CR3 register activates this address space. In the cross-VM syscall of
/// §4.3, caller and callee processes are arranged to have the *same* CR3
/// value in their respective VMs so that a VMFUNC EPT switch lands in a
/// valid address space.
///
/// # Example
///
/// ```
/// use xover_mmu::addr::{Gpa, Gva};
/// use xover_mmu::pagetable::PageTable;
/// use xover_mmu::perms::Perms;
///
/// let mut pt = PageTable::new(0x1000);
/// pt.map(Gva(0x7fff_0000), Gpa(0x3000), Perms::rw())?;
/// assert_eq!(pt.translate(Gva(0x7fff_0042), Perms::r())?, Gpa(0x3042));
/// # Ok::<(), xover_mmu::MmuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    cr3: u64,
    table: Radix<Pte>,
}

impl PageTable {
    /// Creates an empty page table rooted at `cr3`.
    pub fn new(cr3: u64) -> PageTable {
        PageTable {
            cr3,
            table: Radix::new(),
        }
    }

    /// The CR3 root value identifying this address space.
    pub fn cr3(&self) -> u64 {
        self.cr3
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.table.len()
    }

    /// Maps the page containing `gva` to the page containing `gpa`.
    ///
    /// # Errors
    ///
    /// * [`MmuError::Misaligned`] if either address is not page-aligned.
    /// * [`MmuError::AlreadyMapped`] if the virtual page is already mapped
    ///   (use [`PageTable::remap`] to replace).
    pub fn map(&mut self, gva: Gva, gpa: Gpa, perms: Perms) -> Result<(), MmuError> {
        if !gva.is_page_aligned() {
            return Err(MmuError::Misaligned { addr: gva.value() });
        }
        if !gpa.is_page_aligned() {
            return Err(MmuError::Misaligned { addr: gpa.value() });
        }
        if self.table.lookup(gva.frame_number()).is_some() {
            return Err(MmuError::AlreadyMapped { addr: gva.value() });
        }
        self.table
            .insert(gva.frame_number(), Pte { gpa, perms })
            .map_err(|e| match e {
                HugeError::Overlap { .. } => MmuError::AlreadyMapped { addr: gva.value() },
                _ => MmuError::Misaligned { addr: gva.value() },
            })?;
        Ok(())
    }

    /// Maps a 2 MiB huge page: `gva` and `gpa` must be 2 MiB-aligned.
    ///
    /// # Errors
    ///
    /// * [`MmuError::Misaligned`] on misaligned addresses.
    /// * [`MmuError::AlreadyMapped`] if any 4 KiB page inside the range
    ///   is already mapped.
    pub fn map_huge(&mut self, gva: Gva, gpa: Gpa, perms: Perms) -> Result<(), MmuError> {
        if !gva.value().is_multiple_of(HUGE_PAGE_SIZE) {
            return Err(MmuError::Misaligned { addr: gva.value() });
        }
        if !gpa.value().is_multiple_of(HUGE_PAGE_SIZE) {
            return Err(MmuError::Misaligned { addr: gpa.value() });
        }
        self.table
            .insert_huge(gva.frame_number(), 1, Pte { gpa, perms })
            .map_err(|e| match e {
                HugeError::Overlap { .. } => MmuError::AlreadyMapped { addr: gva.value() },
                _ => MmuError::Misaligned { addr: gva.value() },
            })
    }

    /// Unmaps a 2 MiB huge page mapped with [`PageTable::map_huge`].
    pub fn unmap_huge(&mut self, gva: Gva) -> Option<Pte> {
        self.table.remove_huge(gva.frame_number(), 1)
    }

    /// Maps or replaces the mapping for the page containing `gva`.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::Misaligned`] if either address is not aligned.
    pub fn remap(&mut self, gva: Gva, gpa: Gpa, perms: Perms) -> Result<Option<Pte>, MmuError> {
        if !gva.is_page_aligned() {
            return Err(MmuError::Misaligned { addr: gva.value() });
        }
        if !gpa.is_page_aligned() {
            return Err(MmuError::Misaligned { addr: gpa.value() });
        }
        self.table
            .insert(gva.frame_number(), Pte { gpa, perms })
            .map_err(|e| match e {
                HugeError::Overlap { .. } => MmuError::AlreadyMapped { addr: gva.value() },
                _ => MmuError::Misaligned { addr: gva.value() },
            })
    }

    /// Removes the mapping for the page containing `gva`.
    pub fn unmap(&mut self, gva: Gva) -> Option<Pte> {
        self.table.remove(gva.frame_number())
    }

    /// Looks up the PTE covering `gva` without a permission check.
    pub fn entry(&self, gva: Gva) -> Option<&Pte> {
        self.table.lookup(gva.frame_number())
    }

    /// Translates `gva` to a guest-physical address, checking `access`.
    ///
    /// # Errors
    ///
    /// * [`MmuError::PageFault`] if unmapped.
    /// * [`MmuError::PermissionDenied`] if mapped without the requested
    ///   access.
    pub fn translate(&self, gva: Gva, access: Perms) -> Result<Gpa, MmuError> {
        let (pte, _, covered) = self
            .table
            .walk_with_coverage(gva.frame_number())
            .ok_or(MmuError::PageFault { gva })?;
        if !pte.perms.allows(access) {
            return Err(MmuError::PermissionDenied {
                required: access,
                granted: pte.perms,
            });
        }
        // A leaf covering 2^covered frames maps a (PAGE_SIZE << covered)
        // region; the in-region offset is preserved.
        let region = PAGE_SIZE << covered;
        Ok(pte.gpa + (gva.value() & (region - 1)))
    }

    /// Iterates over `(virtual page base, pte)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Gva, &Pte)> + '_ {
        self.table.iter().map(|(f, pte)| (Gva::from_frame(f), pte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new(0x1000);
        pt.map(Gva(0x4000), Gpa(0x8000), Perms::rw()).unwrap();
        assert_eq!(pt.translate(Gva(0x4abc), Perms::w()).unwrap(), Gpa(0x8abc));
        assert_eq!(pt.mapped_pages(), 1);
        let pte = pt.unmap(Gva(0x4000)).unwrap();
        assert_eq!(pte.gpa, Gpa(0x8000));
        assert!(matches!(
            pt.translate(Gva(0x4000), Perms::r()),
            Err(MmuError::PageFault { .. })
        ));
    }

    #[test]
    fn misaligned_map_rejected() {
        let mut pt = PageTable::new(0);
        assert!(matches!(
            pt.map(Gva(0x4001), Gpa(0x8000), Perms::r()),
            Err(MmuError::Misaligned { addr: 0x4001 })
        ));
        assert!(matches!(
            pt.map(Gva(0x4000), Gpa(0x8010), Perms::r()),
            Err(MmuError::Misaligned { addr: 0x8010 })
        ));
    }

    #[test]
    fn double_map_rejected_but_remap_allowed() {
        let mut pt = PageTable::new(0);
        pt.map(Gva(0x4000), Gpa(0x8000), Perms::r()).unwrap();
        assert!(matches!(
            pt.map(Gva(0x4000), Gpa(0x9000), Perms::r()),
            Err(MmuError::AlreadyMapped { .. })
        ));
        let old = pt.remap(Gva(0x4000), Gpa(0x9000), Perms::rw()).unwrap();
        assert_eq!(old.unwrap().gpa, Gpa(0x8000));
        assert_eq!(pt.translate(Gva(0x4000), Perms::w()).unwrap(), Gpa(0x9000));
    }

    #[test]
    fn permission_enforcement() {
        let mut pt = PageTable::new(0);
        // Read-only code page, like the cross-ring code page of §4.3.
        pt.map(Gva(0xC000), Gpa(0xD000), Perms::rx()).unwrap();
        assert!(pt.translate(Gva(0xC000), Perms::x()).is_ok());
        assert!(matches!(
            pt.translate(Gva(0xC000), Perms::w()),
            Err(MmuError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn iter_in_order() {
        let mut pt = PageTable::new(0);
        pt.map(Gva(0x9000), Gpa(0x1000), Perms::r()).unwrap();
        pt.map(Gva(0x2000), Gpa(0x2000), Perms::r()).unwrap();
        let bases: Vec<Gva> = pt.iter().map(|(g, _)| g).collect();
        assert_eq!(bases, vec![Gva(0x2000), Gva(0x9000)]);
    }

    #[test]
    fn huge_page_mapping_and_translation() {
        let mut pt = PageTable::new(0);
        pt.map_huge(Gva(HUGE_PAGE_SIZE), Gpa(2 * HUGE_PAGE_SIZE), Perms::rw())
            .unwrap();
        // Offsets anywhere inside the 2 MiB region translate.
        let gva = Gva(HUGE_PAGE_SIZE + 0x12_345);
        assert_eq!(
            pt.translate(gva, Perms::r()).unwrap(),
            Gpa(2 * HUGE_PAGE_SIZE + 0x12_345)
        );
        // A 4 KiB map inside the huge region is rejected.
        assert!(matches!(
            pt.map(Gva(HUGE_PAGE_SIZE + 0x5000), Gpa(0x9000), Perms::r()),
            Err(MmuError::AlreadyMapped { .. })
        ));
        // Unmap removes the whole region.
        assert!(pt.unmap_huge(Gva(HUGE_PAGE_SIZE)).is_some());
        assert!(pt.translate(gva, Perms::r()).is_err());
    }

    #[test]
    fn misaligned_huge_map_rejected() {
        let mut pt = PageTable::new(0);
        assert!(pt
            .map_huge(Gva(HUGE_PAGE_SIZE + 0x1000), Gpa(0), Perms::r())
            .is_err());
        assert!(pt
            .map_huge(Gva(0), Gpa(HUGE_PAGE_SIZE + 0x1000), Perms::r())
            .is_err());
    }
}
