//! Simulated host physical memory and frame allocation.
//!
//! Host frames back everything in the simulated machine: guest RAM, shared
//! parameter-passing pages, and the cross-ring code page. Frames are
//! allocated lazily and stored sparsely, so "32 GB" machines cost only what
//! they touch.

use std::collections::HashMap;

use crate::addr::{Hpa, PAGE_SIZE};
use crate::MmuError;

/// Simulated host physical memory: a sparse set of 4 KiB frames plus a
/// bump allocator for new frames.
///
/// # Example
///
/// ```
/// use xover_mmu::phys::PhysMemory;
///
/// let mut mem = PhysMemory::new();
/// let frame = mem.alloc_frame();
/// mem.write(frame, &[1, 2, 3])?;
/// let mut buf = [0u8; 3];
/// mem.read(frame, &mut buf)?;
/// assert_eq!(buf, [1, 2, 3]);
/// # Ok::<(), xover_mmu::MmuError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhysMemory {
    frames: HashMap<u64, Box<[u8]>>,
    next_frame: u64,
}

impl PhysMemory {
    /// Creates empty physical memory. Frame numbers start at 1 so that
    /// `Hpa(0)` stays an obviously-invalid null value.
    pub fn new() -> PhysMemory {
        PhysMemory {
            frames: HashMap::new(),
            next_frame: 1,
        }
    }

    /// Allocates a fresh zeroed frame and returns its base address.
    pub fn alloc_frame(&mut self) -> Hpa {
        let n = self.next_frame;
        self.next_frame += 1;
        self.frames
            .insert(n, vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
        Hpa::from_frame(n)
    }

    /// Allocates `count` consecutive frames, returning the first base.
    pub fn alloc_frames(&mut self, count: u64) -> Hpa {
        assert!(count > 0, "must allocate at least one frame");
        let first = self.alloc_frame();
        for _ in 1..count {
            self.alloc_frame();
        }
        first
    }

    /// Allocates `count` consecutive frames whose first frame number is a
    /// multiple of `align_frames` (e.g. 512 for a 2 MiB-aligned huge-page
    /// backing). Skipped frame numbers are simply never handed out.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `align_frames` is zero.
    pub fn alloc_frames_aligned(&mut self, count: u64, align_frames: u64) -> Hpa {
        assert!(count > 0, "must allocate at least one frame");
        assert!(align_frames > 0, "alignment must be positive");
        let rem = self.next_frame % align_frames;
        if rem != 0 {
            self.next_frame += align_frames - rem;
        }
        self.alloc_frames(count)
    }

    /// Whether the frame containing `hpa` is backed.
    pub fn is_backed(&self, hpa: Hpa) -> bool {
        self.frames.contains_key(&hpa.frame_number())
    }

    /// Number of allocated frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Reads `buf.len()` bytes starting at `hpa`. The access may span
    /// frame boundaries as long as every touched frame is backed.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::BadPhysAddr`] if any touched frame is unbacked.
    pub fn read(&self, hpa: Hpa, buf: &mut [u8]) -> Result<(), MmuError> {
        let mut addr = hpa;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = self
                .frames
                .get(&addr.frame_number())
                .ok_or(MmuError::BadPhysAddr { hpa: addr })?;
            let off = addr.page_offset() as usize;
            let n = (buf.len() - done).min(PAGE_SIZE as usize - off);
            buf[done..done + n].copy_from_slice(&frame[off..off + n]);
            done += n;
            addr = addr.page_base() + PAGE_SIZE;
        }
        Ok(())
    }

    /// Writes `data` starting at `hpa`, spanning frames if needed.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::BadPhysAddr`] if any touched frame is unbacked.
    /// No bytes are written unless every touched frame is backed.
    pub fn write(&mut self, hpa: Hpa, data: &[u8]) -> Result<(), MmuError> {
        // Validate first so partial writes never happen.
        let mut addr = hpa;
        let mut remaining = data.len();
        while remaining > 0 {
            if !self.frames.contains_key(&addr.frame_number()) {
                return Err(MmuError::BadPhysAddr { hpa: addr });
            }
            let off = addr.page_offset() as usize;
            let n = remaining.min(PAGE_SIZE as usize - off);
            remaining -= n;
            addr = addr.page_base() + PAGE_SIZE;
        }
        let mut addr = hpa;
        let mut done = 0usize;
        while done < data.len() {
            let frame = self
                .frames
                .get_mut(&addr.frame_number())
                .expect("validated above");
            let off = addr.page_offset() as usize;
            let n = (data.len() - done).min(PAGE_SIZE as usize - off);
            frame[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
            addr = addr.page_base() + PAGE_SIZE;
        }
        Ok(())
    }

    /// Reads a little-endian u64 at `hpa`.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::BadPhysAddr`] on unbacked memory.
    pub fn read_u64(&self, hpa: Hpa) -> Result<u64, MmuError> {
        let mut buf = [0u8; 8];
        self.read(hpa, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian u64 at `hpa`.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::BadPhysAddr`] on unbacked memory.
    pub fn write_u64(&mut self, hpa: Hpa, value: u64) -> Result<(), MmuError> {
        self.write(hpa, &value.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_frames_are_distinct_and_zeroed() {
        let mut m = PhysMemory::new();
        let a = m.alloc_frame();
        let b = m.alloc_frame();
        assert_ne!(a, b);
        let mut buf = [0xffu8; 16];
        m.read(a, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.frame_count(), 2);
    }

    #[test]
    fn null_hpa_is_never_backed() {
        let mut m = PhysMemory::new();
        m.alloc_frame();
        assert!(!m.is_backed(Hpa(0)));
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = PhysMemory::new();
        let f = m.alloc_frame();
        m.write(f + 100, b"crossover").unwrap();
        let mut buf = [0u8; 9];
        m.read(f + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"crossover");
    }

    #[test]
    fn cross_frame_access_spans_consecutive_frames() {
        let mut m = PhysMemory::new();
        let first = m.alloc_frames(2);
        let data: Vec<u8> = (0..=255).collect();
        // Start 100 bytes before the frame boundary.
        let start = first + (PAGE_SIZE - 100);
        m.write(start, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        m.read(start, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn unbacked_access_fails_without_partial_write() {
        let mut m = PhysMemory::new();
        let f = m.alloc_frame();
        // Frame after `f` is unbacked; this write spans into it.
        let start = f + (PAGE_SIZE - 4);
        let err = m.write(start, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap_err();
        assert!(matches!(err, MmuError::BadPhysAddr { .. }));
        // The backed prefix must not have been modified.
        let mut buf = [0u8; 4];
        m.read(start, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = PhysMemory::new();
        let f = m.alloc_frame();
        m.write_u64(f + 8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(f + 8).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn alloc_zero_frames_panics() {
        PhysMemory::new().alloc_frames(0);
    }

    #[test]
    fn aligned_allocation_is_aligned_and_contiguous() {
        let mut m = PhysMemory::new();
        m.alloc_frame(); // desync the allocator
        let base = m.alloc_frames_aligned(512, 512);
        assert_eq!(base.frame_number() % 512, 0);
        // All 512 frames are backed.
        for i in 0..512u64 {
            assert!(m.is_backed(base + i * PAGE_SIZE));
        }
    }
}
