//! Address newtypes for the three address spaces of a virtualized machine.
//!
//! A virtualized memory access is translated twice: guest virtual
//! ([`Gva`]) → guest physical ([`Gpa`]) by the guest page table, then guest
//! physical → host physical ([`Hpa`]) by the EPT. Distinct newtypes make it
//! a compile error to feed an address to the wrong stage.

use std::fmt;
use std::ops::Add;

/// Log2 of the page size (4 KiB pages throughout, as on x86-64).
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

macro_rules! address_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The zero address.
            pub const ZERO: $name = $name(0);

            /// The raw address value.
            pub fn value(self) -> u64 {
                self.0
            }

            /// The containing page's base address.
            pub fn page_base(self) -> $name {
                $name(self.0 & !(PAGE_SIZE - 1))
            }

            /// The offset of this address within its page.
            pub fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// The page frame number (address divided by the page size).
            pub fn frame_number(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// Whether the address is page-aligned.
            pub fn is_page_aligned(self) -> bool {
                self.page_offset() == 0
            }

            /// Constructs the base address of frame `n`.
            pub fn from_frame(n: u64) -> $name {
                $name(n << PAGE_SHIFT)
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, ":{:#x}"), self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> $name {
                $name(v)
            }
        }
    };
}

address_type!(
    /// A guest virtual address — what guest software dereferences.
    Gva,
    "gva"
);
address_type!(
    /// A guest physical address — output of the guest page table, input to
    /// the EPT. The cross-ring code page of §4.3 is placed at the *same*
    /// `Gpa` in every VM so execution continues seamlessly across a VMFUNC.
    Gpa,
    "gpa"
);
address_type!(
    /// A host physical address — a real frame of simulated machine memory.
    Hpa,
    "hpa"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_decomposition() {
        let a = Gva(0x1234_5678);
        assert_eq!(a.page_base(), Gva(0x1234_5000));
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.frame_number(), 0x1_2345);
        assert!(!a.is_page_aligned());
        assert!(a.page_base().is_page_aligned());
    }

    #[test]
    fn frame_round_trip() {
        for n in [0u64, 1, 0x7ff, 1 << 24] {
            assert_eq!(Gpa::from_frame(n).frame_number(), n);
            assert!(Gpa::from_frame(n).is_page_aligned());
        }
    }

    #[test]
    fn addition_offsets() {
        assert_eq!(Hpa(0x1000) + 0x34, Hpa(0x1034));
    }

    #[test]
    fn display_tags_distinguish_spaces() {
        assert_eq!(Gva(0x10).to_string(), "gva:0x10");
        assert_eq!(Gpa(0x10).to_string(), "gpa:0x10");
        assert_eq!(Hpa(0x10).to_string(), "hpa:0x10");
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", Gva(0xabc)), "abc");
    }

    #[test]
    fn zero_and_from() {
        assert_eq!(Gva::ZERO.value(), 0);
        assert_eq!(Gva::from(7u64), Gva(7));
    }
}
