//! Memory-management substrate: guest page tables, extended page tables
//! (EPT), two-stage address translation, a software TLB, and simulated host
//! physical memory.
//!
//! CrossOver's `world_call` and its VMFUNC approximation are, at bottom,
//! *address-space switches*: a VMFUNC swaps the EPT pointer, a CR3 write
//! swaps the guest page table. For the reproduction to be meaningful those
//! switches must have real consequences — translations must change, shared
//! mappings must genuinely alias the same host frames, and the cross-ring
//! code page of §4.3 must actually be mapped at the same guest-physical
//! address in every VM. This crate provides that machinery:
//!
//! * [`addr`] — address newtypes ([`addr::Gva`], [`addr::Gpa`],
//!   [`addr::Hpa`]) so the two translation stages cannot be confused.
//! * [`perms`] — page permissions.
//! * [`phys`] — simulated host physical memory and a frame allocator.
//! * [`radix`] — the 4-level radix table shared by both paging structures.
//! * [`pagetable`] — guest page tables (GVA → GPA), identified by a CR3
//!   root value.
//! * [`ept`] — extended page tables (GPA → HPA), identified by an EPTP.
//! * [`translate`] — the two-stage walk GVA → GPA → HPA.
//! * [`tlb`] — a software TLB tagged by (CR3, EPTP) so that VMFUNC switches
//!   do not require a flush, matching the hardware the paper relies on.
//!
//! # Example
//!
//! ```
//! use xover_mmu::addr::{Gpa, Gva, Hpa};
//! use xover_mmu::ept::Ept;
//! use xover_mmu::pagetable::PageTable;
//! use xover_mmu::perms::Perms;
//! use xover_mmu::translate::translate;
//!
//! let mut pt = PageTable::new(0x1000);
//! let mut ept = Ept::new(0xA000);
//! pt.map(Gva(0x4000_0000), Gpa(0x2000), Perms::rw())?;
//! ept.map(Gpa(0x2000), Hpa(0x9_F000), Perms::rwx())?;
//! let hpa = translate(&pt, &ept, Gva(0x4000_0123), Perms::r())?;
//! assert_eq!(hpa, Hpa(0x9_F123));
//! # Ok::<(), xover_mmu::MmuError>(())
//! ```

pub mod addr;
pub mod ept;
pub mod pagetable;
pub mod perms;
pub mod phys;
pub mod radix;
pub mod tlb;
pub mod translate;

pub use addr::{Gpa, Gva, Hpa, PAGE_SHIFT, PAGE_SIZE};
pub use ept::Ept;
pub use pagetable::PageTable;
pub use perms::Perms;
pub use phys::PhysMemory;
pub use tlb::Tlb;

use std::fmt;

/// Errors raised by translation and mapping operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuError {
    /// A guest virtual address had no page-table mapping.
    PageFault {
        /// The faulting guest virtual address.
        gva: Gva,
    },
    /// A guest physical address had no EPT mapping (an "EPT violation").
    EptViolation {
        /// The faulting guest physical address.
        gpa: Gpa,
    },
    /// The mapping exists but does not allow the requested access.
    PermissionDenied {
        /// Permissions the access required.
        required: Perms,
        /// Permissions the mapping grants.
        granted: Perms,
    },
    /// An address that must be page-aligned was not.
    Misaligned {
        /// The offending address value.
        addr: u64,
    },
    /// Attempted to map a page that is already mapped.
    AlreadyMapped {
        /// The page-aligned address value that was already present.
        addr: u64,
    },
    /// A read or write touched unbacked host physical memory.
    BadPhysAddr {
        /// The offending host physical address.
        hpa: Hpa,
    },
}

impl fmt::Display for MmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmuError::PageFault { gva } => write!(f, "page fault at {gva}"),
            MmuError::EptViolation { gpa } => write!(f, "EPT violation at {gpa}"),
            MmuError::PermissionDenied { required, granted } => {
                write!(
                    f,
                    "permission denied: required {required}, granted {granted}"
                )
            }
            MmuError::Misaligned { addr } => write!(f, "address {addr:#x} is not page-aligned"),
            MmuError::AlreadyMapped { addr } => write!(f, "page {addr:#x} is already mapped"),
            MmuError::BadPhysAddr { hpa } => write!(f, "unbacked host physical address {hpa}"),
        }
    }
}

impl std::error::Error for MmuError {}
