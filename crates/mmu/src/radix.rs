//! A 4-level radix table over page frame numbers, the structure shared by
//! guest page tables and EPTs.
//!
//! x86-64 paging resolves a 48-bit virtual address through four levels of
//! 512-entry tables (9 bits per level, 12 bits page offset). This module
//! implements that radix shape generically over the leaf payload: guest
//! page tables store ([`crate::addr::Gpa`], [`crate::perms::Perms`]) leaves
//! and EPTs store ([`crate::addr::Hpa`], [`crate::perms::Perms`]) leaves.
//! Intermediate nodes are allocated from an internal arena, so a `Radix`
//! behaves like real hardware tables: sparse, hierarchical, and walkable
//! level by level (the walk depth is observable for cost accounting).

/// Bits resolved per level.
const LEVEL_BITS: u32 = 9;
/// Entries per table node.
const FANOUT: usize = 1 << LEVEL_BITS;
/// Number of levels.
pub const LEVELS: usize = 4;
/// Maximum frame-number width covered by the table (36 bits = 48-bit
/// addresses with 4 KiB pages).
pub const FRAME_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// Index of a node in the arena.
type NodeId = u32;

#[derive(Debug, Clone)]
enum Slot<T> {
    Empty,
    Table(NodeId),
    Leaf(T),
}

#[derive(Debug, Clone)]
struct Node<T> {
    slots: Vec<Slot<T>>,
    /// Number of non-empty slots, to allow freeing empty intermediate
    /// nodes on unmap.
    used: u16,
}

impl<T> Node<T> {
    fn new() -> Node<T> {
        Node {
            slots: (0..FANOUT).map(|_| Slot::Empty).collect(),
            used: 0,
        }
    }
}

/// Statistics about walks performed, used for cost accounting: a real
/// page walk costs one memory access per level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Number of lookups performed.
    pub walks: u64,
    /// Total levels touched across all walks.
    pub levels_touched: u64,
}

/// A sparse 4-level radix map from page frame numbers to `T`.
///
/// # Example
///
/// ```
/// use xover_mmu::radix::Radix;
///
/// let mut r: Radix<&'static str> = Radix::new();
/// r.insert(0x1_2345, "hello").unwrap();
/// assert_eq!(r.lookup(0x1_2345), Some(&"hello"));
/// assert_eq!(r.lookup(0x1_2346), None);
/// ```
#[derive(Debug, Clone)]
pub struct Radix<T> {
    arena: Vec<Node<T>>,
    root: NodeId,
    len: u64,
    free: Vec<NodeId>,
}

impl<T> Radix<T> {
    /// Creates an empty table.
    pub fn new() -> Radix<T> {
        let root_node = Node::new();
        Radix {
            arena: vec![root_node],
            root: 0,
            len: 0,
            free: Vec::new(),
        }
    }

    /// Number of leaf entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the table has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn indices(frame: u64) -> [usize; LEVELS] {
        let mut idx = [0usize; LEVELS];
        for (level, slot) in idx.iter_mut().enumerate() {
            let shift = LEVEL_BITS * (LEVELS - 1 - level) as u32;
            *slot = ((frame >> shift) & (FANOUT as u64 - 1)) as usize;
        }
        idx
    }

    fn check_frame(frame: u64) -> Result<(), FrameOutOfRange> {
        if frame >> FRAME_BITS != 0 {
            Err(FrameOutOfRange { frame })
        } else {
            Ok(())
        }
    }

    fn alloc_node(&mut self) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.arena[id as usize] = Node::new();
            id
        } else {
            self.arena.push(Node::new());
            (self.arena.len() - 1) as NodeId
        }
    }

    /// Inserts a 4 KiB leaf for `frame`, replacing and returning any
    /// previous same-size leaf.
    ///
    /// # Errors
    ///
    /// * [`HugeError::OutOfRange`] if `frame` does not fit in 36 bits.
    /// * [`HugeError::Overlap`] if the region is covered by a huge leaf.
    pub fn insert(&mut self, frame: u64, value: T) -> Result<Option<T>, HugeError> {
        if Self::check_frame(frame).is_err() {
            return Err(HugeError::OutOfRange { frame });
        }
        let idx = Self::indices(frame);
        let mut node = self.root;
        for &i in idx.iter().take(LEVELS - 1) {
            node = match &self.arena[node as usize].slots[i] {
                Slot::Table(child) => *child,
                Slot::Empty => {
                    let child = self.alloc_node();
                    let n = &mut self.arena[node as usize];
                    n.slots[i] = Slot::Table(child);
                    n.used += 1;
                    child
                }
                Slot::Leaf(_) => return Err(HugeError::Overlap { frame }),
            };
        }
        let last = idx[LEVELS - 1];
        let n = &mut self.arena[node as usize];
        let prev = std::mem::replace(&mut n.slots[last], Slot::Leaf(value));
        match prev {
            Slot::Leaf(old) => Ok(Some(old)),
            Slot::Empty => {
                n.used += 1;
                self.len += 1;
                Ok(None)
            }
            Slot::Table(_) => unreachable!("tables never sit at the last level"),
        }
    }

    /// Removes a huge leaf installed with [`Radix::insert_huge`].
    pub fn remove_huge(&mut self, frame: u64, huge_levels: u32) -> Option<T> {
        if Self::check_frame(frame).is_err() {
            return None;
        }
        let idx = Self::indices(frame);
        let leaf_level = LEVELS.checked_sub(1 + huge_levels as usize)?;
        let mut node = self.root;
        for &i in idx.iter().take(leaf_level) {
            match &self.arena[node as usize].slots[i] {
                Slot::Table(child) => node = *child,
                _ => return None,
            }
        }
        let slot_i = idx[leaf_level];
        let n = &mut self.arena[node as usize];
        match std::mem::replace(&mut n.slots[slot_i], Slot::Empty) {
            Slot::Leaf(v) => {
                n.used -= 1;
                self.len -= 1;
                Some(v)
            }
            other => {
                n.slots[slot_i] = other;
                None
            }
        }
    }

    /// Looks up the leaf for `frame`.
    pub fn lookup(&self, frame: u64) -> Option<&T> {
        self.walk(frame).map(|(v, _)| v)
    }

    /// Looks up the leaf for `frame`, also reporting how many levels the
    /// walk touched (for cost accounting; a miss still touches the levels
    /// down to the first empty slot). Finds both 4 KiB leaves (level 4)
    /// and huge leaves installed higher up.
    pub fn walk(&self, frame: u64) -> Option<(&T, u32)> {
        self.walk_with_coverage(frame).map(|(v, l, _)| (v, l))
    }

    /// Like [`Radix::walk`], additionally reporting how many low frame
    /// bits the found leaf covers (0 for a 4 KiB leaf, 9 for a 2 MiB huge
    /// leaf, ...).
    pub fn walk_with_coverage(&self, frame: u64) -> Option<(&T, u32, u32)> {
        if Self::check_frame(frame).is_err() {
            return None;
        }
        let idx = Self::indices(frame);
        let mut node = self.root;
        for (level, &i) in idx.iter().enumerate() {
            match &self.arena[node as usize].slots[i] {
                Slot::Empty => return None,
                Slot::Table(child) => node = *child,
                Slot::Leaf(v) => {
                    let covered = LEVEL_BITS * (LEVELS - 1 - level) as u32;
                    return Some((v, level as u32 + 1, covered));
                }
            }
        }
        None
    }

    /// Inserts a *huge* leaf at `huge_levels` above the bottom (1 = a
    /// 2 MiB page covering 512 frames). `frame` must be aligned to the
    /// coverage.
    ///
    /// # Errors
    ///
    /// [`HugeError`] on out-of-range, misaligned, or overlapping frames.
    pub fn insert_huge(&mut self, frame: u64, huge_levels: u32, value: T) -> Result<(), HugeError> {
        if Self::check_frame(frame).is_err() {
            return Err(HugeError::OutOfRange { frame });
        }
        assert!(
            (1..LEVELS as u32).contains(&huge_levels),
            "huge_levels must be within the table height"
        );
        let covered = LEVEL_BITS * huge_levels;
        if frame & ((1 << covered) - 1) != 0 {
            return Err(HugeError::Misaligned { frame });
        }
        let idx = Self::indices(frame);
        let leaf_level = LEVELS - 1 - huge_levels as usize;
        let mut node = self.root;
        for &i in idx.iter().take(leaf_level) {
            node = match &self.arena[node as usize].slots[i] {
                Slot::Table(child) => *child,
                Slot::Empty => {
                    let child = self.alloc_node();
                    let n = &mut self.arena[node as usize];
                    n.slots[i] = Slot::Table(child);
                    n.used += 1;
                    child
                }
                Slot::Leaf(_) => return Err(HugeError::Overlap { frame }),
            };
        }
        let slot_i = idx[leaf_level];
        let n = &mut self.arena[node as usize];
        match &n.slots[slot_i] {
            Slot::Empty => {
                n.slots[slot_i] = Slot::Leaf(value);
                n.used += 1;
                self.len += 1;
                Ok(())
            }
            _ => Err(HugeError::Overlap { frame }),
        }
    }

    /// Mutable lookup.
    pub fn lookup_mut(&mut self, frame: u64) -> Option<&mut T> {
        if Self::check_frame(frame).is_err() {
            return None;
        }
        let idx = Self::indices(frame);
        let mut node = self.root;
        for &i in idx.iter().take(LEVELS - 1) {
            match &self.arena[node as usize].slots[i] {
                Slot::Table(child) => node = *child,
                _ => return None,
            }
        }
        match &mut self.arena[node as usize].slots[idx[LEVELS - 1]] {
            Slot::Leaf(v) => Some(v),
            _ => None,
        }
    }

    /// Removes and returns the leaf for `frame`, freeing any intermediate
    /// nodes that become empty.
    pub fn remove(&mut self, frame: u64) -> Option<T> {
        if Self::check_frame(frame).is_err() {
            return None;
        }
        let idx = Self::indices(frame);
        let mut path = [self.root; LEVELS];
        let mut node = self.root;
        for (level, &i) in idx.iter().take(LEVELS - 1).enumerate() {
            match &self.arena[node as usize].slots[i] {
                Slot::Table(child) => {
                    node = *child;
                    path[level + 1] = node;
                }
                _ => return None,
            }
        }
        let last = idx[LEVELS - 1];
        let n = &mut self.arena[node as usize];
        let prev = std::mem::replace(&mut n.slots[last], Slot::Empty);
        let value = match prev {
            Slot::Leaf(v) => {
                n.used -= 1;
                self.len -= 1;
                v
            }
            other => {
                // Not a leaf: restore and bail.
                n.slots[last] = other;
                return None;
            }
        };
        // Free now-empty intermediate nodes bottom-up (never the root).
        for level in (1..LEVELS).rev() {
            let id = path[level];
            if self.arena[id as usize].used == 0 {
                self.free.push(id);
                let parent = path[level - 1];
                let pi = idx[level - 1];
                self.arena[parent as usize].slots[pi] = Slot::Empty;
                self.arena[parent as usize].used -= 1;
            } else {
                break;
            }
        }
        Some(value)
    }

    /// Iterates over `(base frame, &value)` pairs in ascending frame
    /// order. Huge leaves yield the base frame of their covered range.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> + '_ {
        let mut stack: Vec<(NodeId, u64, usize, usize)> = vec![(self.root, 0, 0, 0)];
        std::iter::from_fn(move || loop {
            let (node, prefix, start, depth) = stack.pop()?;
            let slots = &self.arena[node as usize].slots;
            for (i, slot) in slots.iter().enumerate().take(FANOUT).skip(start) {
                match slot {
                    Slot::Empty => continue,
                    Slot::Table(child) => {
                        stack.push((node, prefix, i + 1, depth));
                        stack.push((*child, (prefix << LEVEL_BITS) | i as u64, 0, depth + 1));
                        break;
                    }
                    Slot::Leaf(v) => {
                        stack.push((node, prefix, i + 1, depth));
                        let raw = (prefix << LEVEL_BITS) | i as u64;
                        let shift = LEVEL_BITS * (LEVELS - 1 - depth) as u32;
                        return Some((raw << shift, v));
                    }
                }
            }
        })
    }

    /// Number of arena nodes currently allocated (diagnostic).
    pub fn node_count(&self) -> usize {
        self.arena.len() - self.free.len()
    }
}

impl<T> Default for Radix<T> {
    fn default() -> Radix<T> {
        Radix::new()
    }
}

/// Error returned when a frame number exceeds the 36-bit range the 4-level
/// table covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameOutOfRange {
    /// The offending frame number.
    pub frame: u64,
}

impl std::fmt::Display for FrameOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame number {:#x} exceeds the {FRAME_BITS}-bit range of a 4-level table",
            self.frame
        )
    }
}

impl std::error::Error for FrameOutOfRange {}

/// Errors from huge-leaf insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HugeError {
    /// Frame number out of table range.
    OutOfRange {
        /// The offending frame.
        frame: u64,
    },
    /// The frame is not aligned to the huge-leaf coverage.
    Misaligned {
        /// The offending frame.
        frame: u64,
    },
    /// The region already contains 4 KiB mappings (or another leaf).
    Overlap {
        /// The conflicting frame.
        frame: u64,
    },
}

impl std::fmt::Display for HugeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HugeError::OutOfRange { frame } => write!(f, "frame {frame:#x} out of range"),
            HugeError::Misaligned { frame } => {
                write!(f, "frame {frame:#x} not aligned to huge coverage")
            }
            HugeError::Overlap { frame } => {
                write!(f, "region at frame {frame:#x} already mapped")
            }
        }
    }
}

impl std::error::Error for HugeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut r = Radix::new();
        assert_eq!(r.insert(42, "a").unwrap(), None);
        assert_eq!(r.lookup(42), Some(&"a"));
        assert_eq!(r.insert(42, "b").unwrap(), Some("a"));
        assert_eq!(r.remove(42), Some("b"));
        assert_eq!(r.lookup(42), None);
        assert!(r.is_empty());
    }

    #[test]
    fn distinct_frames_do_not_collide() {
        let mut r = Radix::new();
        // Frames that differ only in one level's index.
        let frames = [0u64, 1, 512, 512 * 512, 512 * 512 * 512, 0xF_FFFF_FFFF];
        for (i, &f) in frames.iter().enumerate() {
            r.insert(f, i).unwrap();
        }
        for (i, &f) in frames.iter().enumerate() {
            assert_eq!(r.lookup(f), Some(&i), "frame {f:#x}");
        }
        assert_eq!(r.len(), frames.len() as u64);
    }

    #[test]
    fn out_of_range_frame_rejected() {
        let mut r: Radix<u8> = Radix::new();
        assert!(r.insert(1 << FRAME_BITS, 0).is_err());
        assert_eq!(r.lookup(1 << FRAME_BITS), None);
        assert_eq!(r.remove(1 << FRAME_BITS), None);
    }

    #[test]
    fn walk_reports_four_levels_on_hit() {
        let mut r = Radix::new();
        r.insert(7, ()).unwrap();
        let (_, levels) = r.walk(7).unwrap();
        assert_eq!(levels, 4);
    }

    #[test]
    fn remove_frees_empty_nodes() {
        let mut r = Radix::new();
        let baseline = r.node_count();
        r.insert(0x1_0000_0000, 1).unwrap();
        assert!(r.node_count() > baseline);
        r.remove(0x1_0000_0000);
        assert_eq!(r.node_count(), baseline);
        // Arena slots are recycled.
        r.insert(0x2_0000_0000, 2).unwrap();
        assert_eq!(r.lookup(0x2_0000_0000), Some(&2));
    }

    #[test]
    fn iter_yields_sorted_frames() {
        let mut r = Radix::new();
        let mut frames = vec![99u64, 3, 0x8_0000, 512, 4, 0xF_FFFF_FFFF];
        for &f in &frames {
            r.insert(f, f * 2).unwrap();
        }
        frames.sort_unstable();
        let got: Vec<(u64, u64)> = r.iter().map(|(f, v)| (f, *v)).collect();
        assert_eq!(got.len(), frames.len());
        for (i, &f) in frames.iter().enumerate() {
            assert_eq!(got[i], (f, f * 2));
        }
    }

    #[test]
    fn lookup_mut_mutates() {
        let mut r = Radix::new();
        r.insert(5, 10).unwrap();
        *r.lookup_mut(5).unwrap() += 1;
        assert_eq!(r.lookup(5), Some(&11));
        assert!(r.lookup_mut(6).is_none());
    }

    #[test]
    fn dense_range_stress() {
        let mut r = Radix::new();
        for f in 0..2048u64 {
            r.insert(f, f).unwrap();
        }
        assert_eq!(r.len(), 2048);
        for f in 0..2048u64 {
            assert_eq!(r.lookup(f), Some(&f));
        }
        for f in (0..2048u64).step_by(2) {
            assert_eq!(r.remove(f), Some(f));
        }
        assert_eq!(r.len(), 1024);
        for f in 0..2048u64 {
            if f % 2 == 0 {
                assert_eq!(r.lookup(f), None);
            } else {
                assert_eq!(r.lookup(f), Some(&f));
            }
        }
    }

    #[test]
    fn huge_leaf_covers_its_range() {
        let mut r = Radix::new();
        r.insert_huge(512, 1, "huge").unwrap();
        for probe in [512u64, 700, 1023] {
            let (v, _, covered) = r.walk_with_coverage(probe).unwrap();
            assert_eq!(*v, "huge");
            assert_eq!(covered, 9);
        }
        assert!(r.walk_with_coverage(511).is_none());
        assert!(r.walk_with_coverage(1024).is_none());
    }

    #[test]
    fn huge_leaf_rejects_misalignment_and_overlap() {
        let mut r = Radix::new();
        assert_eq!(
            r.insert_huge(513, 1, 0),
            Err(HugeError::Misaligned { frame: 513 })
        );
        r.insert(600, 1).unwrap();
        assert_eq!(
            r.insert_huge(512, 1, 0),
            Err(HugeError::Overlap { frame: 512 })
        );
        // And the reverse: a 4 KiB insert under a huge leaf.
        r.insert_huge(1024, 1, 2).unwrap();
        assert_eq!(r.insert(1100, 9), Err(HugeError::Overlap { frame: 1100 }));
    }

    #[test]
    fn huge_leaf_remove_and_iter_base_frames() {
        let mut r = Radix::new();
        r.insert_huge(512, 1, "huge").unwrap();
        r.insert(3, "small").unwrap();
        let frames: Vec<u64> = r.iter().map(|(f, _)| f).collect();
        assert_eq!(frames, vec![3, 512]);
        assert_eq!(r.remove_huge(512, 1), Some("huge"));
        assert_eq!(r.remove_huge(512, 1), None);
        assert_eq!(r.len(), 1);
    }
}
