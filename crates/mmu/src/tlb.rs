//! A unified GVA→HPA software TLB tagged by (CR3, EPTP), modelled as a
//! set-associative array.
//!
//! Real VMFUNC avoids TLB flushes because hardware TLB entries are tagged
//! with the EPTP (via VPID/EP4TA tagging). That is a significant part of
//! why a VMFUNC world switch is so much cheaper than a hypervisor-mediated
//! switch. This TLB models that: entries are keyed by the *pair*
//! (CR3, EPTP), so changing either register simply makes a different set
//! of entries visible instead of discarding state — a `world_call` EPT
//! switch costs zero TLB state.
//!
//! The storage mirrors hardware: a fixed `sets × ways` array allocated
//! once, indexed by a hash of the tagged page number, with per-set LRU
//! replacement driven by monotonic age counters. Lookups probe one set
//! (O(ways)) and never allocate.
//!
//! The cycle constants at the bottom price the translation fast/slow
//! paths: a hit costs [`TLB_HIT_CYCLES`]; a miss pays the 24-access
//! two-stage walk ([`TWO_STAGE_WALK_CYCLES`]), or the 4-access
//! single-stage walk ([`STAGE1_WALK_CYCLES`]) when no EPT is active
//! (host worlds).

use crate::addr::{Gva, Hpa};
use crate::perms::Perms;
use crate::translate::TWO_STAGE_WALK_ACCESSES;

/// Key identifying one cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TlbKey {
    cr3: u64,
    eptp: u64,
    vpn: u64,
}

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Host-physical frame base the page maps to.
    pub hpa_base: Hpa,
    /// Effective permissions (intersection of both stages).
    pub perms: Perms,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of entries evicted for capacity.
    pub evictions: u64,
    /// Number of entries removed by invalidations/flushes.
    pub invalidations: u64,
}

impl TlbStats {
    /// Hit rate in [0, 1]; 0 if no lookups occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another core's counters (for SMP-wide reporting).
    pub fn absorb(&mut self, other: &TlbStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }

    /// Counter deltas since an earlier snapshot of the same TLB. Counters
    /// are monotone, so this is exact per-interval attribution (used by the
    /// obs plane to charge hits/misses to individual requests).
    pub fn since(&self, earlier: &TlbStats) -> TlbStats {
        TlbStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            invalidations: self.invalidations - earlier.invalidations,
        }
    }
}

/// Default TLB associativity: 4-way, matching the L2 STLB of the
/// Haswell parts the paper measures on.
pub const DEFAULT_TLB_WAYS: usize = 4;

/// One slot: a tagged translation plus its LRU age stamp.
#[derive(Debug, Clone, Copy)]
struct Slot {
    age: u64,
    line: Option<(TlbKey, TlbEntry)>,
}

/// SplitMix64 finalizer, spreading page-aligned tags over the sets.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TlbKey {
    fn hash(&self) -> u64 {
        mix64(self.vpn ^ mix64(self.cr3 ^ mix64(self.eptp)))
    }
}

/// A finite set-associative software TLB tagged by (CR3, EPTP), with
/// per-set LRU replacement.
///
/// # Example
///
/// ```
/// use xover_mmu::addr::{Gva, Hpa};
/// use xover_mmu::perms::Perms;
/// use xover_mmu::tlb::Tlb;
///
/// let mut tlb = Tlb::new(64);
/// tlb.insert(0x1000, 0xA000, Gva(0x8000), Hpa(0x3000), Perms::rw());
/// // Hit under the same (CR3, EPTP).
/// assert!(tlb.lookup(0x1000, 0xA000, Gva(0x8123)).is_some());
/// // A different EPTP sees nothing — but the original entry survives.
/// assert!(tlb.lookup(0x1000, 0xB000, Gva(0x8123)).is_none());
/// assert!(tlb.lookup(0x1000, 0xA000, Gva(0x8123)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: usize,
    ways: usize,
    /// `sets × ways` slots, set-major.
    slots: Vec<Slot>,
    /// Per-set monotonic tick for LRU ages.
    ticks: Vec<u64>,
    len: usize,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB holding at least `capacity` translations at the
    /// default associativity (`ways = min(DEFAULT_TLB_WAYS, capacity)`,
    /// sets rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB capacity must be positive");
        let ways = capacity.min(DEFAULT_TLB_WAYS);
        let sets = capacity.div_ceil(ways).next_power_of_two();
        Tlb::with_geometry(sets, ways)
    }

    /// Creates a TLB with an explicit sets × ways shape.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or `sets` is zero / not a power of two.
    pub fn with_geometry(sets: usize, ways: usize) -> Tlb {
        assert!(ways > 0, "TLB capacity must be positive");
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "TLB set count must be a positive power of two"
        );
        Tlb {
            sets,
            ways,
            slots: vec![Slot { age: 0, line: None }; sets * ways],
            ticks: vec![0; sets],
            len: 0,
            stats: TlbStats::default(),
        }
    }

    /// The (sets, ways) shape.
    pub fn geometry(&self) -> (usize, usize) {
        (self.sets, self.ways)
    }

    /// Current number of cached translations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    fn set_range(&self, key: &TlbKey) -> std::ops::Range<usize> {
        let set = (key.hash() as usize) & (self.sets - 1);
        let base = set * self.ways;
        base..base + self.ways
    }

    fn touch(&mut self, key: &TlbKey, slot: usize) {
        let set = (key.hash() as usize) & (self.sets - 1);
        self.ticks[set] += 1;
        self.slots[slot].age = self.ticks[set];
    }

    /// Looks up the translation of `gva` under the given (CR3, EPTP) tag.
    /// Records a hit or miss; a hit refreshes the entry's LRU age.
    pub fn lookup(&mut self, cr3: u64, eptp: u64, gva: Gva) -> Option<TlbEntry> {
        let key = TlbKey {
            cr3,
            eptp,
            vpn: gva.frame_number(),
        };
        for i in self.set_range(&key) {
            if let Some((k, e)) = self.slots[i].line {
                if k == key {
                    self.stats.hits += 1;
                    self.touch(&key, i);
                    return Some(e);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a translation, evicting the set's LRU way if the set is
    /// full. Re-inserting a cached tag updates the entry in place.
    pub fn insert(&mut self, cr3: u64, eptp: u64, gva: Gva, hpa_base: Hpa, perms: Perms) {
        let key = TlbKey {
            cr3,
            eptp,
            vpn: gva.frame_number(),
        };
        let entry = TlbEntry { hpa_base, perms };
        let range = self.set_range(&key);
        for i in range.clone() {
            if matches!(self.slots[i].line, Some((k, _)) if k == key) {
                self.slots[i].line = Some((key, entry));
                self.touch(&key, i);
                return;
            }
        }
        let victim = range
            .clone()
            .find(|&i| self.slots[i].line.is_none())
            .unwrap_or_else(|| {
                self.stats.evictions += 1;
                self.len -= 1;
                range
                    .min_by_key(|&i| self.slots[i].age)
                    .expect("ways is positive")
            });
        self.slots[victim].line = Some((key, entry));
        self.len += 1;
        self.touch(&key, victim);
    }

    fn invalidate_matching(&mut self, pred: impl Fn(&TlbKey) -> bool) {
        for slot in &mut self.slots {
            if matches!(slot.line, Some((ref k, _)) if pred(k)) {
                slot.line = None;
                self.len -= 1;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Invalidates every entry tagged with `cr3` (the effect of a CR3
    /// write without PCID on legacy hardware, or an `invlpg` sweep).
    pub fn invalidate_cr3(&mut self, cr3: u64) {
        self.invalidate_matching(|k| k.cr3 == cr3);
    }

    /// Invalidates every entry tagged with `eptp` (hypervisor EPT edit).
    pub fn invalidate_eptp(&mut self, eptp: u64) {
        self.invalidate_matching(|k| k.eptp == eptp);
    }

    /// Flushes everything.
    pub fn flush(&mut self) {
        self.invalidate_matching(|_| true);
    }
}

/// Cycles charged for a translation served from the TLB. Address
/// translation on a hit overlaps the access pipeline; one cycle is the
/// marginal cost.
pub const TLB_HIT_CYCLES: u64 = 1;

/// Cycles per paging-structure access during a walk (an L2-ish latency:
/// walks hit the paging-structure caches and L2 far more often than
/// DRAM).
pub const PTE_ACCESS_CYCLES: u64 = 20;

/// Cycles for the full two-stage walk a miss pays under nested paging:
/// [`TWO_STAGE_WALK_ACCESSES`] × [`PTE_ACCESS_CYCLES`].
pub const TWO_STAGE_WALK_CYCLES: u64 = TWO_STAGE_WALK_ACCESSES as u64 * PTE_ACCESS_CYCLES;

/// Memory accesses for a single-stage (no-EPT, host world) walk of a
/// 4-level table.
pub const STAGE1_WALK_ACCESSES: u32 = 4;

/// Cycles for the single-stage walk a miss pays outside guest mode.
pub const STAGE1_WALK_CYCLES: u64 = STAGE1_WALK_ACCESSES as u64 * PTE_ACCESS_CYCLES;

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_for(tlb: &mut Tlb, cr3: u64, eptp: u64, gva: u64) -> Option<TlbEntry> {
        tlb.lookup(cr3, eptp, Gva(gva))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut tlb = Tlb::new(4);
        assert!(entry_for(&mut tlb, 1, 1, 0x1000).is_none());
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x5000), Perms::rw());
        assert!(entry_for(&mut tlb, 1, 1, 0x1000).is_some());
        let s = tlb.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eptp_tagging_preserves_entries_across_vmfunc() {
        let mut tlb = Tlb::new(8);
        tlb.insert(0x10, 0xA, Gva(0x1000), Hpa(0x5000), Perms::rw());
        tlb.insert(0x10, 0xB, Gva(0x1000), Hpa(0x7000), Perms::rw());
        // "VMFUNC" to EPTP B and back: both views stay cached.
        assert_eq!(
            entry_for(&mut tlb, 0x10, 0xB, 0x1000).unwrap().hpa_base,
            Hpa(0x7000)
        );
        assert_eq!(
            entry_for(&mut tlb, 0x10, 0xA, 0x1000).unwrap().hpa_base,
            Hpa(0x5000)
        );
    }

    #[test]
    fn capacity_eviction_is_per_set_lru() {
        // Capacity 2 collapses to one fully-associative 2-way set, so
        // LRU order is observable at the whole-cache level.
        let mut tlb = Tlb::new(2);
        assert_eq!(tlb.geometry(), (1, 2));
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x1000), Perms::r());
        tlb.insert(1, 1, Gva(0x2000), Hpa(0x2000), Perms::r());
        tlb.insert(1, 1, Gva(0x3000), Hpa(0x3000), Perms::r());
        assert_eq!(tlb.len(), 2);
        assert!(
            entry_for(&mut tlb, 1, 1, 0x1000).is_none(),
            "oldest evicted"
        );
        assert!(entry_for(&mut tlb, 1, 1, 0x2000).is_some());
        assert!(entry_for(&mut tlb, 1, 1, 0x3000).is_some());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn lookup_refreshes_lru_age() {
        let mut tlb = Tlb::new(2);
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x1000), Perms::r());
        tlb.insert(1, 1, Gva(0x2000), Hpa(0x2000), Perms::r());
        // Touch the older entry; the newer one becomes the LRU victim.
        assert!(entry_for(&mut tlb, 1, 1, 0x1000).is_some());
        tlb.insert(1, 1, Gva(0x3000), Hpa(0x3000), Perms::r());
        assert!(entry_for(&mut tlb, 1, 1, 0x1000).is_some());
        assert!(entry_for(&mut tlb, 1, 1, 0x2000).is_none());
    }

    #[test]
    fn invalidate_by_cr3_and_eptp() {
        let mut tlb = Tlb::new(8);
        tlb.insert(1, 0xA, Gva(0x1000), Hpa(0x1000), Perms::r());
        tlb.insert(2, 0xA, Gva(0x1000), Hpa(0x2000), Perms::r());
        tlb.insert(1, 0xB, Gva(0x1000), Hpa(0x3000), Perms::r());
        tlb.invalidate_cr3(1);
        assert!(entry_for(&mut tlb, 1, 0xA, 0x1000).is_none());
        assert!(entry_for(&mut tlb, 1, 0xB, 0x1000).is_none());
        assert!(entry_for(&mut tlb, 2, 0xA, 0x1000).is_some());
        tlb.invalidate_eptp(0xA);
        assert!(entry_for(&mut tlb, 2, 0xA, 0x1000).is_none());
    }

    #[test]
    fn flush_clears_all() {
        let mut tlb = Tlb::new(8);
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x1000), Perms::r());
        tlb.flush();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().invalidations, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Tlb::new(0);
    }

    #[test]
    fn reinsert_same_key_updates_in_place() {
        let mut tlb = Tlb::new(2);
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x1000), Perms::r());
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x9000), Perms::rw());
        assert_eq!(tlb.len(), 1);
        let e = entry_for(&mut tlb, 1, 1, 0x1000).unwrap();
        assert_eq!(e.hpa_base, Hpa(0x9000));
        assert!(e.perms.can_write());
    }

    #[test]
    fn walk_cost_model_is_consistent() {
        assert_eq!(TWO_STAGE_WALK_CYCLES, 24 * PTE_ACCESS_CYCLES);
        const {
            assert!(STAGE1_WALK_CYCLES < TWO_STAGE_WALK_CYCLES);
            assert!(TLB_HIT_CYCLES < STAGE1_WALK_CYCLES);
        }
    }
}
