//! A software TLB tagged by (CR3, EPTP).
//!
//! Real VMFUNC avoids TLB flushes because hardware TLB entries are tagged
//! with the EPTP (via VPID/EP4TA tagging). That is a significant part of
//! why a VMFUNC world switch is so much cheaper than a hypervisor-mediated
//! switch. This TLB models that: entries are keyed by the *pair*
//! (CR3, EPTP), so changing either register simply makes a different set
//! of entries visible instead of discarding state.

use std::collections::HashMap;

use crate::addr::{Gva, Hpa};
use crate::perms::Perms;

/// Key identifying one cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TlbKey {
    cr3: u64,
    eptp: u64,
    vpn: u64,
}

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Host-physical frame base the page maps to.
    pub hpa_base: Hpa,
    /// Effective permissions (intersection of both stages).
    pub perms: Perms,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of entries evicted for capacity.
    pub evictions: u64,
    /// Number of entries removed by invalidations/flushes.
    pub invalidations: u64,
}

impl TlbStats {
    /// Hit rate in [0, 1]; 0 if no lookups occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A finite, FIFO-evicting software TLB tagged by (CR3, EPTP).
///
/// # Example
///
/// ```
/// use xover_mmu::addr::{Gva, Hpa};
/// use xover_mmu::perms::Perms;
/// use xover_mmu::tlb::Tlb;
///
/// let mut tlb = Tlb::new(64);
/// tlb.insert(0x1000, 0xA000, Gva(0x8000), Hpa(0x3000), Perms::rw());
/// // Hit under the same (CR3, EPTP).
/// assert!(tlb.lookup(0x1000, 0xA000, Gva(0x8123)).is_some());
/// // A different EPTP sees nothing — but the original entry survives.
/// assert!(tlb.lookup(0x1000, 0xB000, Gva(0x8123)).is_none());
/// assert!(tlb.lookup(0x1000, 0xA000, Gva(0x8123)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: HashMap<TlbKey, TlbEntry>,
    order: Vec<TlbKey>,
    capacity: usize,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            entries: HashMap::new(),
            order: Vec::new(),
            capacity,
            stats: TlbStats::default(),
        }
    }

    /// Current number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Looks up the translation of `gva` under the given (CR3, EPTP) tag.
    /// Records a hit or miss.
    pub fn lookup(&mut self, cr3: u64, eptp: u64, gva: Gva) -> Option<TlbEntry> {
        let key = TlbKey {
            cr3,
            eptp,
            vpn: gva.frame_number(),
        };
        match self.entries.get(&key) {
            Some(e) => {
                self.stats.hits += 1;
                Some(*e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a translation, evicting the oldest entry if at capacity.
    pub fn insert(&mut self, cr3: u64, eptp: u64, gva: Gva, hpa_base: Hpa, perms: Perms) {
        let key = TlbKey {
            cr3,
            eptp,
            vpn: gva.frame_number(),
        };
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // FIFO eviction.
            while let Some(oldest) = self.order.first().copied() {
                self.order.remove(0);
                if self.entries.remove(&oldest).is_some() {
                    self.stats.evictions += 1;
                    break;
                }
            }
        }
        if self
            .entries
            .insert(key, TlbEntry { hpa_base, perms })
            .is_none()
        {
            self.order.push(key);
        }
    }

    /// Invalidates every entry tagged with `cr3` (the effect of a CR3
    /// write without PCID on legacy hardware, or an `invlpg` sweep).
    pub fn invalidate_cr3(&mut self, cr3: u64) {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.cr3 != cr3);
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// Invalidates every entry tagged with `eptp` (hypervisor EPT edit).
    pub fn invalidate_eptp(&mut self, eptp: u64) {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.eptp != eptp);
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// Flushes everything.
    pub fn flush(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_for(tlb: &mut Tlb, cr3: u64, eptp: u64, gva: u64) -> Option<TlbEntry> {
        tlb.lookup(cr3, eptp, Gva(gva))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut tlb = Tlb::new(4);
        assert!(entry_for(&mut tlb, 1, 1, 0x1000).is_none());
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x5000), Perms::rw());
        assert!(entry_for(&mut tlb, 1, 1, 0x1000).is_some());
        let s = tlb.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eptp_tagging_preserves_entries_across_vmfunc() {
        let mut tlb = Tlb::new(8);
        tlb.insert(0x10, 0xA, Gva(0x1000), Hpa(0x5000), Perms::rw());
        tlb.insert(0x10, 0xB, Gva(0x1000), Hpa(0x7000), Perms::rw());
        // "VMFUNC" to EPTP B and back: both views stay cached.
        assert_eq!(
            entry_for(&mut tlb, 0x10, 0xB, 0x1000).unwrap().hpa_base,
            Hpa(0x7000)
        );
        assert_eq!(
            entry_for(&mut tlb, 0x10, 0xA, 0x1000).unwrap().hpa_base,
            Hpa(0x5000)
        );
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let mut tlb = Tlb::new(2);
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x1000), Perms::r());
        tlb.insert(1, 1, Gva(0x2000), Hpa(0x2000), Perms::r());
        tlb.insert(1, 1, Gva(0x3000), Hpa(0x3000), Perms::r());
        assert_eq!(tlb.len(), 2);
        assert!(
            entry_for(&mut tlb, 1, 1, 0x1000).is_none(),
            "oldest evicted"
        );
        assert!(entry_for(&mut tlb, 1, 1, 0x2000).is_some());
        assert!(entry_for(&mut tlb, 1, 1, 0x3000).is_some());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn invalidate_by_cr3_and_eptp() {
        let mut tlb = Tlb::new(8);
        tlb.insert(1, 0xA, Gva(0x1000), Hpa(0x1000), Perms::r());
        tlb.insert(2, 0xA, Gva(0x1000), Hpa(0x2000), Perms::r());
        tlb.insert(1, 0xB, Gva(0x1000), Hpa(0x3000), Perms::r());
        tlb.invalidate_cr3(1);
        assert!(entry_for(&mut tlb, 1, 0xA, 0x1000).is_none());
        assert!(entry_for(&mut tlb, 1, 0xB, 0x1000).is_none());
        assert!(entry_for(&mut tlb, 2, 0xA, 0x1000).is_some());
        tlb.invalidate_eptp(0xA);
        assert!(entry_for(&mut tlb, 2, 0xA, 0x1000).is_none());
    }

    #[test]
    fn flush_clears_all() {
        let mut tlb = Tlb::new(8);
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x1000), Perms::r());
        tlb.flush();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().invalidations, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Tlb::new(0);
    }

    #[test]
    fn reinsert_same_key_updates_in_place() {
        let mut tlb = Tlb::new(2);
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x1000), Perms::r());
        tlb.insert(1, 1, Gva(0x1000), Hpa(0x9000), Perms::rw());
        assert_eq!(tlb.len(), 1);
        let e = entry_for(&mut tlb, 1, 1, 0x1000).unwrap();
        assert_eq!(e.hpa_base, Hpa(0x9000));
        assert!(e.perms.can_write());
    }
}
