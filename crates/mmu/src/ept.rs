//! Extended page tables: GPA → HPA mappings identified by an EPT pointer.
//!
//! One EPT per guest VM (plus extra EPTs for VMFUNC-based world views).
//! Switching the active EPT is what VMFUNC(0) does without a VMExit, and
//! what makes the paper's cross-VM calls possible: the same CR3/GVA resolve
//! through a *different* EPT into a different VM's memory.

use crate::addr::{Gpa, Hpa, PAGE_SIZE};
use crate::pagetable::HUGE_PAGE_SIZE;
use crate::perms::Perms;
use crate::radix::{HugeError, Radix};
use crate::MmuError;

/// A leaf EPT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptEntry {
    /// The host-physical frame backing this guest-physical page.
    pub hpa: Hpa,
    /// Access permissions granted by the hypervisor.
    pub perms: Perms,
}

/// An extended page table, the second translation stage.
///
/// # Example
///
/// ```
/// use xover_mmu::addr::{Gpa, Hpa};
/// use xover_mmu::ept::Ept;
/// use xover_mmu::perms::Perms;
///
/// let mut ept = Ept::new(0xAA000);
/// ept.map(Gpa(0x2000), Hpa(0x5000), Perms::rwx())?;
/// assert_eq!(ept.translate(Gpa(0x20ff), Perms::r())?, Hpa(0x50ff));
/// # Ok::<(), xover_mmu::MmuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ept {
    eptp: u64,
    table: Radix<EptEntry>,
}

impl Ept {
    /// Creates an empty EPT whose pointer value is `eptp`.
    pub fn new(eptp: u64) -> Ept {
        Ept {
            eptp,
            table: Radix::new(),
        }
    }

    /// The EPT pointer (a host-physical address in real hardware; an
    /// opaque identifier here).
    pub fn eptp(&self) -> u64 {
        self.eptp
    }

    /// Number of mapped guest-physical pages.
    pub fn mapped_pages(&self) -> u64 {
        self.table.len()
    }

    /// Maps the guest-physical page containing `gpa` to host frame `hpa`.
    ///
    /// # Errors
    ///
    /// * [`MmuError::Misaligned`] if either address is not page-aligned.
    /// * [`MmuError::AlreadyMapped`] if the page is already mapped.
    pub fn map(&mut self, gpa: Gpa, hpa: Hpa, perms: Perms) -> Result<(), MmuError> {
        if !gpa.is_page_aligned() {
            return Err(MmuError::Misaligned { addr: gpa.value() });
        }
        if !hpa.is_page_aligned() {
            return Err(MmuError::Misaligned { addr: hpa.value() });
        }
        if self.table.lookup(gpa.frame_number()).is_some() {
            return Err(MmuError::AlreadyMapped { addr: gpa.value() });
        }
        self.table
            .insert(gpa.frame_number(), EptEntry { hpa, perms })
            .map_err(|e| match e {
                HugeError::Overlap { .. } => MmuError::AlreadyMapped { addr: gpa.value() },
                _ => MmuError::Misaligned { addr: gpa.value() },
            })?;
        Ok(())
    }

    /// Maps a 2 MiB huge EPT page (the large-page backing real
    /// hypervisors prefer for guest RAM). Both addresses must be 2 MiB
    /// aligned.
    ///
    /// # Errors
    ///
    /// * [`MmuError::Misaligned`] on misaligned addresses.
    /// * [`MmuError::AlreadyMapped`] on overlap.
    pub fn map_huge(&mut self, gpa: Gpa, hpa: Hpa, perms: Perms) -> Result<(), MmuError> {
        if !gpa.value().is_multiple_of(HUGE_PAGE_SIZE) {
            return Err(MmuError::Misaligned { addr: gpa.value() });
        }
        if !hpa.value().is_multiple_of(HUGE_PAGE_SIZE) {
            return Err(MmuError::Misaligned { addr: hpa.value() });
        }
        self.table
            .insert_huge(gpa.frame_number(), 1, EptEntry { hpa, perms })
            .map_err(|e| match e {
                HugeError::Overlap { .. } => MmuError::AlreadyMapped { addr: gpa.value() },
                _ => MmuError::Misaligned { addr: gpa.value() },
            })
    }

    /// Unmaps a 2 MiB huge EPT page.
    pub fn unmap_huge(&mut self, gpa: Gpa) -> Option<EptEntry> {
        self.table.remove_huge(gpa.frame_number(), 1)
    }

    /// Maps or replaces the mapping for the page containing `gpa`.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::Misaligned`] on unaligned addresses.
    pub fn remap(
        &mut self,
        gpa: Gpa,
        hpa: Hpa,
        perms: Perms,
    ) -> Result<Option<EptEntry>, MmuError> {
        if !gpa.is_page_aligned() {
            return Err(MmuError::Misaligned { addr: gpa.value() });
        }
        if !hpa.is_page_aligned() {
            return Err(MmuError::Misaligned { addr: hpa.value() });
        }
        self.table
            .insert(gpa.frame_number(), EptEntry { hpa, perms })
            .map_err(|e| match e {
                HugeError::Overlap { .. } => MmuError::AlreadyMapped { addr: gpa.value() },
                _ => MmuError::Misaligned { addr: gpa.value() },
            })
    }

    /// Removes the mapping for the page containing `gpa`.
    pub fn unmap(&mut self, gpa: Gpa) -> Option<EptEntry> {
        self.table.remove(gpa.frame_number())
    }

    /// Looks up the entry covering `gpa` without a permission check.
    pub fn entry(&self, gpa: Gpa) -> Option<&EptEntry> {
        self.table.lookup(gpa.frame_number())
    }

    /// Translates `gpa` to a host-physical address, checking `access`.
    ///
    /// # Errors
    ///
    /// * [`MmuError::EptViolation`] if unmapped.
    /// * [`MmuError::PermissionDenied`] if access is not permitted.
    pub fn translate(&self, gpa: Gpa, access: Perms) -> Result<Hpa, MmuError> {
        let (entry, _, covered) = self
            .table
            .walk_with_coverage(gpa.frame_number())
            .ok_or(MmuError::EptViolation { gpa })?;
        if !entry.perms.allows(access) {
            return Err(MmuError::PermissionDenied {
                required: access,
                granted: entry.perms,
            });
        }
        let region = PAGE_SIZE << covered;
        Ok(entry.hpa + (gpa.value() & (region - 1)))
    }

    /// Iterates over `(guest-physical page base, entry)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Gpa, &EptEntry)> + '_ {
        self.table.iter().map(|(f, e)| (Gpa::from_frame(f), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate() {
        let mut ept = Ept::new(1);
        ept.map(Gpa(0x2000), Hpa(0x5000), Perms::rwx()).unwrap();
        assert_eq!(ept.translate(Gpa(0x2e11), Perms::x()).unwrap(), Hpa(0x5e11));
    }

    #[test]
    fn violation_on_unmapped() {
        let ept = Ept::new(1);
        assert!(matches!(
            ept.translate(Gpa(0x9000), Perms::r()),
            Err(MmuError::EptViolation { gpa: Gpa(0x9000) })
        ));
    }

    #[test]
    fn two_epts_give_same_gpa_different_hpa() {
        // The essence of a VMFUNC world switch: one GPA, two views.
        let mut ept_a = Ept::new(1);
        let mut ept_b = Ept::new(2);
        ept_a.map(Gpa(0x2000), Hpa(0x5000), Perms::rw()).unwrap();
        ept_b.map(Gpa(0x2000), Hpa(0x7000), Perms::rw()).unwrap();
        assert_eq!(
            ept_a.translate(Gpa(0x2000), Perms::r()).unwrap(),
            Hpa(0x5000)
        );
        assert_eq!(
            ept_b.translate(Gpa(0x2000), Perms::r()).unwrap(),
            Hpa(0x7000)
        );
    }

    #[test]
    fn permission_denied_on_ept_protected_page() {
        let mut ept = Ept::new(1);
        ept.map(Gpa(0x2000), Hpa(0x5000), Perms::r()).unwrap();
        assert!(matches!(
            ept.translate(Gpa(0x2000), Perms::w()),
            Err(MmuError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn unmap_and_remap() {
        let mut ept = Ept::new(1);
        ept.map(Gpa(0x2000), Hpa(0x5000), Perms::rw()).unwrap();
        assert!(ept.unmap(Gpa(0x2000)).is_some());
        assert!(ept.unmap(Gpa(0x2000)).is_none());
        ept.remap(Gpa(0x2000), Hpa(0x6000), Perms::rw()).unwrap();
        assert_eq!(ept.translate(Gpa(0x2000), Perms::r()).unwrap(), Hpa(0x6000));
        assert_eq!(ept.mapped_pages(), 1);
    }

    #[test]
    fn misaligned_rejected() {
        let mut ept = Ept::new(1);
        assert!(ept.map(Gpa(0x2001), Hpa(0x5000), Perms::r()).is_err());
        assert!(ept.map(Gpa(0x2000), Hpa(0x5008), Perms::r()).is_err());
    }

    #[test]
    fn huge_ept_backing_translates_across_the_region() {
        use crate::pagetable::HUGE_PAGE_SIZE;
        let mut ept = Ept::new(1);
        ept.map_huge(Gpa(0), Hpa(HUGE_PAGE_SIZE), Perms::rwx())
            .unwrap();
        assert_eq!(
            ept.translate(Gpa(0x1F_0000), Perms::r()).unwrap(),
            Hpa(HUGE_PAGE_SIZE + 0x1F_0000)
        );
        // 4 KiB overlap rejected; removal frees the region.
        assert!(ept.map(Gpa(0x4000), Hpa(0x8000), Perms::r()).is_err());
        assert!(ept.unmap_huge(Gpa(0)).is_some());
        assert!(ept.map(Gpa(0x4000), Hpa(0x8000), Perms::r()).is_ok());
    }
}
