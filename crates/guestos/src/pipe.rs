//! Kernel pipe objects.
//!
//! lmbench's `pipe` benchmark (Table 4's most expensive row) bounces one
//! byte between two processes through a pipe, paying two context switches
//! per round trip. The pipe itself is a bounded ring buffer with reader
//! and writer reference counts.

use std::collections::VecDeque;
use std::fmt;

/// Default pipe capacity in bytes (Linux uses 64 KiB; the benchmarks move
/// single bytes, so the value only matters for the backpressure tests).
pub const PIPE_CAPACITY: usize = 65_536;

/// Errors from pipe operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeError {
    /// Writing to a pipe with no readers (EPIPE / SIGPIPE territory).
    BrokenPipe,
    /// Writing more than the remaining capacity (a real kernel would
    /// block; the simulation surfaces it so callers model the block).
    WouldBlock,
}

impl fmt::Display for PipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipeError::BrokenPipe => write!(f, "broken pipe: no readers"),
            PipeError::WouldBlock => write!(f, "pipe full: write would block"),
        }
    }
}

impl std::error::Error for PipeError {}

/// A bounded in-kernel pipe.
///
/// # Example
///
/// ```
/// use xover_guestos::pipe::Pipe;
///
/// let mut pipe = Pipe::new();
/// pipe.write(b"x")?;
/// assert_eq!(pipe.read(1), b"x");
/// assert!(pipe.is_empty());
/// # Ok::<(), xover_guestos::pipe::PipeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pipe {
    buf: VecDeque<u8>,
    capacity: usize,
    readers: u32,
    writers: u32,
}

impl Pipe {
    /// Creates a pipe with the default capacity and one reader + one
    /// writer reference (the two fds `pipe(2)` returns).
    pub fn new() -> Pipe {
        Pipe::with_capacity(PIPE_CAPACITY)
    }

    /// Creates a pipe with a specific capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Pipe {
        assert!(capacity > 0, "pipe capacity must be positive");
        Pipe {
            buf: VecDeque::new(),
            capacity,
            readers: 1,
            writers: 1,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Remaining capacity.
    pub fn space(&self) -> usize {
        self.capacity - self.buf.len()
    }

    /// Number of live reader references.
    pub fn readers(&self) -> u32 {
        self.readers
    }

    /// Number of live writer references.
    pub fn writers(&self) -> u32 {
        self.writers
    }

    /// Adds one reader reference (a read fd was duplicated/inherited).
    pub fn add_reader(&mut self) {
        self.readers += 1;
    }

    /// Adds one writer reference (a write fd was duplicated/inherited).
    pub fn add_writer(&mut self) {
        self.writers += 1;
    }

    /// Drops one reader reference (a read fd was closed).
    pub fn close_reader(&mut self) {
        self.readers = self.readers.saturating_sub(1);
    }

    /// Drops one writer reference (a write fd was closed).
    pub fn close_writer(&mut self) {
        self.writers = self.writers.saturating_sub(1);
    }

    /// Whether both ends are fully closed.
    pub fn is_defunct(&self) -> bool {
        self.readers == 0 && self.writers == 0
    }

    /// Writes `data` into the pipe.
    ///
    /// # Errors
    ///
    /// * [`PipeError::BrokenPipe`] if no readers remain.
    /// * [`PipeError::WouldBlock`] if `data` exceeds the free space.
    pub fn write(&mut self, data: &[u8]) -> Result<usize, PipeError> {
        if self.readers == 0 {
            return Err(PipeError::BrokenPipe);
        }
        if data.len() > self.space() {
            return Err(PipeError::WouldBlock);
        }
        self.buf.extend(data);
        Ok(data.len())
    }

    /// Reads up to `len` bytes. Returns fewer (possibly zero — EOF if no
    /// writers remain) when the buffer has less.
    pub fn read(&mut self, len: usize) -> Vec<u8> {
        let n = len.min(self.buf.len());
        self.buf.drain(..n).collect()
    }

    /// Whether a read of any size would return data now.
    pub fn readable(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Whether a reader at EOF: empty and no writers.
    pub fn at_eof(&self) -> bool {
        self.buf.is_empty() && self.writers == 0
    }
}

impl Default for Pipe {
    fn default() -> Pipe {
        Pipe::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_fifo_order() {
        let mut p = Pipe::new();
        p.write(b"abc").unwrap();
        p.write(b"de").unwrap();
        assert_eq!(p.read(4), b"abcd");
        assert_eq!(p.read(10), b"e");
        assert!(p.is_empty());
    }

    #[test]
    fn capacity_backpressure() {
        let mut p = Pipe::with_capacity(4);
        p.write(b"abcd").unwrap();
        assert_eq!(p.write(b"e"), Err(PipeError::WouldBlock));
        p.read(2);
        assert_eq!(p.write(b"ef"), Ok(2));
    }

    #[test]
    fn broken_pipe_after_readers_close() {
        let mut p = Pipe::new();
        p.close_reader();
        assert_eq!(p.write(b"x"), Err(PipeError::BrokenPipe));
    }

    #[test]
    fn eof_semantics() {
        let mut p = Pipe::new();
        p.write(b"x").unwrap();
        p.close_writer();
        assert!(!p.at_eof(), "buffered data still readable");
        assert_eq!(p.read(1), b"x");
        assert!(p.at_eof());
        assert!(p.read(1).is_empty());
    }

    #[test]
    fn defunct_when_both_ends_closed() {
        let mut p = Pipe::new();
        assert!(!p.is_defunct());
        p.close_reader();
        p.close_writer();
        assert!(p.is_defunct());
        // Double close saturates.
        p.close_reader();
        assert_eq!(p.readers(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Pipe::with_capacity(0);
    }
}
