//! The syscall surface and its calibrated costs.
//!
//! Each syscall's *body* cost (cycles, instructions) is a workload
//! constant calibrated so that the native lmbench rows of the paper's
//! Table 4 (latencies) and Table 7 (instruction counts) are reproduced;
//! every *overhead* — trap, dispatch, redirection, world switches — is
//! charged by the code paths that actually execute, so the deltas the
//! paper reports emerge from execution rather than being assumed.

use std::fmt;

use crate::fs::{FileStat, FsError};
use crate::pipe::PipeError;
use crate::process::{Fd, Pid};

/// Cycles charged by the in-kernel syscall dispatcher (table lookup,
/// argument marshalling) for every syscall, on top of the trap itself.
pub const DISPATCH_CYCLES: u64 = 160;
/// Instructions retired by the dispatcher.
pub const DISPATCH_INSTRUCTIONS: u64 = 120;

/// A system call request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// The empty syscall (lmbench "NULL system call", implemented as
    /// `getppid`-class work).
    Null,
    /// The empty I/O: read one byte from `/dev/zero` (lmbench "NULL I/O").
    NullIo,
    /// Returns the parent pid.
    Getppid,
    /// Opens a path, optionally creating it.
    Open {
        /// Path to open.
        path: String,
        /// Create if absent.
        create: bool,
    },
    /// Closes a descriptor.
    Close {
        /// Descriptor to close.
        fd: Fd,
    },
    /// Reads up to `len` bytes from a descriptor.
    Read {
        /// Source descriptor.
        fd: Fd,
        /// Maximum bytes to read.
        len: usize,
    },
    /// Writes bytes to a descriptor.
    Write {
        /// Destination descriptor.
        fd: Fd,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Stats a path.
    Stat {
        /// Path to stat.
        path: String,
    },
    /// Stats an open descriptor.
    Fstat {
        /// Descriptor to stat.
        fd: Fd,
    },
    /// Creates a pipe, returning (read fd, write fd).
    Pipe,
    /// Removes a path.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// Duplicates a descriptor into the lowest free slot.
    Dup {
        /// Descriptor to duplicate.
        fd: Fd,
    },
    /// Repositions a file descriptor's offset (absolute).
    Lseek {
        /// Descriptor to seek.
        fd: Fd,
        /// New absolute offset.
        offset: u64,
    },
    /// Returns the calling process's pid.
    Getpid,
    /// Forks the current process: clones the descriptor table into a new
    /// address space (lmbench's pipe benchmark forks its peer).
    Fork,
}

impl Syscall {
    /// The cost-class of this call.
    pub fn kind(&self) -> SyscallKind {
        match self {
            Syscall::Null => SyscallKind::Null,
            Syscall::NullIo => SyscallKind::NullIo,
            Syscall::Getppid => SyscallKind::Getppid,
            Syscall::Open { .. } => SyscallKind::Open,
            Syscall::Close { .. } => SyscallKind::Close,
            Syscall::Read { .. } => SyscallKind::Read,
            Syscall::Write { .. } => SyscallKind::Write,
            Syscall::Stat { .. } => SyscallKind::Stat,
            Syscall::Fstat { .. } => SyscallKind::Fstat,
            Syscall::Pipe => SyscallKind::Pipe,
            Syscall::Unlink { .. } => SyscallKind::Unlink,
            Syscall::Dup { .. } => SyscallKind::Dup,
            Syscall::Lseek { .. } => SyscallKind::Lseek,
            Syscall::Getpid => SyscallKind::Getpid,
            Syscall::Fork => SyscallKind::Fork,
        }
    }

    /// Approximate bytes of argument + result data a *redirected* version
    /// of this call must move between worlds (registers handle the rest).
    /// Shared-memory paths copy this once; the copying baseline of
    /// ShadowContext copies it twice.
    pub fn transfer_bytes(&self) -> usize {
        match self {
            Syscall::Null | Syscall::Getppid | Syscall::Getpid | Syscall::Pipe | Syscall::Fork => 0,
            Syscall::Dup { .. } | Syscall::Lseek { .. } => 8,
            Syscall::NullIo => 1,
            Syscall::Open { path, .. } => path.len() + 8,
            Syscall::Close { .. } => 8,
            Syscall::Read { len, .. } => len + 16,
            Syscall::Write { data, .. } => data.len() + 16,
            Syscall::Stat { path } => path.len() + 144, // struct stat
            Syscall::Fstat { .. } => 8 + 144,
            Syscall::Unlink { path } => path.len(),
        }
    }
}

impl fmt::Display for Syscall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Syscall::Null => write!(f, "null"),
            Syscall::NullIo => write!(f, "null-io"),
            Syscall::Getppid => write!(f, "getppid"),
            Syscall::Open { path, .. } => write!(f, "open({path})"),
            Syscall::Close { fd } => write!(f, "close({fd})"),
            Syscall::Read { fd, len } => write!(f, "read({fd}, {len})"),
            Syscall::Write { fd, data } => write!(f, "write({fd}, {} bytes)", data.len()),
            Syscall::Stat { path } => write!(f, "stat({path})"),
            Syscall::Fstat { fd } => write!(f, "fstat({fd})"),
            Syscall::Pipe => write!(f, "pipe()"),
            Syscall::Unlink { path } => write!(f, "unlink({path})"),
            Syscall::Dup { fd } => write!(f, "dup({fd})"),
            Syscall::Lseek { fd, offset } => write!(f, "lseek({fd}, {offset})"),
            Syscall::Getpid => write!(f, "getpid()"),
            Syscall::Fork => write!(f, "fork()"),
        }
    }
}

/// Cost classes of syscalls, with calibrated body costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// NULL syscall.
    Null,
    /// One-byte `/dev/zero` read.
    NullIo,
    /// `getppid`.
    Getppid,
    /// `open`.
    Open,
    /// `close`.
    Close,
    /// `read`.
    Read,
    /// `write`.
    Write,
    /// `stat`.
    Stat,
    /// `fstat`.
    Fstat,
    /// `pipe` creation.
    Pipe,
    /// `unlink`.
    Unlink,
    /// `dup`.
    Dup,
    /// `lseek`.
    Lseek,
    /// `getpid`.
    Getpid,
    /// `fork`.
    Fork,
}

impl SyscallKind {
    /// Cycles the syscall body burns in the kernel (excluding trap and
    /// dispatch). Calibrated against Table 4's guest-native latencies at
    /// 3.4 GHz.
    pub fn body_cycles(self) -> u64 {
        match self {
            SyscallKind::Null | SyscallKind::Getppid => 626,
            SyscallKind::NullIo => 796,
            SyscallKind::Open => 2650,
            SyscallKind::Close => 1322,
            SyscallKind::Read => 800,
            SyscallKind::Write => 780,
            SyscallKind::Stat => 1510,
            SyscallKind::Fstat => 900,
            SyscallKind::Pipe => 1500,
            SyscallKind::Unlink => 1200,
            SyscallKind::Dup => 450,
            SyscallKind::Lseek => 380,
            SyscallKind::Getpid => 600,
            // fork: page-table duplication dominates.
            SyscallKind::Fork => 95_000,
        }
    }

    /// Instructions the body retires. Calibrated against Table 7's
    /// native-Linux instruction counts (which include lmbench's user-side
    /// stub of ~40 instructions charged separately by the workload crate).
    pub fn body_instructions(self) -> u64 {
        match self {
            SyscallKind::Null | SyscallKind::Getppid => 1665,
            SyscallKind::NullIo => 300,
            SyscallKind::Open => 1000,
            SyscallKind::Close => 599,
            SyscallKind::Read => 299,
            SyscallKind::Write => 256,
            SyscallKind::Stat => 1033,
            SyscallKind::Fstat => 303,
            SyscallKind::Pipe => 350,
            SyscallKind::Unlink => 400,
            SyscallKind::Dup => 160,
            SyscallKind::Lseek => 130,
            SyscallKind::Getpid => 1600,
            SyscallKind::Fork => 28_000,
        }
    }
}

/// Successful syscall results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallRet {
    /// No payload.
    Unit,
    /// A new descriptor.
    Fd(Fd),
    /// Bytes read.
    Bytes(Vec<u8>),
    /// Byte count written.
    Written(usize),
    /// File metadata.
    Stat(FileStat),
    /// A pid.
    Pid(Pid),
    /// A pipe's (read, write) descriptor pair.
    PipePair(Fd, Fd),
}

/// Syscall failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallError {
    /// Descriptor not open.
    BadFd {
        /// The offending descriptor.
        fd: Fd,
    },
    /// Filesystem error.
    Fs(FsError),
    /// Pipe error.
    Pipe(PipeError),
    /// The kernel has no current process to run the call.
    NoCurrentProcess,
    /// The call was issued while the platform is executing a different VM.
    WrongVm,
}

impl fmt::Display for SyscallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyscallError::BadFd { fd } => write!(f, "bad file descriptor: {fd}"),
            SyscallError::Fs(e) => write!(f, "{e}"),
            SyscallError::Pipe(e) => write!(f, "{e}"),
            SyscallError::NoCurrentProcess => write!(f, "no current process"),
            SyscallError::WrongVm => write!(f, "syscall issued while another VM is executing"),
        }
    }
}

impl std::error::Error for SyscallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyscallError::Fs(e) => Some(e),
            SyscallError::Pipe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for SyscallError {
    fn from(e: FsError) -> SyscallError {
        SyscallError::Fs(e)
    }
}

impl From<PipeError> for SyscallError {
    fn from(e: PipeError) -> SyscallError {
        SyscallError::Pipe(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_one_to_one() {
        assert_eq!(Syscall::Null.kind(), SyscallKind::Null);
        assert_eq!(
            Syscall::Open {
                path: "/x".into(),
                create: false
            }
            .kind(),
            SyscallKind::Open
        );
        assert_eq!(Syscall::Pipe.kind(), SyscallKind::Pipe);
    }

    #[test]
    fn null_syscall_native_latency_matches_paper() {
        // enter(100) + dispatch(160) + body + exit(100) = 986 cycles
        // = 0.29 us at 3.4 GHz, Table 4's guest-native NULL syscall.
        let total = 100 + DISPATCH_CYCLES + SyscallKind::Null.body_cycles() + 100;
        assert_eq!(total, 986);
    }

    #[test]
    fn open_close_pair_matches_table4_native() {
        // Two syscalls: 2*(100+160+100) + open + close = 4692 cycles
        // = 1.38 us, Table 4's guest-native open&close row.
        let per_call_overhead = 100 + DISPATCH_CYCLES + 100;
        let total = 2 * per_call_overhead
            + SyscallKind::Open.body_cycles()
            + SyscallKind::Close.body_cycles();
        assert_eq!(total, 4692);
    }

    #[test]
    fn stat_latency_matches_table4_native() {
        let total = 100 + DISPATCH_CYCLES + SyscallKind::Stat.body_cycles() + 100;
        // 1870 cycles = 0.55 us.
        assert_eq!(total, 1870);
    }

    #[test]
    fn transfer_bytes_scale_with_payload() {
        assert_eq!(Syscall::Null.transfer_bytes(), 0);
        let w = Syscall::Write {
            fd: Fd(1),
            data: vec![0; 100],
        };
        assert_eq!(w.transfer_bytes(), 116);
        let s = Syscall::Stat { path: "/ab".into() };
        assert_eq!(s.transfer_bytes(), 3 + 144);
    }

    #[test]
    fn error_conversions() {
        let e: SyscallError = FsError::NotFound { path: "/x".into() }.into();
        assert!(matches!(e, SyscallError::Fs(_)));
        let e: SyscallError = PipeError::BrokenPipe.into();
        assert!(matches!(e, SyscallError::Pipe(_)));
    }

    #[test]
    fn display_is_informative() {
        let s = Syscall::Read { fd: Fd(3), len: 10 };
        assert_eq!(s.to_string(), "read(fd:3, 10)");
    }
}
