//! An in-RAM filesystem.
//!
//! Flat namespace (paths are opaque strings), inode-backed, with the
//! metadata `stat`/`fstat` report. Enough filesystem for lmbench's file
//! micro-ops and the utility-tool traces, with real side effects so tests
//! can verify that redirected syscalls execute in the *other* VM's FS.

use std::collections::HashMap;
use std::fmt;

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ino(pub u64);

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

/// Metadata returned by `stat`/`fstat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub ino: Ino,
    /// File size in bytes.
    pub size: u64,
    /// Unix-style mode bits.
    pub mode: u32,
    /// Link count.
    pub nlink: u32,
}

#[derive(Debug, Clone)]
struct Inode {
    data: Vec<u8>,
    mode: u32,
    nlink: u32,
}

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound {
        /// The path looked up.
        path: String,
    },
    /// Inode number is stale (file was removed).
    StaleInode {
        /// The stale inode.
        ino: Ino,
    },
    /// Path already exists (exclusive create).
    Exists {
        /// The conflicting path.
        path: String,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound { path } => write!(f, "no such file: {path}"),
            FsError::StaleInode { ino } => write!(f, "stale inode: {ino}"),
            FsError::Exists { path } => write!(f, "file exists: {path}"),
        }
    }
}

impl std::error::Error for FsError {}

/// The in-RAM filesystem: a flat map of paths to inodes.
///
/// # Example
///
/// ```
/// use xover_guestos::fs::RamFs;
///
/// let mut fs = RamFs::new();
/// let ino = fs.create("/etc/passwd", 0o644)?;
/// fs.write_at(ino, 0, b"root:x:0:0")?;
/// assert_eq!(fs.stat("/etc/passwd")?.size, 10);
/// # Ok::<(), xover_guestos::fs::FsError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RamFs {
    paths: HashMap<String, Ino>,
    inodes: HashMap<u64, Inode>,
    next_ino: u64,
}

impl RamFs {
    /// Creates an empty filesystem.
    pub fn new() -> RamFs {
        RamFs {
            next_ino: 1,
            ..RamFs::default()
        }
    }

    /// Creates a filesystem pre-populated with the files the benchmark
    /// workloads expect (`/dev/zero`, `/dev/null`, a few `/etc` files and
    /// `/proc` entries for the utility traces).
    pub fn with_standard_files() -> RamFs {
        let mut fs = RamFs::new();
        for (path, mode, content) in [
            ("/dev/zero", 0o666, &[0u8; 64][..]),
            ("/dev/null", 0o666, &[][..]),
            (
                "/etc/passwd",
                0o644,
                b"root:x:0:0:root:/root:/bin/sh\n".as_slice(),
            ),
            ("/etc/group", 0o644, b"root:x:0:\n".as_slice()),
            ("/proc/uptime", 0o444, b"86400.00 43200.00\n".as_slice()),
            (
                "/proc/loadavg",
                0o444,
                b"0.01 0.02 0.00 1/64 1234\n".as_slice(),
            ),
            ("/proc/stat", 0o444, b"cpu 1 2 3 4\n".as_slice()),
            ("/var/run/utmp", 0o644, b"user tty1\n".as_slice()),
            ("/tmp/file", 0o644, b"benchmark scratch file\n".as_slice()),
        ] {
            let ino = fs.create(path, mode).expect("fresh fs has no conflicts");
            fs.write_at(ino, 0, content).expect("inode just created");
        }
        fs
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.paths.len()
    }

    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if the path is taken.
    pub fn create(&mut self, path: &str, mode: u32) -> Result<Ino, FsError> {
        if self.paths.contains_key(path) {
            return Err(FsError::Exists {
                path: path.to_string(),
            });
        }
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        self.inodes.insert(
            ino.0,
            Inode {
                data: Vec::new(),
                mode,
                nlink: 1,
            },
        );
        self.paths.insert(path.to_string(), ino);
        Ok(ino)
    }

    /// Looks up a path.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent.
    pub fn lookup(&self, path: &str) -> Result<Ino, FsError> {
        self.paths
            .get(path)
            .copied()
            .ok_or_else(|| FsError::NotFound {
                path: path.to_string(),
            })
    }

    /// Removes a path (the inode is freed when its link count drops).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        let ino = self.paths.remove(path).ok_or_else(|| FsError::NotFound {
            path: path.to_string(),
        })?;
        if let Some(inode) = self.inodes.get_mut(&ino.0) {
            inode.nlink -= 1;
            if inode.nlink == 0 {
                self.inodes.remove(&ino.0);
            }
        }
        Ok(())
    }

    /// Stats a path.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent.
    pub fn stat(&self, path: &str) -> Result<FileStat, FsError> {
        let ino = self.lookup(path)?;
        self.fstat(ino)
    }

    /// Stats an inode.
    ///
    /// # Errors
    ///
    /// [`FsError::StaleInode`] if the inode was removed.
    pub fn fstat(&self, ino: Ino) -> Result<FileStat, FsError> {
        let inode = self.inodes.get(&ino.0).ok_or(FsError::StaleInode { ino })?;
        Ok(FileStat {
            ino,
            size: inode.data.len() as u64,
            mode: inode.mode,
            nlink: inode.nlink,
        })
    }

    /// Reads up to `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`FsError::StaleInode`] if the inode was removed.
    pub fn read_at(&self, ino: Ino, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let inode = self.inodes.get(&ino.0).ok_or(FsError::StaleInode { ino })?;
        let start = (offset as usize).min(inode.data.len());
        let end = (start + len).min(inode.data.len());
        Ok(inode.data[start..end].to_vec())
    }

    /// Writes `data` at `offset`, extending the file as needed. Returns
    /// bytes written.
    ///
    /// # Errors
    ///
    /// [`FsError::StaleInode`] if the inode was removed.
    pub fn write_at(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        let inode = self
            .inodes
            .get_mut(&ino.0)
            .ok_or(FsError::StaleInode { ino })?;
        let end = offset as usize + data.len();
        if inode.data.len() < end {
            inode.data.resize(end, 0);
        }
        inode.data[offset as usize..end].copy_from_slice(data);
        Ok(data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_unlink() {
        let mut fs = RamFs::new();
        let ino = fs.create("/a", 0o644).unwrap();
        assert_eq!(fs.lookup("/a").unwrap(), ino);
        assert!(matches!(
            fs.create("/a", 0o644),
            Err(FsError::Exists { .. })
        ));
        fs.unlink("/a").unwrap();
        assert!(matches!(fs.lookup("/a"), Err(FsError::NotFound { .. })));
        assert!(matches!(fs.fstat(ino), Err(FsError::StaleInode { .. })));
    }

    #[test]
    fn read_write_round_trip_and_size() {
        let mut fs = RamFs::new();
        let ino = fs.create("/f", 0o644).unwrap();
        assert_eq!(fs.write_at(ino, 0, b"hello").unwrap(), 5);
        assert_eq!(fs.read_at(ino, 0, 5).unwrap(), b"hello");
        assert_eq!(fs.read_at(ino, 1, 3).unwrap(), b"ell");
        // Sparse write extends with zeros.
        fs.write_at(ino, 8, b"!").unwrap();
        let stat = fs.fstat(ino).unwrap();
        assert_eq!(stat.size, 9);
        assert_eq!(fs.read_at(ino, 5, 3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn read_past_eof_is_short() {
        let mut fs = RamFs::new();
        let ino = fs.create("/f", 0o644).unwrap();
        fs.write_at(ino, 0, b"ab").unwrap();
        assert_eq!(fs.read_at(ino, 0, 100).unwrap(), b"ab");
        assert!(fs.read_at(ino, 10, 5).unwrap().is_empty());
    }

    #[test]
    fn standard_files_present() {
        let fs = RamFs::with_standard_files();
        assert!(fs.stat("/dev/zero").is_ok());
        assert!(fs.stat("/etc/passwd").unwrap().size > 0);
        assert!(fs.file_count() >= 8);
    }

    #[test]
    fn stat_reports_mode_and_nlink() {
        let mut fs = RamFs::new();
        fs.create("/m", 0o755).unwrap();
        let s = fs.stat("/m").unwrap();
        assert_eq!(s.mode, 0o755);
        assert_eq!(s.nlink, 1);
        assert_eq!(s.size, 0);
    }
}
