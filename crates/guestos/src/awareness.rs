//! Guest-OS awareness of world switches (§5.3 software support).
//!
//! CrossOver switches worlds *under* the guest OS: "after the call, the
//! OS still thinks that the current running process is process-a. Thus,
//! if there comes a timer interrupt that further triggers a context
//! switch, the OS will save process-b's context to the data structure of
//! process-a." §5.3 fixes this by making the scheduler reload the process
//! state before a context switch (as the authors did in xv6), and handles
//! the single-core lock optimizations "by preventing more than one vcpu
//! with the same ID from executing the same piece of code."
//!
//! This module models both the hazard and the fix:
//!
//! * [`TimerOutcome`] — what a timer interrupt observes: a consistent
//!   kernel, or a world/OS mismatch that an *unaware* kernel would turn
//!   into state corruption and an *aware* kernel repairs.
//! * [`ReentryGuard`] — the critical-section guard that refuses a second
//!   world executing the same single-core-optimized code path.

use std::fmt;

/// What a timer interrupt found when it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerOutcome {
    /// The running address space matches the OS's current process.
    Consistent,
    /// Mismatch detected and repaired: the scheduler reloaded the actual
    /// running process's identity before saving any context (§5.3 fix).
    Repaired {
        /// CR3 the CPU was actually running.
        actual_cr3: u64,
    },
}

/// The unrecoverable condition an *unaware* kernel reaches: it saved the
/// wrong world's context into a process structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCorruption {
    /// CR3 the OS believed was running.
    pub expected_cr3: u64,
    /// CR3 that was actually running.
    pub actual_cr3: u64,
}

impl fmt::Display for StateCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel saved context of cr3 {:#x} into the process owning cr3 {:#x}",
            self.actual_cr3, self.expected_cr3
        )
    }
}

impl std::error::Error for StateCorruption {}

/// Error for the single-core lock hazard: a second world entered a
/// critical section that single-vCPU optimizations assume is unshared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReentryViolation {
    /// Identifier of the world already inside.
    pub holder: u64,
    /// Identifier of the world that tried to enter.
    pub intruder: u64,
}

impl fmt::Display for ReentryViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "world {:#x} entered a single-core critical section held by world {:#x}",
            self.intruder, self.holder
        )
    }
}

impl std::error::Error for ReentryViolation {}

/// The §5.3 re-entry guard: "preventing more than one vcpu with the same
/// ID from executing the same piece of code."
///
/// # Example
///
/// ```
/// use xover_guestos::awareness::ReentryGuard;
///
/// let mut guard = ReentryGuard::new();
/// guard.enter(0xA).unwrap();
/// assert!(guard.enter(0xB).is_err(), "second world refused");
/// guard.exit(0xA).unwrap();
/// assert!(guard.enter(0xB).is_ok());
/// # guard.exit(0xB).unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReentryGuard {
    holder: Option<u64>,
    refusals: u64,
}

impl ReentryGuard {
    /// Creates an unheld guard.
    pub fn new() -> ReentryGuard {
        ReentryGuard::default()
    }

    /// The world currently inside, if any.
    pub fn holder(&self) -> Option<u64> {
        self.holder
    }

    /// How many entries were refused so far.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Enters the critical section as `world`. Re-entry by the *same*
    /// world is permitted (it is one logical vCPU).
    ///
    /// # Errors
    ///
    /// [`ReentryViolation`] if a different world is inside.
    pub fn enter(&mut self, world: u64) -> Result<(), ReentryViolation> {
        match self.holder {
            None => {
                self.holder = Some(world);
                Ok(())
            }
            Some(h) if h == world => Ok(()),
            Some(h) => {
                self.refusals += 1;
                Err(ReentryViolation {
                    holder: h,
                    intruder: world,
                })
            }
        }
    }

    /// Leaves the critical section.
    ///
    /// # Errors
    ///
    /// [`ReentryViolation`] if `world` is not the holder (an exit from a
    /// section it never entered — also a §5.3-class bug).
    pub fn exit(&mut self, world: u64) -> Result<(), ReentryViolation> {
        match self.holder {
            Some(h) if h == world => {
                self.holder = None;
                Ok(())
            }
            other => Err(ReentryViolation {
                holder: other.unwrap_or(0),
                intruder: world,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_allows_single_holder_and_reentry_by_same_world() {
        let mut g = ReentryGuard::new();
        g.enter(1).unwrap();
        g.enter(1).unwrap();
        assert_eq!(g.holder(), Some(1));
    }

    #[test]
    fn guard_refuses_second_world() {
        let mut g = ReentryGuard::new();
        g.enter(1).unwrap();
        let err = g.enter(2).unwrap_err();
        assert_eq!(
            err,
            ReentryViolation {
                holder: 1,
                intruder: 2
            }
        );
        assert_eq!(g.refusals(), 1);
    }

    #[test]
    fn exit_by_non_holder_is_a_violation() {
        let mut g = ReentryGuard::new();
        g.enter(1).unwrap();
        assert!(g.exit(2).is_err());
        assert!(g.exit(1).is_ok());
        assert!(g.exit(1).is_err(), "double exit");
    }

    #[test]
    fn corruption_display_names_both_worlds() {
        let c = StateCorruption {
            expected_cr3: 0x1000,
            actual_cr3: 0x2000,
        };
        let s = c.to_string();
        assert!(s.contains("0x1000"));
        assert!(s.contains("0x2000"));
    }
}
