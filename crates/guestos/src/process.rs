//! Processes: descriptor tables, parent links, address spaces.

use std::fmt;

use mmu::pagetable::PageTable;

use crate::fs::Ino;

/// Process identifier, unique within one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// File descriptor index within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd:{}", self.0)
    }
}

/// What a file descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdObject {
    /// An open regular file with a seek offset.
    File {
        /// Backing inode.
        ino: Ino,
        /// Current seek offset.
        offset: u64,
    },
    /// Read end of a kernel pipe (index into the kernel's pipe table).
    PipeRead {
        /// Pipe table index.
        pipe: usize,
    },
    /// Write end of a kernel pipe.
    PipeWrite {
        /// Pipe table index.
        pipe: usize,
    },
}

/// Scheduler state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProcState {
    /// Ready to run.
    #[default]
    Runnable,
    /// Waiting for an event (pipe data, redirected-call completion).
    Blocked,
    /// Exited; slot awaits reaping.
    Zombie,
}

/// A process: name, parent, address space and descriptor table.
///
/// The address space is a real [`PageTable`] rooted at a per-process CR3
/// value. Helper contexts for cross-VM calls are created with a *fixed,
/// well-known* CR3 so that the paper's §4.3 requirement — "the caller and
/// callee must have the same value in CR3" — holds across VMs.
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    ppid: Pid,
    name: String,
    state: ProcState,
    page_table: PageTable,
    fds: Vec<Option<FdObject>>,
}

impl Process {
    /// Creates a process. Used by the kernel; library users go through
    /// [`crate::kernel::Kernel::spawn`].
    pub(crate) fn new(pid: Pid, ppid: Pid, name: &str, cr3: u64) -> Process {
        Process {
            pid,
            ppid,
            name: name.to_string(),
            state: ProcState::Runnable,
            page_table: PageTable::new(cr3),
            fds: Vec::new(),
        }
    }

    /// This process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Parent pid.
    pub fn ppid(&self) -> Pid {
        self.ppid
    }

    /// Process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scheduler state.
    pub fn state(&self) -> ProcState {
        self.state
    }

    /// Sets the scheduler state.
    pub fn set_state(&mut self, state: ProcState) {
        self.state = state;
    }

    /// CR3 root of this process's address space.
    pub fn cr3(&self) -> u64 {
        self.page_table.cr3()
    }

    /// The process page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable page table access (the kernel maps pages on behalf of the
    /// process).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Installs `obj` in the lowest free descriptor slot.
    pub fn install_fd(&mut self, obj: FdObject) -> Fd {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(obj);
                return Fd(i as u32);
            }
        }
        self.fds.push(Some(obj));
        Fd(self.fds.len() as u32 - 1)
    }

    /// Looks up a descriptor.
    pub fn fd(&self, fd: Fd) -> Option<&FdObject> {
        self.fds.get(fd.0 as usize).and_then(|s| s.as_ref())
    }

    /// Mutable descriptor lookup.
    pub fn fd_mut(&mut self, fd: Fd) -> Option<&mut FdObject> {
        self.fds.get_mut(fd.0 as usize).and_then(|s| s.as_mut())
    }

    /// Removes a descriptor, returning what it referred to.
    pub fn remove_fd(&mut self, fd: Fd) -> Option<FdObject> {
        self.fds.get_mut(fd.0 as usize).and_then(|s| s.take())
    }

    /// Snapshot of the live descriptor table as (index, object) pairs —
    /// what `fork` copies into the child.
    pub fn fds_snapshot(&self) -> Vec<(u32, FdObject)> {
        self.fds
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|obj| (i as u32, obj)))
            .collect()
    }

    /// Number of live descriptors.
    pub fn open_fd_count(&self) -> usize {
        self.fds.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc() -> Process {
        Process::new(Pid(2), Pid(1), "test", 0x2000)
    }

    #[test]
    fn identity_and_parent() {
        let p = proc();
        assert_eq!(p.pid(), Pid(2));
        assert_eq!(p.ppid(), Pid(1));
        assert_eq!(p.name(), "test");
        assert_eq!(p.cr3(), 0x2000);
    }

    #[test]
    fn fd_table_reuses_lowest_slot() {
        let mut p = proc();
        let a = p.install_fd(FdObject::File {
            ino: Ino(1),
            offset: 0,
        });
        let b = p.install_fd(FdObject::File {
            ino: Ino(2),
            offset: 0,
        });
        assert_eq!(a, Fd(0));
        assert_eq!(b, Fd(1));
        p.remove_fd(a);
        let c = p.install_fd(FdObject::PipeRead { pipe: 0 });
        assert_eq!(c, Fd(0), "lowest free slot is reused, like POSIX");
        assert_eq!(p.open_fd_count(), 2);
    }

    #[test]
    fn fd_lookup_and_mutation() {
        let mut p = proc();
        let fd = p.install_fd(FdObject::File {
            ino: Ino(7),
            offset: 0,
        });
        if let Some(FdObject::File { offset, .. }) = p.fd_mut(fd) {
            *offset = 42;
        }
        assert!(matches!(
            p.fd(fd),
            Some(FdObject::File {
                ino: Ino(7),
                offset: 42
            })
        ));
        assert!(p.fd(Fd(99)).is_none());
    }

    #[test]
    fn state_transitions() {
        let mut p = proc();
        assert_eq!(p.state(), ProcState::Runnable);
        p.set_state(ProcState::Blocked);
        assert_eq!(p.state(), ProcState::Blocked);
        p.set_state(ProcState::Zombie);
        assert_eq!(p.state(), ProcState::Zombie);
    }
}
