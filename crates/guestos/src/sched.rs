//! A round-robin run queue for the guest scheduler.
//!
//! The baseline systems' latencies hinge on *when the servicing process
//! runs* (Proxos: "executed when the host process is scheduled"). This
//! run queue is the mechanism behind those wakeups; the cost of a pass is
//! charged by [`crate::kernel::Kernel::context_switch`], which callers
//! combine with queue decisions.

use std::collections::VecDeque;

use crate::process::Pid;

/// A FIFO round-robin run queue.
///
/// # Example
///
/// ```
/// use xover_guestos::process::Pid;
/// use xover_guestos::sched::RunQueue;
///
/// let mut rq = RunQueue::new();
/// rq.enqueue(Pid(1));
/// rq.enqueue(Pid(2));
/// assert_eq!(rq.pick_next(), Some(Pid(1)));
/// // pick_next rotates: the picked task goes to the back.
/// assert_eq!(rq.pick_next(), Some(Pid(2)));
/// assert_eq!(rq.pick_next(), Some(Pid(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunQueue {
    queue: VecDeque<Pid>,
}

impl RunQueue {
    /// Creates an empty queue.
    pub fn new() -> RunQueue {
        RunQueue::default()
    }

    /// Number of runnable tasks.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is runnable.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Adds a task to the back of the queue (no-op if already queued,
    /// preserving its position — a wakeup must not jump the line).
    pub fn enqueue(&mut self, pid: Pid) {
        if !self.queue.contains(&pid) {
            self.queue.push_back(pid);
        }
    }

    /// Removes a task wherever it is (blocking or exit).
    pub fn remove(&mut self, pid: Pid) -> bool {
        let before = self.queue.len();
        self.queue.retain(|&p| p != pid);
        before != self.queue.len()
    }

    /// Picks the next task and rotates it to the back (round robin).
    /// Returns `None` when idle.
    pub fn pick_next(&mut self) -> Option<Pid> {
        let pid = self.queue.pop_front()?;
        self.queue.push_back(pid);
        Some(pid)
    }

    /// Whether `pid` is queued.
    pub fn contains(&self, pid: Pid) -> bool {
        self.queue.contains(&pid)
    }

    /// Position of `pid` from the queue head (its wakeup distance in
    /// quanta — the quantity the [`hypervisor::sched::SchedModel`] load
    /// factor abstracts).
    pub fn distance(&self, pid: Pid) -> Option<usize> {
        self.queue.iter().position(|&p| p == pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotation() {
        let mut rq = RunQueue::new();
        for i in 1..=3 {
            rq.enqueue(Pid(i));
        }
        let order: Vec<u32> = (0..6).map(|_| rq.pick_next().unwrap().0).collect();
        assert_eq!(order, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn enqueue_is_idempotent_and_position_preserving() {
        let mut rq = RunQueue::new();
        rq.enqueue(Pid(1));
        rq.enqueue(Pid(2));
        rq.enqueue(Pid(1)); // double wakeup
        assert_eq!(rq.len(), 2);
        assert_eq!(rq.distance(Pid(1)), Some(0));
    }

    #[test]
    fn remove_and_idle() {
        let mut rq = RunQueue::new();
        rq.enqueue(Pid(1));
        assert!(rq.remove(Pid(1)));
        assert!(!rq.remove(Pid(1)));
        assert!(rq.is_empty());
        assert_eq!(rq.pick_next(), None);
    }

    #[test]
    fn distance_reflects_wakeup_latency() {
        let mut rq = RunQueue::new();
        for i in 1..=5 {
            rq.enqueue(Pid(i));
        }
        assert_eq!(rq.distance(Pid(5)), Some(4));
        rq.pick_next();
        assert_eq!(rq.distance(Pid(5)), Some(3));
        assert_eq!(rq.distance(Pid(9)), None);
    }
}
