//! An xv6-like guest operating system for the CrossOver reproduction.
//!
//! The paper's microbenchmarks are system calls (NULL syscall, NULL I/O,
//! `open`/`close`, `stat`, `pipe`) executed either natively or redirected
//! to another VM. For those measurements to be emergent rather than
//! hardcoded, the guests must have a real syscall path: a user→kernel trap,
//! a dispatcher, a syscall body with side effects on real kernel state, and
//! a return. This crate provides that OS:
//!
//! * [`fs`] — an in-RAM filesystem with inodes, sizes and mode bits.
//! * [`pipe`] — kernel pipe objects with bounded buffers.
//! * [`process`] — processes, file-descriptor tables, parent links, and
//!   per-process page tables rooted at unique CR3 values.
//! * [`syscall`] — the syscall surface ([`syscall::Syscall`]) and the
//!   calibrated per-syscall body costs.
//! * [`kernel`] — the [`kernel::Kernel`]: scheduler, syscall dispatcher
//!   (with the redirection hooks the case-study systems attach to), and
//!   process lifecycle.
//! * [`awareness`] — the §5.3 software support making the OS safe under
//!   world switches it did not perform itself.
//! * [`sched`] — the round-robin run queue behind redirected-call
//!   wakeups.
//!
//! One [`kernel::Kernel`] instance exists per VM; all its operations charge
//! work and transitions against the shared
//! [`hypervisor::platform::Platform`].
//!
//! # Example
//!
//! ```
//! use hypervisor::platform::Platform;
//! use hypervisor::vm::VmConfig;
//! use xover_guestos::kernel::Kernel;
//! use xover_guestos::syscall::{Syscall, SyscallRet};
//!
//! let mut p = Platform::new_default();
//! let vm = p.create_vm(VmConfig::default())?;
//! let mut kernel = Kernel::new(vm, "guest-a");
//! let pid = kernel.spawn(&mut p, "init")?;
//! p.vmentry(vm)?;
//! kernel.run(pid);
//! let ret = kernel.syscall(&mut p, Syscall::Getppid)?;
//! assert!(matches!(ret, SyscallRet::Pid(_)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod awareness;
pub mod fs;
pub mod kernel;
pub mod pipe;
pub mod process;
pub mod sched;
pub mod syscall;

pub use fs::{FileStat, RamFs};
pub use kernel::Kernel;
pub use process::{Pid, Process};
pub use syscall::{Syscall, SyscallError, SyscallRet};
