//! The guest kernel: process lifecycle, scheduling, and the syscall path.
//!
//! The syscall path is deliberately decomposed into its hardware steps —
//! [`Kernel::trap_enter`], dispatch, [`Kernel::execute_body`],
//! [`Kernel::trap_exit`] — because the case-study systems splice their
//! redirection machinery *between* those steps exactly where the paper's
//! Figure 2 diagrams do. [`Kernel::syscall`] is the native composition.

use hypervisor::platform::Platform;
use hypervisor::vm::VmId;
use machine::mode::CpuMode;
use machine::trace::TransitionKind;

use crate::awareness::{StateCorruption, TimerOutcome};
use crate::fs::RamFs;
use crate::pipe::Pipe;
use crate::process::{Fd, FdObject, Pid, ProcState, Process};
use crate::syscall::{Syscall, SyscallError, SyscallRet, DISPATCH_CYCLES, DISPATCH_INSTRUCTIONS};

/// The well-known CR3 value used by cross-VM *helper contexts* in every VM.
///
/// §4.3: "It is required that the caller and callee must have the same
/// value in CR3, since switching EPT will not change CR3." Kernels create
/// their helper context with this root so a VMFUNC from any VM's helper
/// lands in a valid (and identically-shaped) address space.
pub const HELPER_CR3: u64 = 0xC0FF_EE00_0000;

/// Cycles charged for copying one byte between user and kernel or across
/// a shared page (rep-movs style bulk copy, amortized).
pub const COPY_CYCLES_PER_8_BYTES: u64 = 1;

/// A guest kernel instance (one per VM).
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone)]
pub struct Kernel {
    vm: VmId,
    name: String,
    fs: RamFs,
    pipes: Vec<Pipe>,
    procs: Vec<Process>,
    current: Option<Pid>,
    helper: Option<Pid>,
    worldcall_aware: bool,
}

impl Kernel {
    /// Creates a kernel for `vm` with the standard file set.
    pub fn new(vm: VmId, name: &str) -> Kernel {
        Kernel {
            vm,
            name: name.to_string(),
            fs: RamFs::with_standard_files(),
            pipes: Vec::new(),
            procs: Vec::new(),
            current: None,
            helper: None,
            worldcall_aware: false,
        }
    }

    /// Enables the §5.3 scheduler fix: before acting on a timer
    /// interrupt, the kernel re-derives the running process from the
    /// actual CR3 instead of trusting its `current` bookkeeping.
    pub fn set_worldcall_aware(&mut self, aware: bool) -> &mut Kernel {
        self.worldcall_aware = aware;
        self
    }

    /// Whether the §5.3 fix is enabled.
    pub fn is_worldcall_aware(&self) -> bool {
        self.worldcall_aware
    }

    /// A timer interrupt fired while this kernel's VM was executing.
    ///
    /// Models the §5.3 hazard: if a `world_call` switched the address
    /// space underneath the OS, an unaware kernel saves the running
    /// world's context into the wrong process structure — an
    /// unrecoverable [`StateCorruption`]. An aware kernel re-derives the
    /// running process from CR3 (charging a small re-load cost) and
    /// repairs its bookkeeping.
    ///
    /// # Errors
    ///
    /// [`StateCorruption`] when unaware and the CR3 does not belong to
    /// the process the kernel believes is running.
    pub fn timer_tick(&mut self, platform: &mut Platform) -> Result<TimerOutcome, StateCorruption> {
        let actual_cr3 = platform.cpu().cr3();
        let expected_cr3 = self
            .current
            .and_then(|pid| self.process(pid))
            .map(|p| p.cr3());
        match expected_cr3 {
            Some(cr3) if cr3 == actual_cr3 => Ok(TimerOutcome::Consistent),
            _ if self.worldcall_aware => {
                // §5.3: "we make the OS scheduler aware of world_call by
                // reloading the process state before a context switch."
                platform
                    .cpu_mut()
                    .charge_work(350, 90, "reload process state after world switch");
                let running = self
                    .procs
                    .iter()
                    .find(|p| p.cr3() == actual_cr3)
                    .map(|p| p.pid());
                self.current = running;
                Ok(TimerOutcome::Repaired { actual_cr3 })
            }
            expected => Err(StateCorruption {
                expected_cr3: expected.unwrap_or(0),
                actual_cr3,
            }),
        }
    }

    /// The VM this kernel runs in.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Kernel (VM) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The filesystem.
    pub fn fs(&self) -> &RamFs {
        &self.fs
    }

    /// Mutable filesystem access (test setup).
    pub fn fs_mut(&mut self) -> &mut RamFs {
        &mut self.fs
    }

    /// The currently running process, if any.
    pub fn current(&self) -> Option<Pid> {
        self.current
    }

    /// The helper context used for incoming cross-VM calls, if spawned.
    pub fn helper(&self) -> Option<Pid> {
        self.helper
    }

    /// Number of processes (including zombies).
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Looks up a process.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.iter().find(|p| p.pid() == pid)
    }

    /// Mutable process lookup.
    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.iter_mut().find(|p| p.pid() == pid)
    }

    fn unique_cr3(&self, pid: Pid) -> u64 {
        // Per-VM, per-process unique page-table root.
        ((u64::from(self.vm.index()) + 1) << 32) | (u64::from(pid.0) << 12)
    }

    /// Spawns a process. The first process is its own parent (like init).
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` kept for future resource limits.
    pub fn spawn(&mut self, platform: &mut Platform, name: &str) -> Result<Pid, SyscallError> {
        let pid = Pid(self.procs.len() as u32 + 1);
        let ppid = self.current.unwrap_or(pid);
        let cr3 = self.unique_cr3(pid);
        self.procs.push(Process::new(pid, ppid, name, cr3));
        // Process creation costs a little kernel work (page-table setup).
        platform
            .cpu_mut()
            .charge_work(3000, 900, "process creation");
        Ok(pid)
    }

    /// Spawns the cross-VM *helper context* with the well-known
    /// [`HELPER_CR3`] shared by all VMs (§4.3). Idempotent.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` kept for API symmetry.
    pub fn spawn_helper(&mut self, platform: &mut Platform) -> Result<Pid, SyscallError> {
        if let Some(pid) = self.helper {
            return Ok(pid);
        }
        let pid = Pid(self.procs.len() as u32 + 1);
        let ppid = self.current.unwrap_or(pid);
        self.procs
            .push(Process::new(pid, ppid, "helper", HELPER_CR3));
        self.helper = Some(pid);
        platform
            .cpu_mut()
            .charge_work(3000, 900, "helper context creation");
        Ok(pid)
    }

    /// Makes `pid` the current process without charging a context switch
    /// (setup only).
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not exist.
    pub fn run(&mut self, pid: Pid) -> &mut Kernel {
        assert!(self.process(pid).is_some(), "no such process: {pid}");
        self.current = Some(pid);
        self
    }

    /// Context switch to `pid`, charging the scheduler + switch cost and
    /// loading its CR3 if this kernel's VM is executing.
    ///
    /// # Errors
    ///
    /// [`SyscallError::NoCurrentProcess`] if `pid` does not exist.
    pub fn context_switch(
        &mut self,
        platform: &mut Platform,
        pid: Pid,
    ) -> Result<(), SyscallError> {
        let cr3 = self
            .process(pid)
            .ok_or(SyscallError::NoCurrentProcess)?
            .cr3();
        platform.cpu_mut().touch(TransitionKind::ContextSwitch);
        if platform.current_vm() == Some(self.vm) {
            platform.cpu_mut().force_cr3(cr3);
        }
        self.current = Some(pid);
        Ok(())
    }

    // ---------------------------------------------------------------
    // The decomposed syscall path
    // ---------------------------------------------------------------

    /// The user→kernel trap: `syscall` instruction plus entry stub.
    pub fn trap_enter(&self, platform: &mut Platform) {
        platform
            .cpu_mut()
            .transition(TransitionKind::SyscallEnter, CpuMode::GUEST_KERNEL);
    }

    /// The in-kernel dispatcher (syscall table lookup, argument checks).
    pub fn charge_dispatch(&self, platform: &mut Platform) {
        platform
            .cpu_mut()
            .charge_work(DISPATCH_CYCLES, DISPATCH_INSTRUCTIONS, "syscall dispatch");
    }

    /// The kernel→user return.
    pub fn trap_exit(&self, platform: &mut Platform) {
        platform
            .cpu_mut()
            .transition(TransitionKind::SyscallExit, CpuMode::GUEST_USER);
    }

    /// Executes a syscall *body* against this kernel's state, charging its
    /// calibrated cost plus per-byte copy work. No trap or dispatch cost —
    /// callers compose those (this is what a remote world executes on
    /// behalf of a caller).
    ///
    /// # Errors
    ///
    /// * [`SyscallError::NoCurrentProcess`] if the kernel has no current
    ///   process to own descriptors.
    /// * [`SyscallError::BadFd`] / [`SyscallError::Fs`] /
    ///   [`SyscallError::Pipe`] from the operation itself.
    pub fn execute_body(
        &mut self,
        platform: &mut Platform,
        syscall: &Syscall,
    ) -> Result<SyscallRet, SyscallError> {
        let kind = syscall.kind();
        let copy_bytes = syscall.transfer_bytes() as u64;
        platform.cpu_mut().charge_work(
            kind.body_cycles() + copy_bytes * COPY_CYCLES_PER_8_BYTES / 8,
            kind.body_instructions() + copy_bytes / 16,
            "syscall body",
        );
        let pid = self.current.ok_or(SyscallError::NoCurrentProcess)?;
        match syscall {
            Syscall::Null => Ok(SyscallRet::Unit),
            Syscall::NullIo => {
                let ino = self.fs.lookup("/dev/zero")?;
                let bytes = self.fs.read_at(ino, 0, 1)?;
                Ok(SyscallRet::Bytes(bytes))
            }
            Syscall::Getppid => {
                let ppid = self
                    .process(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?
                    .ppid();
                Ok(SyscallRet::Pid(ppid))
            }
            Syscall::Open { path, create } => {
                let ino = match self.fs.lookup(path) {
                    Ok(ino) => ino,
                    Err(_) if *create => self.fs.create(path, 0o644)?,
                    Err(e) => return Err(e.into()),
                };
                let proc = self
                    .process_mut(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?;
                Ok(SyscallRet::Fd(
                    proc.install_fd(FdObject::File { ino, offset: 0 }),
                ))
            }
            Syscall::Close { fd } => {
                let proc = self
                    .process_mut(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?;
                match proc.remove_fd(*fd) {
                    Some(FdObject::PipeRead { pipe }) => {
                        self.pipes[pipe].close_reader();
                        Ok(SyscallRet::Unit)
                    }
                    Some(FdObject::PipeWrite { pipe }) => {
                        self.pipes[pipe].close_writer();
                        Ok(SyscallRet::Unit)
                    }
                    Some(FdObject::File { .. }) => Ok(SyscallRet::Unit),
                    None => Err(SyscallError::BadFd { fd: *fd }),
                }
            }
            Syscall::Read { fd, len } => {
                let obj = *self
                    .process(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?
                    .fd(*fd)
                    .ok_or(SyscallError::BadFd { fd: *fd })?;
                match obj {
                    FdObject::File { ino, offset } => {
                        let bytes = self.fs.read_at(ino, offset, *len)?;
                        let n = bytes.len() as u64;
                        if let Some(FdObject::File { offset, .. }) =
                            self.process_mut(pid).and_then(|p| p.fd_mut(*fd))
                        {
                            *offset += n;
                        }
                        Ok(SyscallRet::Bytes(bytes))
                    }
                    FdObject::PipeRead { pipe } => {
                        Ok(SyscallRet::Bytes(self.pipes[pipe].read(*len)))
                    }
                    FdObject::PipeWrite { .. } => Err(SyscallError::BadFd { fd: *fd }),
                }
            }
            Syscall::Write { fd, data } => {
                let obj = *self
                    .process(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?
                    .fd(*fd)
                    .ok_or(SyscallError::BadFd { fd: *fd })?;
                match obj {
                    FdObject::File { ino, offset } => {
                        let n = self.fs.write_at(ino, offset, data)?;
                        if let Some(FdObject::File { offset, .. }) =
                            self.process_mut(pid).and_then(|p| p.fd_mut(*fd))
                        {
                            *offset += n as u64;
                        }
                        Ok(SyscallRet::Written(n))
                    }
                    FdObject::PipeWrite { pipe } => {
                        Ok(SyscallRet::Written(self.pipes[pipe].write(data)?))
                    }
                    FdObject::PipeRead { .. } => Err(SyscallError::BadFd { fd: *fd }),
                }
            }
            Syscall::Stat { path } => Ok(SyscallRet::Stat(self.fs.stat(path)?)),
            Syscall::Fstat { fd } => {
                let obj = *self
                    .process(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?
                    .fd(*fd)
                    .ok_or(SyscallError::BadFd { fd: *fd })?;
                match obj {
                    FdObject::File { ino, .. } => Ok(SyscallRet::Stat(self.fs.fstat(ino)?)),
                    _ => Err(SyscallError::BadFd { fd: *fd }),
                }
            }
            Syscall::Pipe => {
                let pipe = self.pipes.len();
                self.pipes.push(Pipe::new());
                let proc = self
                    .process_mut(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?;
                let r = proc.install_fd(FdObject::PipeRead { pipe });
                let w = proc.install_fd(FdObject::PipeWrite { pipe });
                Ok(SyscallRet::PipePair(r, w))
            }
            Syscall::Unlink { path } => {
                self.fs.unlink(path)?;
                Ok(SyscallRet::Unit)
            }
            Syscall::Dup { fd } => {
                let obj = *self
                    .process(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?
                    .fd(*fd)
                    .ok_or(SyscallError::BadFd { fd: *fd })?;
                // Duplicating a pipe end adds a reference of its kind,
                // so closing one copy does not tear the pipe down.
                match obj {
                    FdObject::PipeRead { pipe } => self.pipes[pipe].add_reader(),
                    FdObject::PipeWrite { pipe } => self.pipes[pipe].add_writer(),
                    FdObject::File { .. } => {}
                }
                let proc = self
                    .process_mut(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?;
                Ok(SyscallRet::Fd(proc.install_fd(obj)))
            }
            Syscall::Lseek { fd, offset } => {
                match self
                    .process_mut(pid)
                    .ok_or(SyscallError::NoCurrentProcess)?
                    .fd_mut(*fd)
                {
                    Some(FdObject::File { offset: cur, .. }) => {
                        *cur = *offset;
                        Ok(SyscallRet::Unit)
                    }
                    Some(_) => Err(SyscallError::BadFd { fd: *fd }),
                    None => Err(SyscallError::BadFd { fd: *fd }),
                }
            }
            Syscall::Getpid => Ok(SyscallRet::Pid(pid)),
            Syscall::Fork => {
                let child = Pid(self.procs.len() as u32 + 1);
                let parent = self.process(pid).ok_or(SyscallError::NoCurrentProcess)?;
                let name = format!("{}-child", parent.name());
                let parent_fds: Vec<(u32, FdObject)> = parent.fds_snapshot();
                let cr3 = self.unique_cr3(child);
                let mut proc = Process::new(child, pid, &name, cr3);
                for (_, obj) in &parent_fds {
                    proc.install_fd(*obj);
                    // Pipe ends gain a reference per inherited fd.
                    match obj {
                        FdObject::PipeRead { pipe } => self.pipes[*pipe].add_reader(),
                        FdObject::PipeWrite { pipe } => self.pipes[*pipe].add_writer(),
                        FdObject::File { .. } => {}
                    }
                }
                self.procs.push(proc);
                Ok(SyscallRet::Pid(child))
            }
        }
    }

    /// The complete native syscall path: trap, dispatch, body, return.
    ///
    /// # Errors
    ///
    /// * [`SyscallError::WrongVm`] if the platform is executing a
    ///   different VM (or the host).
    /// * Everything [`Kernel::execute_body`] can return.
    pub fn syscall(
        &mut self,
        platform: &mut Platform,
        syscall: Syscall,
    ) -> Result<SyscallRet, SyscallError> {
        if platform.current_vm() != Some(self.vm) {
            return Err(SyscallError::WrongVm);
        }
        self.trap_enter(platform);
        self.charge_dispatch(platform);
        let result = self.execute_body(platform, &syscall);
        self.trap_exit(platform);
        result
    }

    /// Blocks the current process and context-switches to `next`
    /// (modelling the reader/writer hand-off of lmbench's pipe benchmark).
    ///
    /// # Errors
    ///
    /// [`SyscallError::NoCurrentProcess`] if either process is missing.
    pub fn block_and_switch(
        &mut self,
        platform: &mut Platform,
        next: Pid,
    ) -> Result<(), SyscallError> {
        let pid = self.current.ok_or(SyscallError::NoCurrentProcess)?;
        self.process_mut(pid)
            .ok_or(SyscallError::NoCurrentProcess)?
            .set_state(ProcState::Blocked);
        self.context_switch(platform, next)?;
        self.process_mut(next)
            .ok_or(SyscallError::NoCurrentProcess)?
            .set_state(ProcState::Runnable);
        Ok(())
    }

    /// Convenience for tests and workloads: open (creating if needed),
    /// returning the fd, via the full syscall path.
    ///
    /// # Errors
    ///
    /// As [`Kernel::syscall`].
    pub fn open(
        &mut self,
        platform: &mut Platform,
        path: &str,
        create: bool,
    ) -> Result<Fd, SyscallError> {
        match self.syscall(
            platform,
            Syscall::Open {
                path: path.to_string(),
                create,
            },
        )? {
            SyscallRet::Fd(fd) => Ok(fd),
            other => unreachable!("open returned {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervisor::vm::VmConfig;
    use machine::cost::CostModel;

    fn setup() -> (Platform, Kernel, Pid) {
        let mut p = Platform::new(CostModel::haswell_3_4ghz());
        let vm = p.create_vm(VmConfig::named("t")).unwrap();
        let mut k = Kernel::new(vm, "t");
        let pid = k.spawn(&mut p, "init").unwrap();
        p.vmentry(vm).unwrap();
        k.run(pid);
        (p, k, pid)
    }

    #[test]
    fn native_null_syscall_costs_986_cycles() {
        let (mut p, mut k, _) = setup();
        let snap = p.cpu().meter().snapshot();
        k.syscall(&mut p, Syscall::Null).unwrap();
        let d = p.cpu().meter().since(snap);
        // The paper's Table 4 guest-native NULL syscall: 0.29 us.
        assert_eq!(d.cycles.0, 986);
        let us = d.micros(machine::cost::Frequency::GHZ_3_4);
        assert!((us - 0.29).abs() < 0.005, "got {us}");
    }

    #[test]
    fn syscall_traps_in_and_out() {
        let (mut p, mut k, _) = setup();
        k.syscall(&mut p, Syscall::Null).unwrap();
        assert_eq!(p.cpu().trace().count(TransitionKind::SyscallEnter), 1);
        assert_eq!(p.cpu().trace().count(TransitionKind::SyscallExit), 1);
        assert_eq!(p.cpu().mode(), CpuMode::GUEST_USER);
    }

    #[test]
    fn open_read_write_close_cycle() {
        let (mut p, mut k, _) = setup();
        let fd = k.open(&mut p, "/data", true).unwrap();
        let ret = k
            .syscall(
                &mut p,
                Syscall::Write {
                    fd,
                    data: b"hello".to_vec(),
                },
            )
            .unwrap();
        assert_eq!(ret, SyscallRet::Written(5));
        // Reading continues at the file offset; reopen to read from 0.
        k.syscall(&mut p, Syscall::Close { fd }).unwrap();
        let fd = k.open(&mut p, "/data", false).unwrap();
        let ret = k.syscall(&mut p, Syscall::Read { fd, len: 5 }).unwrap();
        assert_eq!(ret, SyscallRet::Bytes(b"hello".to_vec()));
        let ret = k.syscall(&mut p, Syscall::Fstat { fd }).unwrap();
        match ret {
            SyscallRet::Stat(s) => assert_eq!(s.size, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn getppid_returns_parent() {
        let (mut p, mut k, init) = setup();
        let child = k.spawn(&mut p, "child").unwrap();
        k.run(child);
        match k.syscall(&mut p, Syscall::Getppid).unwrap() {
            SyscallRet::Pid(ppid) => assert_eq!(ppid, init),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipe_round_trip_via_syscalls() {
        let (mut p, mut k, _) = setup();
        let (r, w) = match k.syscall(&mut p, Syscall::Pipe).unwrap() {
            SyscallRet::PipePair(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        k.syscall(
            &mut p,
            Syscall::Write {
                fd: w,
                data: b"x".to_vec(),
            },
        )
        .unwrap();
        let ret = k.syscall(&mut p, Syscall::Read { fd: r, len: 1 }).unwrap();
        assert_eq!(ret, SyscallRet::Bytes(b"x".to_vec()));
    }

    #[test]
    fn bad_fd_surfaces() {
        let (mut p, mut k, _) = setup();
        let err = k
            .syscall(&mut p, Syscall::Read { fd: Fd(42), len: 1 })
            .unwrap_err();
        assert!(matches!(err, SyscallError::BadFd { .. }));
    }

    #[test]
    fn wrong_vm_rejected() {
        let mut p = Platform::new(CostModel::haswell_3_4ghz());
        let vm_a = p.create_vm(VmConfig::named("a")).unwrap();
        let vm_b = p.create_vm(VmConfig::named("b")).unwrap();
        let mut k_b = Kernel::new(vm_b, "b");
        let pid = k_b.spawn(&mut p, "init").unwrap();
        k_b.run(pid);
        p.vmentry(vm_a).unwrap();
        assert_eq!(
            k_b.syscall(&mut p, Syscall::Null).unwrap_err(),
            SyscallError::WrongVm
        );
    }

    #[test]
    fn helper_cr3_is_shared_across_vms() {
        let mut p = Platform::new(CostModel::haswell_3_4ghz());
        let vm_a = p.create_vm(VmConfig::named("a")).unwrap();
        let vm_b = p.create_vm(VmConfig::named("b")).unwrap();
        let mut k_a = Kernel::new(vm_a, "a");
        let mut k_b = Kernel::new(vm_b, "b");
        let ha = k_a.spawn_helper(&mut p).unwrap();
        let hb = k_b.spawn_helper(&mut p).unwrap();
        assert_eq!(
            k_a.process(ha).unwrap().cr3(),
            k_b.process(hb).unwrap().cr3(),
            "§4.3: helper contexts share one CR3 value across VMs"
        );
        // Idempotent.
        assert_eq!(k_a.spawn_helper(&mut p).unwrap(), ha);
    }

    #[test]
    fn regular_processes_have_distinct_cr3() {
        let (mut p, mut k, init) = setup();
        let child = k.spawn(&mut p, "child").unwrap();
        assert_ne!(
            k.process(init).unwrap().cr3(),
            k.process(child).unwrap().cr3()
        );
    }

    #[test]
    fn context_switch_charges_and_loads_cr3() {
        let (mut p, mut k, _) = setup();
        let child = k.spawn(&mut p, "child").unwrap();
        let before = p.cpu().trace().count(TransitionKind::ContextSwitch);
        k.context_switch(&mut p, child).unwrap();
        assert_eq!(
            p.cpu().trace().count(TransitionKind::ContextSwitch),
            before + 1
        );
        assert_eq!(p.cpu().cr3(), k.process(child).unwrap().cr3());
        assert_eq!(k.current(), Some(child));
    }

    #[test]
    fn stat_copies_struct_bytes() {
        let (mut p, mut k, _) = setup();
        // Stat copies ~144 bytes more than null; its charged cycles must
        // reflect that (emergent, not just the body constant).
        let snap = p.cpu().meter().snapshot();
        k.syscall(
            &mut p,
            Syscall::Stat {
                path: "/etc/passwd".into(),
            },
        )
        .unwrap();
        let stat_cost = p.cpu().meter().since(snap).cycles.0;
        let expected_body = Syscall::Stat {
            path: "/etc/passwd".into(),
        }
        .kind()
        .body_cycles();
        assert!(stat_cost > expected_body + 360 - 1);
    }

    #[test]
    fn unaware_kernel_corrupts_state_after_foreign_world_switch() {
        let (mut p, mut k, _) = setup();
        // A world_call switched CR3 underneath the OS.
        p.cpu_mut().force_cr3(0xDEAD_BEEF_0000);
        let err = k.timer_tick(&mut p).unwrap_err();
        assert_eq!(err.actual_cr3, 0xDEAD_BEEF_0000);
    }

    #[test]
    fn aware_kernel_repairs_bookkeeping_on_timer() {
        let (mut p, mut k, init) = setup();
        let other = k.spawn(&mut p, "other").unwrap();
        k.set_worldcall_aware(true);
        // World switch landed in `other`'s address space without the
        // scheduler's involvement.
        let other_cr3 = k.process(other).unwrap().cr3();
        p.cpu_mut().force_cr3(other_cr3);
        match k.timer_tick(&mut p).unwrap() {
            crate::awareness::TimerOutcome::Repaired { actual_cr3 } => {
                assert_eq!(actual_cr3, other_cr3);
            }
            other => panic!("expected repair, got {other:?}"),
        }
        assert_eq!(k.current(), Some(other));
        assert_ne!(k.current(), Some(init));
    }

    #[test]
    fn consistent_timer_tick_is_free_of_repair_cost() {
        let (mut p, mut k, init) = setup();
        let cr3 = k.process(init).unwrap().cr3();
        p.cpu_mut().force_cr3(cr3);
        let before = p.cpu().meter().cycles();
        assert_eq!(
            k.timer_tick(&mut p).unwrap(),
            crate::awareness::TimerOutcome::Consistent
        );
        assert_eq!(p.cpu().meter().cycles(), before);
    }

    #[test]
    fn aware_kernel_handles_unknown_world_gracefully() {
        let (mut p, mut k, _) = setup();
        k.set_worldcall_aware(true);
        // A world from *another VM* is running (cross-VM callee): no
        // local process matches, so current becomes None rather than
        // corrupting another process's state.
        p.cpu_mut().force_cr3(0xFFFF_0000);
        assert!(matches!(
            k.timer_tick(&mut p),
            Ok(crate::awareness::TimerOutcome::Repaired { .. })
        ));
        assert_eq!(k.current(), None);
    }

    #[test]
    fn fork_inherits_descriptors_and_pipe_refs() {
        let (mut p, mut k, parent) = setup();
        let (r, w) = match k.syscall(&mut p, Syscall::Pipe).unwrap() {
            SyscallRet::PipePair(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        let child = match k.syscall(&mut p, Syscall::Fork).unwrap() {
            SyscallRet::Pid(pid) => pid,
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(child, parent);
        assert_eq!(k.process(child).unwrap().ppid(), parent);
        assert_eq!(k.process(child).unwrap().open_fd_count(), 2);
        // Child writes, parent reads: the ends are genuinely shared.
        k.run(child);
        k.syscall(
            &mut p,
            Syscall::Write {
                fd: w,
                data: vec![7],
            },
        )
        .unwrap();
        k.run(parent);
        assert_eq!(
            k.syscall(&mut p, Syscall::Read { fd: r, len: 1 }).unwrap(),
            SyscallRet::Bytes(vec![7])
        );
        // Closing the parent's write end alone does not break the pipe:
        // the child still holds a writer reference.
        k.syscall(&mut p, Syscall::Close { fd: w }).unwrap();
        k.run(child);
        assert!(k
            .syscall(
                &mut p,
                Syscall::Write {
                    fd: w,
                    data: vec![8]
                }
            )
            .is_ok());
    }

    #[test]
    fn dup_duplicates_and_lseek_rewinds() {
        let (mut p, mut k, _) = setup();
        let fd = k.open(&mut p, "/tmp/file", false).unwrap();
        let dup = match k.syscall(&mut p, Syscall::Dup { fd }).unwrap() {
            SyscallRet::Fd(d) => d,
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(fd, dup);
        // Read through the original, then rewind via lseek and read the
        // same bytes again.
        let first = k.syscall(&mut p, Syscall::Read { fd, len: 9 }).unwrap();
        k.syscall(&mut p, Syscall::Lseek { fd, offset: 0 }).unwrap();
        let second = k.syscall(&mut p, Syscall::Read { fd, len: 9 }).unwrap();
        assert_eq!(first, second);
        // Our dup'd descriptors carry independent offsets (a documented
        // simplification vs POSIX shared offsets).
        let via_dup = k
            .syscall(&mut p, Syscall::Read { fd: dup, len: 9 })
            .unwrap();
        assert_eq!(via_dup, first);
    }

    #[test]
    fn getpid_names_the_running_process() {
        let (mut p, mut k, init) = setup();
        assert_eq!(
            k.syscall(&mut p, Syscall::Getpid).unwrap(),
            SyscallRet::Pid(init)
        );
        let child = k.spawn(&mut p, "c").unwrap();
        k.run(child);
        assert_eq!(
            k.syscall(&mut p, Syscall::Getpid).unwrap(),
            SyscallRet::Pid(child)
        );
    }

    #[test]
    fn lseek_on_pipe_is_rejected() {
        let (mut p, mut k, _) = setup();
        let (r, _) = match k.syscall(&mut p, Syscall::Pipe).unwrap() {
            SyscallRet::PipePair(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        assert!(matches!(
            k.syscall(&mut p, Syscall::Lseek { fd: r, offset: 0 }),
            Err(SyscallError::BadFd { .. })
        ));
    }
}
