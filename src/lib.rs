//! Umbrella crate for the CrossOver (ISCA'15) reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests can use a single dependency. See the individual crates
//! for the real documentation:
//!
//! * [`machine`] — simulated CPU, cost model, accounting, tracing.
//! * [`mmu`] — guest page tables, EPT, two-stage translation, TLB.
//! * [`hypervisor`] — VMs, vCPUs, VMExit/VMEntry, VMFUNC, scheduling.
//! * [`guestos`] — xv6-like guest kernel with a syscall dispatcher.
//! * [`crossover`] — the paper's contribution: worlds, world table,
//!   `world_call`, WT/IWT caches, hop planner.
//! * [`systems`] — Proxos, HyperShell, Tahoma, ShadowContext case studies.
//! * [`workloads`] — lmbench micro-ops, utilities, OpenSSH scp model.
//! * [`runtime`] — the concurrent multi-vCPU world-call service:
//!   sharded world table, call router, worker pool.

pub use crossover;
pub use guestos;
pub use hypervisor;
pub use machine;
pub use mmu;
pub use runtime;
pub use systems;
pub use workloads;
