//! Failure-injection tests: every defensive boundary of the stack,
//! exercised end to end.

use crossover::call::{Direction, WorldCallUnit};
use crossover::manager::{AuthPolicy, WorldManager};
use crossover::table::WorldTable;
use crossover::world::{Wid, WorldContext, WorldDescriptor};
use crossover::WorldError;
use guestos::kernel::Kernel;
use guestos::process::Fd;
use guestos::syscall::Syscall;
use hypervisor::platform::Platform;
use hypervisor::vm::{VmConfig, VmId};
use hypervisor::{ExitReason, HvError};
use machine::mode::{CpuMode, Operation, Ring};
use systems::env::CrossVmEnv;

fn two_vms() -> (Platform, VmId, VmId) {
    let mut p = Platform::new_default();
    let a = p.create_vm(VmConfig::named("a")).unwrap();
    let b = p.create_vm(VmConfig::named("b")).unwrap();
    (p, a, b)
}

#[test]
fn vmfunc_with_unpopulated_index_faults_to_hypervisor() {
    let (mut p, a, _) = two_vms();
    p.setup_vmfunc_eptp_list(a).unwrap();
    p.vmentry(a).unwrap();
    // Index 300 was never populated: the hardware faults, and the
    // fallback path is a VMExit with VmfuncFault.
    assert_eq!(
        p.vmfunc_switch_ept(300),
        Err(HvError::InvalidEptpIndex { index: 300 })
    );
    p.vmexit(ExitReason::VmfuncFault).unwrap();
    assert!(p.cpu().mode().is_hypervisor());
}

#[test]
fn world_call_from_unregistered_context_is_an_exception() {
    let (mut p, a, b) = two_vms();
    let mut table = WorldTable::new();
    let callee = table
        .create(WorldDescriptor::guest_kernel(&p, b, 0x2000, 0).unwrap())
        .unwrap();
    let mut unit = WorldCallUnit::new();
    p.vmentry(a).unwrap();
    p.cpu_mut().force_cr3(0xDEAD_0000); // never registered
    let err = unit
        .world_call(&mut p, &table, callee, Direction::Call)
        .unwrap_err();
    assert!(matches!(err, WorldError::NotAWorld { .. }));
    // The CPU stayed put: a failed call must not leak a partial switch.
    assert_eq!(p.cpu().mode(), CpuMode::GUEST_USER);
    assert_eq!(p.cpu().cr3(), 0xDEAD_0000);
}

#[test]
fn forged_wid_cannot_be_called() {
    let (mut p, a, _) = two_vms();
    let mut mgr = WorldManager::new();
    let caller_desc = WorldDescriptor::guest_user(&p, a, 0x1000, 0).unwrap();
    let caller = mgr.register_world(&mut p, caller_desc).unwrap();
    p.vmentry(a).unwrap();
    p.cpu_mut().force_cr3(0x1000);
    // An attacker guesses WIDs: every guess must fail identically.
    for forged in [99u64, 500, u64::MAX] {
        let err = mgr
            .call(&mut p, caller, Wid::from_raw_for_tests(forged))
            .unwrap_err();
        assert!(
            matches!(err, WorldError::InvalidWid { .. })
                || matches!(err, WorldError::ControlFlowViolation { .. }),
            "forged WID {forged} produced {err}"
        );
    }
}

#[test]
fn quota_exhaustion_is_per_vm_and_recoverable() {
    let (mut p, a, b) = two_vms();
    let mut mgr = WorldManager::with_quota(2);
    let mut wids = Vec::new();
    for i in 0..2u64 {
        let d = WorldDescriptor::guest_user(&p, a, 0x1000 * (i + 1), 0).unwrap();
        wids.push(mgr.register_world(&mut p, d).unwrap());
    }
    let d = WorldDescriptor::guest_user(&p, a, 0x9000, 0).unwrap();
    assert!(matches!(
        mgr.register_world(&mut p, d),
        Err(WorldError::QuotaExceeded { quota: 2 })
    ));
    // The other VM is unaffected (the DoS stays contained).
    let d = WorldDescriptor::guest_user(&p, b, 0x1000, 0).unwrap();
    assert!(mgr.register_world(&mut p, d).is_ok());
    // Deleting frees quota.
    mgr.delete_world(&mut p, wids[0]).unwrap();
    let d = WorldDescriptor::guest_user(&p, a, 0x9000, 0).unwrap();
    assert!(mgr.register_world(&mut p, d).is_ok());
}

#[test]
fn malicious_callee_that_never_returns_is_cancelled() {
    let (mut p, a, b) = two_vms();
    let mut mgr = WorldManager::new();
    let cd = WorldDescriptor::guest_user(&p, a, 0x1000, 0).unwrap();
    let ed = WorldDescriptor::guest_kernel(&p, b, 0x2000, 0).unwrap();
    let caller = mgr.register_world(&mut p, cd).unwrap();
    let callee = mgr.register_world(&mut p, ed).unwrap();
    p.vmentry(a).unwrap();
    p.cpu_mut().force_cr3(0x1000);
    mgr.arm_timeout(&mut p, caller, 10_000).unwrap();
    p.cpu_mut().force_cr3(0x1000);
    let token = mgr.call(&mut p, caller, callee).unwrap();
    // The callee spins forever.
    p.cpu_mut().charge_work(50_000_000, 1, "infinite loop");
    assert!(mgr.timed_out(&p, &token));
    mgr.force_cancel(&mut p, token).unwrap();
    // The caller is back in its own world with a clean stack.
    assert_eq!(p.cpu().cr3(), 0x1000);
    assert_eq!(mgr.call_depth(caller), 0);
    // And can make fresh calls afterwards.
    assert!(mgr.call(&mut p, caller, callee).is_ok());
}

#[test]
fn malicious_callee_cannot_return_to_a_world_that_never_called_it() {
    let (mut p, a, b) = two_vms();
    let mut mgr = WorldManager::new();
    let cd = WorldDescriptor::guest_user(&p, a, 0x1000, 0).unwrap();
    let vd = WorldDescriptor::guest_user(&p, a, 0x7000, 0).unwrap();
    let ed = WorldDescriptor::guest_kernel(&p, b, 0x2000, 0).unwrap();
    let caller = mgr.register_world(&mut p, cd).unwrap();
    let victim = mgr.register_world(&mut p, vd).unwrap();
    let callee = mgr.register_world(&mut p, ed).unwrap();
    p.vmentry(a).unwrap();
    p.cpu_mut().force_cr3(0x1000);
    let token = mgr.call(&mut p, caller, callee).unwrap();
    // The callee "returns" to the victim instead of its caller. The
    // hardware permits the switch (the victim is a valid world), but the
    // victim's software stack detects the violation.
    let forged = crossover::manager::CallToken {
        caller: victim,
        ..token
    };
    let err = mgr.ret(&mut p, forged).unwrap_err();
    assert!(
        matches!(
            err,
            WorldError::NoOutstandingCall { .. } | WorldError::ControlFlowViolation { .. }
        ),
        "got {err}"
    );
}

#[test]
fn callee_policy_rejects_after_revocation() {
    let (mut p, a, b) = two_vms();
    let mut mgr = WorldManager::new();
    let cd = WorldDescriptor::guest_user(&p, a, 0x1000, 0).unwrap();
    let ed = WorldDescriptor::guest_kernel(&p, b, 0x2000, 0).unwrap();
    let caller = mgr.register_world(&mut p, cd).unwrap();
    let callee = mgr.register_world(&mut p, ed).unwrap();
    mgr.set_policy(callee, AuthPolicy::allow([caller]));
    p.vmentry(a).unwrap();
    p.cpu_mut().force_cr3(0x1000);
    let token = mgr.call(&mut p, caller, callee).unwrap();
    mgr.ret(&mut p, token).unwrap();
    // Revoke.
    mgr.set_policy(callee, AuthPolicy::DenyAll);
    assert!(matches!(
        mgr.call(&mut p, caller, callee),
        Err(WorldError::AuthorizationDenied { .. })
    ));
}

#[test]
fn guest_cannot_write_the_cross_ring_code_page() {
    let mut env = CrossVmEnv::new("a", "b").unwrap();
    let err = env
        .platform
        .write_gpa(env.vm1, systems::env::CODE_PAGE_GPA, b"shellcode")
        .unwrap_err();
    assert!(matches!(
        err,
        HvError::Mmu(mmu::MmuError::PermissionDenied { .. })
    ));
}

#[test]
fn user_mode_cannot_perform_privileged_switch_steps() {
    let mut env = CrossVmEnv::new("a", "b").unwrap();
    // In guest user mode, the CR3/IDT writes of the Figure 4 sequence
    // must fault — this is why U -> K_VM2 needs two hops with VMFUNC.
    assert!(env.platform.cpu_mut().write_cr3(0x1234).is_err());
    assert!(env.platform.cpu_mut().write_idt(0x2000).is_err());
    assert!(env.platform.cpu_mut().set_interrupts(false).is_err());
}

#[test]
fn double_vmentry_and_stray_vmexit_are_rejected() {
    let (mut p, a, b) = two_vms();
    p.vmentry(a).unwrap();
    assert_eq!(p.vmentry(b), Err(HvError::AlreadyInGuest));
    p.vmexit(ExitReason::Hlt).unwrap();
    assert_eq!(p.vmexit(ExitReason::Hlt), Err(HvError::NotInGuest));
}

#[test]
fn syscall_error_paths_do_not_corrupt_kernel_state() {
    let mut p = Platform::new_default();
    let vm = p.create_vm(VmConfig::named("t")).unwrap();
    let mut k = Kernel::new(vm, "t");
    let pid = k.spawn(&mut p, "init").unwrap();
    k.run(pid);
    p.vmentry(vm).unwrap();
    // A burst of failing syscalls...
    for _ in 0..16 {
        assert!(k
            .syscall(&mut p, Syscall::Read { fd: Fd(42), len: 1 })
            .is_err());
        assert!(k
            .syscall(
                &mut p,
                Syscall::Open {
                    path: "/does-not-exist".into(),
                    create: false
                }
            )
            .is_err());
    }
    // ...leaves the kernel fully functional.
    let fd = k.open(&mut p, "/after-failures", true).unwrap();
    assert!(matches!(
        k.syscall(&mut p, Syscall::Fstat { fd }),
        Ok(guestos::SyscallRet::Stat(_))
    ));
    assert_eq!(
        k.process(pid).unwrap().open_fd_count(),
        1,
        "failed opens must not leak descriptors"
    );
}

#[test]
fn stale_wid_after_delete_rejected_even_with_warm_caches() {
    let (mut p, a, b) = two_vms();
    let mut mgr = WorldManager::new();
    let cd = WorldDescriptor::guest_user(&p, a, 0x1000, 0).unwrap();
    let ed = WorldDescriptor::guest_kernel(&p, b, 0x2000, 0).unwrap();
    let caller = mgr.register_world(&mut p, cd).unwrap();
    let callee = mgr.register_world(&mut p, ed).unwrap();
    p.vmentry(a).unwrap();
    p.cpu_mut().force_cr3(0x1000);
    let token = mgr.call(&mut p, caller, callee).unwrap();
    mgr.ret(&mut p, token).unwrap();
    // Hypervisor deletes the callee (manage_wtc invalidation included).
    mgr.delete_world(&mut p, callee).unwrap();
    assert!(matches!(
        mgr.call(&mut p, caller, callee),
        Err(WorldError::InvalidWid { .. })
    ));
}

#[test]
fn context_differing_in_any_field_is_a_different_world() {
    // The IWT cache keys on (H/G, ring, EPTP, PTP): perturbing any single
    // field must change identification.
    let (p, a, _) = {
        let mut p = Platform::new_default();
        let a = p.create_vm(VmConfig::named("a")).unwrap();
        let b = p.create_vm(VmConfig::named("b")).unwrap();
        (p, a, b)
    };
    let base = WorldContext {
        operation: Operation::NonRoot,
        ring: Ring::Ring0,
        eptp: p.eptp_of(a).unwrap(),
        ptp: 0x1000,
    };
    let mut table = WorldTable::new();
    let wid = table
        .create(WorldDescriptor {
            context: base,
            entry_point: 0,
            owner: Some(a),
        })
        .unwrap();
    assert_eq!(table.lookup_context(&base), Some(wid));
    for perturbed in [
        WorldContext {
            operation: Operation::Root,
            ..base
        },
        WorldContext {
            ring: Ring::Ring3,
            ..base
        },
        WorldContext {
            eptp: base.eptp + 99,
            ..base
        },
        WorldContext {
            ptp: 0x2000,
            ..base
        },
    ] {
        assert_eq!(table.lookup_context(&perturbed), None, "{perturbed}");
    }
}

/// Helper giving tests a way to fabricate WIDs (never possible for real
/// guests, which only receive WIDs from the hypervisor).
trait WidForTests {
    fn from_raw_for_tests(raw: u64) -> Wid;
}

impl WidForTests for Wid {
    fn from_raw_for_tests(raw: u64) -> Wid {
        // Round-trip through a scratch table to obtain a Wid value with
        // the desired raw id where possible; otherwise synthesize via
        // serialization of a known WID. Since `Wid`'s constructor is
        // crate-private by design, forge by exhausting a scratch table
        // until the counter reaches `raw` (bounded for test use).
        let mut table = WorldTable::new();
        let mut last = table
            .create(WorldDescriptor::host_user(0x1000, 0))
            .expect("quota");
        let mut next_cr3 = 0x2000u64;
        while last.raw() < raw && last.raw() < 4096 {
            next_cr3 += 0x1000;
            last = table
                .create(WorldDescriptor::host_user(next_cr3, 0))
                .expect("quota");
        }
        last
    }
}
