//! End-to-end integration tests spanning every crate: the full paper
//! scenario from machine bring-up to case-study measurement.

use guestos::syscall::{Syscall, SyscallRet};
use machine::cost::Frequency;
use machine::trace::TransitionKind;
use systems::crossvm::{crossover_cross_vm_syscall, vmfunc_cross_vm_syscall, CrossOverChannel};
use systems::env::CrossVmEnv;
use systems::hypershell::HyperShell;
use systems::proxos::Proxos;
use systems::shadowcontext::ShadowContext;
use systems::tahoma::Tahoma;
use workloads::micro::{run_native, run_redirected, MicroOp};

#[test]
fn the_headline_claim_holds_for_every_system_and_op() {
    // "CrossOver significantly boosts the performance of the mentioned
    // systems": for every system and microbenchmark, optimized < original
    // and the reduction is at least 50%.
    for op in MicroOp::ALL {
        let pairs: Vec<(f64, f64, &str)> = vec![
            {
                let mut b = Proxos::baseline().unwrap();
                let mut o = Proxos::optimized().unwrap();
                (
                    run_redirected(&mut b, op)
                        .unwrap()
                        .micros(Frequency::GHZ_3_4),
                    run_redirected(&mut o, op)
                        .unwrap()
                        .micros(Frequency::GHZ_3_4),
                    "Proxos",
                )
            },
            {
                let mut b = HyperShell::baseline().unwrap();
                let mut o = HyperShell::optimized().unwrap();
                (
                    run_redirected(&mut b, op)
                        .unwrap()
                        .micros(Frequency::GHZ_3_4),
                    run_redirected(&mut o, op)
                        .unwrap()
                        .micros(Frequency::GHZ_3_4),
                    "HyperShell",
                )
            },
            {
                let mut b = Tahoma::baseline().unwrap();
                let mut o = Tahoma::optimized().unwrap();
                (
                    run_redirected(&mut b, op)
                        .unwrap()
                        .micros(Frequency::GHZ_3_4),
                    run_redirected(&mut o, op)
                        .unwrap()
                        .micros(Frequency::GHZ_3_4),
                    "Tahoma",
                )
            },
            {
                let mut b = ShadowContext::baseline().unwrap();
                let mut o = ShadowContext::optimized().unwrap();
                // ShadowContext's first baseline call creates the dummy;
                // measure the second.
                let _ = run_redirected(&mut b, op).unwrap();
                (
                    run_redirected(&mut b, op)
                        .unwrap()
                        .micros(Frequency::GHZ_3_4),
                    run_redirected(&mut o, op)
                        .unwrap()
                        .micros(Frequency::GHZ_3_4),
                    "ShadowContext",
                )
            },
        ];
        for (orig, opt, name) in pairs {
            let reduction = 1.0 - opt / orig;
            assert!(
                reduction > 0.45,
                "{name}/{}: only {:.1}% reduction ({orig:.2} -> {opt:.2} us)",
                op.name(),
                reduction * 100.0
            );
        }
    }
}

#[test]
fn optimized_paths_never_touch_the_hypervisor_after_setup() {
    // Proxos optimized.
    let mut p = Proxos::optimized().unwrap();
    p.redirected_syscall(&Syscall::Null).unwrap();
    let before = p.env.platform.cpu().trace().hypervisor_interventions();
    for _ in 0..10 {
        p.redirected_syscall(&Syscall::Null).unwrap();
    }
    assert_eq!(
        p.env.platform.cpu().trace().hypervisor_interventions(),
        before,
        "Proxos optimized must be intervention-free"
    );

    // Tahoma optimized (browser-calls).
    let mut t = Tahoma::optimized().unwrap();
    t.browser_call(&Syscall::Null).unwrap();
    let before = t.env.platform.cpu().trace().hypervisor_interventions();
    for _ in 0..10 {
        t.browser_call(&Syscall::Null).unwrap();
    }
    assert_eq!(
        t.env.platform.cpu().trace().hypervisor_interventions(),
        before
    );
}

#[test]
fn baselines_match_their_figure2_world_switch_counts() {
    // Figure 2 / §2: Proxos needs 6 ring crossings per redirected
    // syscall; ShadowContext at least 8.
    let mut p = Proxos::baseline().unwrap();
    p.redirected_syscall(&Syscall::Null).unwrap();
    p.env.settle_in_vm1().unwrap();
    p.env.clear_trace();
    p.redirected_syscall(&Syscall::Null).unwrap();
    let crossings = p.env.platform.cpu().trace().ring_crossings();
    assert!(
        crossings >= 6,
        "Proxos baseline should cross >= 6 times, got {crossings}"
    );

    let mut s = ShadowContext::baseline().unwrap();
    s.introspect_syscall(&Syscall::Null).unwrap();
    s.env.settle_in_vm1().unwrap();
    s.env.clear_trace();
    s.introspect_syscall(&Syscall::Null).unwrap();
    let crossings = s.env.platform.cpu().trace().ring_crossings();
    assert!(
        crossings >= 8,
        "ShadowContext baseline should cross >= 8 times, got {crossings}"
    );
}

#[test]
fn vmfunc_and_crossover_paths_agree_on_results() {
    let mut env = CrossVmEnv::new("a", "b").unwrap();
    let mut channel = CrossOverChannel::setup(&mut env).unwrap();
    // Stat through both mechanisms returns identical metadata.
    let stat = Syscall::Stat {
        path: "/etc/passwd".into(),
    };
    let via_vmfunc = vmfunc_cross_vm_syscall(&mut env, &stat).unwrap();
    let via_crossover = crossover_cross_vm_syscall(&mut env, &mut channel, &stat).unwrap();
    assert_eq!(via_vmfunc, via_crossover);
    // And both mutate the same remote kernel.
    let open = Syscall::Open {
        path: "/shared-target".into(),
        create: true,
    };
    vmfunc_cross_vm_syscall(&mut env, &open).unwrap();
    let ret = crossover_cross_vm_syscall(
        &mut env,
        &mut channel,
        &Syscall::Stat {
            path: "/shared-target".into(),
        },
    )
    .unwrap();
    assert!(matches!(ret, SyscallRet::Stat(_)));
}

#[test]
fn native_micro_latencies_track_the_paper_within_twelve_percent() {
    let mut env = CrossVmEnv::new("native", "peer").unwrap();
    for op in MicroOp::ALL {
        let measured = run_native(&mut env, op).unwrap().micros(Frequency::GHZ_3_4);
        let paper = op.paper_native_us();
        let err = (measured - paper).abs() / paper;
        assert!(
            err < 0.12,
            "{}: measured {measured:.3} vs paper {paper:.3} ({:.0}% off)",
            op.name(),
            err * 100.0
        );
    }
}

#[test]
fn a_long_workload_keeps_every_invariant() {
    // Soak: hundreds of mixed operations across both VMs; kernel state,
    // platform mode and CrossOver stacks all stay consistent.
    let mut env = CrossVmEnv::new("soak-a", "soak-b").unwrap();
    let mut channel = CrossOverChannel::setup(&mut env).unwrap();
    for i in 0..300u32 {
        match i % 5 {
            0 => {
                env.k1.syscall(&mut env.platform, Syscall::Null).unwrap();
            }
            1 => {
                vmfunc_cross_vm_syscall(&mut env, &Syscall::Getppid).unwrap();
            }
            2 => {
                crossover_cross_vm_syscall(&mut env, &mut channel, &Syscall::NullIo).unwrap();
            }
            3 => {
                let path = format!("/soak/{i}");
                vmfunc_cross_vm_syscall(
                    &mut env,
                    &Syscall::Open {
                        path: path.clone(),
                        create: true,
                    },
                )
                .unwrap();
                assert!(env.k2.fs().stat(&path).is_ok());
            }
            _ => {
                env.k1
                    .syscall(
                        &mut env.platform,
                        Syscall::Stat {
                            path: "/etc/passwd".into(),
                        },
                    )
                    .unwrap();
            }
        }
        // Invariants after every operation.
        assert_eq!(env.platform.current_vm(), Some(env.vm1));
        assert_eq!(
            env.platform.cpu().mode(),
            machine::mode::CpuMode::GUEST_USER
        );
        assert_eq!(channel.manager.call_depth(channel.caller), 0);
    }
    // 60 files created remotely, none locally.
    assert!(env.k2.fs().stat("/soak/3").is_ok());
    assert!(env.k1.fs().stat("/soak/3").is_err());
    // Every world_call had a matching return.
    let t = env.platform.cpu().trace();
    assert_eq!(
        t.count(TransitionKind::WorldCall),
        t.count(TransitionKind::WorldReturn)
    );
    assert_eq!(
        t.count(TransitionKind::Vmfunc) % 2,
        0,
        "VMFUNC switches come in out/back pairs"
    );
}

#[test]
fn one_world_serves_many_callers_at_different_tiers() {
    // §3.4's flexibility argument, end to end: a single registered callee
    // world dispatches per-caller service tiers using the
    // hardware-authenticated WID, with no extra hardware state.
    use crossover::manager::WorldManager;
    use crossover::service::{Dispatch, ServiceRegistry, ServiceTier};
    use crossover::world::WorldDescriptor;
    use hypervisor::platform::Platform;
    use hypervisor::vm::VmConfig;

    let mut p = Platform::new_default();
    let vm1 = p.create_vm(VmConfig::named("clients")).unwrap();
    let vm2 = p.create_vm(VmConfig::named("service")).unwrap();
    let mut mgr = WorldManager::new();
    let admin_desc = WorldDescriptor::guest_user(&p, vm1, 0x1000, 0).unwrap();
    let tenant_desc = WorldDescriptor::guest_user(&p, vm1, 0x2000, 0).unwrap();
    let service_desc = WorldDescriptor::guest_kernel(&p, vm2, 0x9000, 0).unwrap();
    let admin = mgr.register_world(&mut p, admin_desc).unwrap();
    let tenant = mgr.register_world(&mut p, tenant_desc).unwrap();
    let service = mgr.register_world(&mut p, service_desc).unwrap();

    let mut registry = ServiceRegistry::new();
    registry.grant(admin, ServiceTier::Full);
    registry.grant(
        tenant,
        ServiceTier::Throttled {
            calls_per_window: 1,
        },
    );

    p.vmentry(vm1).unwrap();
    let mut observed = Vec::new();
    for (wid, cr3) in [(admin, 0x1000u64), (tenant, 0x2000), (tenant, 0x2000)] {
        p.cpu_mut().force_cr3(cr3);
        let token = mgr.call(&mut p, wid, service).unwrap();
        // Callee side: the hardware delivered the caller WID in rdi.
        let caller = p.cpu().regs().rdi;
        assert_eq!(caller, wid.raw());
        observed.push(registry.dispatch(wid));
        mgr.ret(&mut p, token).unwrap();
    }
    assert_eq!(observed[0], Dispatch::Serve(ServiceTier::Full));
    assert!(matches!(
        observed[1],
        Dispatch::Serve(ServiceTier::Throttled { .. })
    ));
    assert_eq!(observed[2], Dispatch::Throttle);
    // One world in the table serves all of it.
    assert_eq!(mgr.table().len(), 3);
}
