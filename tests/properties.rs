//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use std::collections::HashMap;

use crossover::plan::{HopPlanner, Mechanism, WorldCoord};
use crossover::table::WorldTable;
use crossover::world::WorldDescriptor;
use guestos::pipe::Pipe;
use mmu::addr::{Gpa, Gva, Hpa, PAGE_SIZE};
use mmu::ept::Ept;
use mmu::pagetable::PageTable;
use mmu::perms::Perms;
use mmu::radix::Radix;
use mmu::tlb::Tlb;

// ---------------------------------------------------------------
// Radix table vs a HashMap model
// ---------------------------------------------------------------

#[derive(Debug, Clone)]
enum RadixOp {
    Insert(u64, u32),
    Remove(u64),
    Lookup(u64),
}

fn radix_op() -> impl Strategy<Value = RadixOp> {
    // Frames drawn from a small pool to force collisions and reuse.
    let frame = prop_oneof![0u64..64, prop::sample::select(vec![0u64, 511, 512, 262_144, 0xF_FFFF_FFFF])];
    prop_oneof![
        (frame.clone(), any::<u32>()).prop_map(|(f, v)| RadixOp::Insert(f, v)),
        frame.clone().prop_map(RadixOp::Remove),
        frame.prop_map(RadixOp::Lookup),
    ]
}

proptest! {
    #[test]
    fn radix_matches_hashmap_model(ops in prop::collection::vec(radix_op(), 1..200)) {
        let mut radix = Radix::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for op in ops {
            match op {
                RadixOp::Insert(f, v) => {
                    let got = radix.insert(f, v).expect("in range");
                    let want = model.insert(f, v);
                    prop_assert_eq!(got, want);
                }
                RadixOp::Remove(f) => {
                    prop_assert_eq!(radix.remove(f), model.remove(&f));
                }
                RadixOp::Lookup(f) => {
                    prop_assert_eq!(radix.lookup(f), model.get(&f));
                }
            }
            prop_assert_eq!(radix.len(), model.len() as u64);
        }
        // Iteration yields exactly the model's entries, sorted.
        let mut entries: Vec<(u64, u32)> = model.into_iter().collect();
        entries.sort_unstable();
        let got: Vec<(u64, u32)> = radix.iter().map(|(f, v)| (f, *v)).collect();
        prop_assert_eq!(got, entries);
    }

    // ---------------------------------------------------------------
    // Two-stage translation invariants
    // ---------------------------------------------------------------

    #[test]
    fn translation_preserves_page_offsets(
        vpn in 0u64..1024,
        gpn in 0u64..1024,
        hpn in 1u64..1024,
        offset in 0u64..PAGE_SIZE,
    ) {
        let mut pt = PageTable::new(0x1000);
        let mut ept = Ept::new(0xA000);
        pt.map(Gva::from_frame(vpn), Gpa::from_frame(gpn), Perms::rw()).expect("map pt");
        ept.map(Gpa::from_frame(gpn), Hpa::from_frame(hpn), Perms::rw()).expect("map ept");
        let gva = Gva::from_frame(vpn) + offset;
        let hpa = mmu::translate::translate(&pt, &ept, gva, Perms::r()).expect("translate");
        prop_assert_eq!(hpa.page_offset(), offset);
        prop_assert_eq!(hpa.page_base(), Hpa::from_frame(hpn));
    }

    #[test]
    fn unmapped_addresses_always_fault(
        mapped_vpn in 0u64..512,
        probe_vpn in 0u64..1024,
    ) {
        let mut pt = PageTable::new(0x1000);
        pt.map(Gva::from_frame(mapped_vpn), Gpa::from_frame(7), Perms::rw())
            .expect("map");
        let result = pt.translate(Gva::from_frame(probe_vpn), Perms::r());
        if probe_vpn == mapped_vpn {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn effective_permissions_are_the_intersection(
        pt_r in any::<bool>(), pt_w in any::<bool>(),
        ept_r in any::<bool>(), ept_w in any::<bool>(),
    ) {
        let mut pt_perms = Perms::NONE;
        if pt_r { pt_perms = pt_perms | Perms::r(); }
        if pt_w { pt_perms = pt_perms | Perms::w(); }
        let mut ept_perms = Perms::NONE;
        if ept_r { ept_perms = ept_perms | Perms::r(); }
        if ept_w { ept_perms = ept_perms | Perms::w(); }

        let mut pt = PageTable::new(0x1000);
        let mut ept = Ept::new(0xA000);
        pt.map(Gva(0x4000), Gpa(0x2000), pt_perms).expect("map");
        ept.map(Gpa(0x2000), Hpa(0x3000), ept_perms).expect("map");
        for (access, pt_ok, ept_ok) in [
            (Perms::r(), pt_r, ept_r),
            (Perms::w(), pt_w, ept_w),
        ] {
            let res = mmu::translate::translate(&pt, &ept, Gva(0x4000), access);
            prop_assert_eq!(res.is_ok(), pt_ok && ept_ok);
        }
    }

    // ---------------------------------------------------------------
    // TLB consistency
    // ---------------------------------------------------------------

    #[test]
    fn tlb_never_leaks_across_tags(
        entries in prop::collection::vec((1u64..8, 1u64..8, 0u64..32, 1u64..512), 1..40),
        probe in (1u64..8, 1u64..8, 0u64..32),
    ) {
        let mut tlb = Tlb::new(1024); // big enough to never evict here
        let mut model: HashMap<(u64, u64, u64), Hpa> = HashMap::new();
        for (cr3, eptp, vpn, hpn) in entries {
            tlb.insert(cr3, eptp, Gva::from_frame(vpn), Hpa::from_frame(hpn), Perms::rw());
            model.insert((cr3, eptp, vpn), Hpa::from_frame(hpn));
        }
        let (cr3, eptp, vpn) = probe;
        let got = tlb.lookup(cr3, eptp, Gva::from_frame(vpn)).map(|e| e.hpa_base);
        prop_assert_eq!(got, model.get(&(cr3, eptp, vpn)).copied());
    }

    #[test]
    fn tlb_invalidation_is_exact(
        keep_cr3 in 1u64..4,
        kill_cr3 in 4u64..8,
        vpns in prop::collection::vec(0u64..64, 1..20),
    ) {
        let mut tlb = Tlb::new(1024);
        for &vpn in &vpns {
            tlb.insert(keep_cr3, 1, Gva::from_frame(vpn), Hpa::from_frame(vpn + 1), Perms::r());
            tlb.insert(kill_cr3, 1, Gva::from_frame(vpn), Hpa::from_frame(vpn + 1), Perms::r());
        }
        tlb.invalidate_cr3(kill_cr3);
        for &vpn in &vpns {
            prop_assert!(tlb.lookup(keep_cr3, 1, Gva::from_frame(vpn)).is_some());
            prop_assert!(tlb.lookup(kill_cr3, 1, Gva::from_frame(vpn)).is_none());
        }
    }

    // ---------------------------------------------------------------
    // World table invariants
    // ---------------------------------------------------------------

    #[test]
    fn wids_are_never_reused_under_any_schedule(
        script in prop::collection::vec(any::<bool>(), 1..60)
    ) {
        // true = create, false = delete the oldest live world.
        let mut table = WorldTable::new();
        let mut live = Vec::new();
        let mut all_seen = Vec::new();
        let mut cr3 = 0x1000u64;
        for create in script {
            if create {
                cr3 += 0x1000;
                let wid = table
                    .create(WorldDescriptor::host_user(cr3, 0))
                    .expect("host worlds unquota'd");
                prop_assert!(!all_seen.contains(&wid), "reused {wid}");
                all_seen.push(wid);
                live.push(wid);
            } else if let Some(wid) = live.pop() {
                table.delete(wid).expect("live world");
            }
        }
        // Every live world resolves; every dead one does not.
        for wid in &all_seen {
            prop_assert_eq!(table.lookup(*wid).is_some(), live.contains(wid));
        }
    }

    // ---------------------------------------------------------------
    // Hop planner properties
    // ---------------------------------------------------------------

    #[test]
    fn planner_mechanism_ordering(from_idx in 0usize..10, to_idx in 0usize..10) {
        let planner = HopPlanner::new(2);
        let pairs = HopPlanner::table3_pairs();
        let from = pairs[from_idx].0;
        let to = pairs[to_idx].1;
        let sw = planner.hops(from, to, Mechanism::Existing);
        let vmf = planner.hops(from, to, Mechanism::Vmfunc);
        let xo = planner.hops(from, to, Mechanism::CrossOver);
        // CrossOver is always optimal (0 or 1 hop).
        prop_assert!(xo.expect("total graph") <= 1);
        // Adding VMFUNC edges can only help.
        if let (Some(sw), Some(vmf)) = (sw, vmf) {
            prop_assert!(vmf <= sw, "{from} -> {to}: vmfunc {vmf} > sw {sw}");
        }
    }

    #[test]
    fn planner_worlds_reach_each_other_with_existing_mechanisms(
        vms in 1u16..6,
    ) {
        let planner = HopPlanner::new(vms);
        for from in planner.worlds() {
            for to in planner.worlds() {
                prop_assert!(
                    planner.hops(from, to, Mechanism::Existing).is_some(),
                    "{from} -> {to} unreachable"
                );
            }
        }
    }

    // ---------------------------------------------------------------
    // Pipe FIFO property
    // ---------------------------------------------------------------

    #[test]
    fn pipe_is_fifo_and_lossless(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..20),
        read_sizes in prop::collection::vec(1usize..128, 1..40),
    ) {
        let mut pipe = Pipe::new();
        let mut expected: Vec<u8> = Vec::new();
        for chunk in &chunks {
            if pipe.write(chunk).is_ok() {
                expected.extend_from_slice(chunk);
            }
        }
        let mut got = Vec::new();
        for size in read_sizes {
            got.extend(pipe.read(size));
        }
        got.extend(pipe.read(usize::MAX >> 1));
        prop_assert_eq!(got, expected);
    }

    // ---------------------------------------------------------------
    // Switch classification is symmetric
    // ---------------------------------------------------------------

    #[test]
    fn crossing_predicates_are_symmetric(a in 0usize..10, b in 0usize..10) {
        let pairs = HopPlanner::table3_pairs();
        let x: WorldCoord = pairs[a].0;
        let y: WorldCoord = pairs[b].1;
        prop_assert_eq!(x.crosses_hg(&y), y.crosses_hg(&x));
        prop_assert_eq!(x.crosses_ring(&y), y.crosses_ring(&x));
        prop_assert_eq!(x.crosses_space(&y), y.crosses_space(&x));
    }
}


// ---------------------------------------------------------------
// World-table caches vs a model, and manager call-stack discipline
// ---------------------------------------------------------------

mod crossover_props {
    use super::*;
    use crossover::call::{Direction, WorldCallUnit};
    use crossover::manager::WorldManager;
    use crossover::wtc::{IwtCache, WtCache};
    use crossover::world::{Wid, WorldEntry};
    use hypervisor::platform::Platform;
    use hypervisor::vm::VmConfig;
    use machine::mode::{Operation, Ring};

    fn entry(table: &mut WorldTable, cr3: u64) -> WorldEntry {
        let wid = table
            .create(WorldDescriptor::host_user(cr3, 0xE000))
            .expect("unquota'd");
        *table.lookup(wid).expect("present")
    }

    proptest! {
        #[test]
        fn wt_cache_agrees_with_map_when_uncapped(
            ops in prop::collection::vec((0u64..24, any::<bool>()), 1..80)
        ) {
            // With capacity >= working set, the cache must behave exactly
            // like a map fed by fills (no capacity effects).
            let mut table = WorldTable::new();
            let mut cache = WtCache::new(64);
            let mut model: HashMap<u64, WorldEntry> = HashMap::new();
            let mut made: Vec<WorldEntry> = Vec::new();
            for (slot, fill) in ops {
                if fill {
                    let e = if (slot as usize) < made.len() {
                        made[slot as usize]
                    } else {
                        let e = entry(&mut table, 0x1000 * (made.len() as u64 + 1));
                        made.push(e);
                        e
                    };
                    cache.fill(e);
                    model.insert(e.wid.raw(), e);
                } else if let Some(e) = made.get(slot as usize) {
                    prop_assert_eq!(
                        cache.lookup(e.wid),
                        model.get(&e.wid.raw()).copied()
                    );
                }
            }
            prop_assert_eq!(cache.len(), model.len());
        }

        #[test]
        fn iwt_cache_never_confuses_contexts(
            ptps in prop::collection::vec(1u64..64, 2..20)
        ) {
            let mut cache = IwtCache::new(256);
            for (i, &ptp) in ptps.iter().enumerate() {
                let ctx = crossover::world::WorldContext {
                    operation: Operation::NonRoot,
                    ring: Ring::Ring0,
                    eptp: 1,
                    ptp: ptp * 0x1000,
                };
                cache.fill(ctx, Wid::from_raw_test(i as u64 + 1));
            }
            // Every lookup returns the WID of the *last* fill for that
            // exact context, never a neighbour's.
            let mut last: HashMap<u64, u64> = HashMap::new();
            for (i, &ptp) in ptps.iter().enumerate() {
                last.insert(ptp, i as u64 + 1);
            }
            for (&ptp, &wid) in &last {
                let ctx = crossover::world::WorldContext {
                    operation: Operation::NonRoot,
                    ring: Ring::Ring0,
                    eptp: 1,
                    ptp: ptp * 0x1000,
                };
                prop_assert_eq!(cache.lookup(&ctx).map(|w| w.raw()), Some(wid));
            }
        }

        #[test]
        fn nested_calls_always_unwind_lifo(depth in 1usize..6) {
            // Chain worlds w0 -> w1 -> ... -> wN and unwind; CR3 must
            // retrace the chain exactly in reverse.
            let mut p = Platform::new_default();
            let vm = p.create_vm(VmConfig::named("chain")).expect("vm");
            let mut mgr = WorldManager::with_quota(16);
            let mut wids = Vec::new();
            for i in 0..=depth {
                let ring0 = i != 0; // callers chain through kernel worlds
                let cr3 = 0x1000 * (i as u64 + 1);
                let d = if ring0 {
                    WorldDescriptor::guest_kernel(&p, vm, cr3, 0).expect("desc")
                } else {
                    WorldDescriptor::guest_user(&p, vm, cr3, 0).expect("desc")
                };
                wids.push(mgr.register_world(&mut p, d).expect("register"));
            }
            p.vmentry(vm).expect("vmentry");
            p.cpu_mut().force_cr3(0x1000);
            let mut tokens = Vec::new();
            for i in 0..depth {
                tokens.push(mgr.call(&mut p, wids[i], wids[i + 1]).expect("call"));
            }
            for i in (0..depth).rev() {
                mgr.ret(&mut p, tokens[i]).expect("ret");
                prop_assert_eq!(p.cpu().cr3(), 0x1000 * (i as u64 + 1));
            }
            prop_assert_eq!(mgr.call_depth(wids[0]), 0);
        }

        #[test]
        fn world_call_units_are_deterministic(calls in 1usize..30) {
            // Two identical units fed the same call sequence produce the
            // same cache statistics (no hidden nondeterminism).
            let run = || {
                let mut p = Platform::new_default();
                let vm1 = p.create_vm(VmConfig::named("a")).expect("vm");
                let vm2 = p.create_vm(VmConfig::named("b")).expect("vm");
                let mut table = WorldTable::new();
                let caller = table
                    .create(WorldDescriptor::guest_user(&p, vm1, 0x1000, 0).expect("d"))
                    .expect("create");
                let callee = table
                    .create(WorldDescriptor::guest_kernel(&p, vm2, 0x2000, 0).expect("d"))
                    .expect("create");
                let mut unit = WorldCallUnit::new();
                p.vmentry(vm1).expect("vmentry");
                p.cpu_mut().force_cr3(0x1000);
                for _ in 0..calls {
                    unit.world_call(&mut p, &table, callee, Direction::Call)
                        .expect("call");
                    unit.world_call(&mut p, &table, caller, Direction::Return)
                        .expect("ret");
                }
                (unit.wt_stats(), unit.iwt_stats(), p.cpu().meter().cycles())
            };
            prop_assert_eq!(run(), run());
        }
    }

    /// Test-only WID forging helper (property tests need arbitrary ids).
    trait WidTestExt {
        fn from_raw_test(raw: u64) -> Wid;
    }
    impl WidTestExt for Wid {
        fn from_raw_test(raw: u64) -> Wid {
            let mut t = WorldTable::new();
            let mut w = t
                .create(WorldDescriptor::host_user(0x1000, 0))
                .expect("quota");
            let mut cr3 = 0x1000;
            while w.raw() < raw {
                cr3 += 0x1000;
                w = t
                    .create(WorldDescriptor::host_user(cr3, 0))
                    .expect("quota");
            }
            w
        }
    }
}
