//! Randomized property tests on the core data structures and invariants.
//!
//! Formerly written with `proptest`; now driven by the in-tree
//! deterministic [`SplitMix64`] generator so the workspace builds and
//! tests offline. Each test replays a fixed number of seeded random
//! cases, so failures are reproducible from the printed seed.

use std::collections::HashMap;

use crossover::plan::{HopPlanner, Mechanism, WorldCoord};
use crossover::table::WorldTable;
use crossover::world::WorldDescriptor;
use guestos::pipe::Pipe;
use machine::rng::SplitMix64;
use mmu::addr::{Gpa, Gva, Hpa, PAGE_SIZE};
use mmu::ept::Ept;
use mmu::pagetable::PageTable;
use mmu::perms::Perms;
use mmu::radix::Radix;
use mmu::tlb::Tlb;

const CASES: u64 = 64;

/// Runs `f` once per case with an independent, reproducible generator.
fn for_each_case(test: &str, f: impl Fn(&mut SplitMix64)) {
    for case in 0..CASES {
        let seed = 0xC0DE_0000 + case;
        let mut rng = SplitMix64::new(seed);
        eprintln!("{test}: case {case} (seed {seed:#x})");
        f(&mut rng);
    }
}

// ---------------------------------------------------------------
// Radix table vs a HashMap model
// ---------------------------------------------------------------

#[test]
fn radix_matches_hashmap_model() {
    let pool = [0u64, 511, 512, 262_144, 0xF_FFFF_FFFF];
    for_each_case("radix_matches_hashmap_model", |rng| {
        let mut radix = Radix::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        let ops = rng.range(1, 200);
        for _ in 0..ops {
            // Frames drawn from a small pool to force collisions and reuse.
            let frame = if rng.flip() {
                rng.below(64)
            } else {
                *rng.pick(&pool)
            };
            match rng.below(3) {
                0 => {
                    let v = rng.next_u64() as u32;
                    let got = radix.insert(frame, v).expect("in range");
                    let want = model.insert(frame, v);
                    assert_eq!(got, want);
                }
                1 => assert_eq!(radix.remove(frame), model.remove(&frame)),
                _ => assert_eq!(radix.lookup(frame), model.get(&frame)),
            }
            assert_eq!(radix.len(), model.len() as u64);
        }
        // Iteration yields exactly the model's entries, sorted.
        let mut entries: Vec<(u64, u32)> = model.into_iter().collect();
        entries.sort_unstable();
        let got: Vec<(u64, u32)> = radix.iter().map(|(f, v)| (f, *v)).collect();
        assert_eq!(got, entries);
    });
}

// ---------------------------------------------------------------
// Two-stage translation invariants
// ---------------------------------------------------------------

#[test]
fn translation_preserves_page_offsets() {
    for_each_case("translation_preserves_page_offsets", |rng| {
        let vpn = rng.below(1024);
        let gpn = rng.below(1024);
        let hpn = rng.range(1, 1024);
        let offset = rng.below(PAGE_SIZE);
        let mut pt = PageTable::new(0x1000);
        let mut ept = Ept::new(0xA000);
        pt.map(Gva::from_frame(vpn), Gpa::from_frame(gpn), Perms::rw())
            .expect("map pt");
        ept.map(Gpa::from_frame(gpn), Hpa::from_frame(hpn), Perms::rw())
            .expect("map ept");
        let gva = Gva::from_frame(vpn) + offset;
        let hpa = mmu::translate::translate(&pt, &ept, gva, Perms::r()).expect("translate");
        assert_eq!(hpa.page_offset(), offset);
        assert_eq!(hpa.page_base(), Hpa::from_frame(hpn));
    });
}

#[test]
fn unmapped_addresses_always_fault() {
    for_each_case("unmapped_addresses_always_fault", |rng| {
        let mapped_vpn = rng.below(512);
        let probe_vpn = rng.below(1024);
        let mut pt = PageTable::new(0x1000);
        pt.map(Gva::from_frame(mapped_vpn), Gpa::from_frame(7), Perms::rw())
            .expect("map");
        let result = pt.translate(Gva::from_frame(probe_vpn), Perms::r());
        assert_eq!(result.is_ok(), probe_vpn == mapped_vpn);
    });
}

#[test]
fn effective_permissions_are_the_intersection() {
    for_each_case("effective_permissions_are_the_intersection", |rng| {
        let (pt_r, pt_w, ept_r, ept_w) = (rng.flip(), rng.flip(), rng.flip(), rng.flip());
        let mut pt_perms = Perms::NONE;
        if pt_r {
            pt_perms = pt_perms | Perms::r();
        }
        if pt_w {
            pt_perms = pt_perms | Perms::w();
        }
        let mut ept_perms = Perms::NONE;
        if ept_r {
            ept_perms = ept_perms | Perms::r();
        }
        if ept_w {
            ept_perms = ept_perms | Perms::w();
        }

        let mut pt = PageTable::new(0x1000);
        let mut ept = Ept::new(0xA000);
        pt.map(Gva(0x4000), Gpa(0x2000), pt_perms).expect("map");
        ept.map(Gpa(0x2000), Hpa(0x3000), ept_perms).expect("map");
        for (access, pt_ok, ept_ok) in [(Perms::r(), pt_r, ept_r), (Perms::w(), pt_w, ept_w)] {
            let res = mmu::translate::translate(&pt, &ept, Gva(0x4000), access);
            assert_eq!(res.is_ok(), pt_ok && ept_ok);
        }
    });
}

// ---------------------------------------------------------------
// TLB consistency
// ---------------------------------------------------------------

#[test]
fn tlb_never_leaks_across_tags() {
    for_each_case("tlb_never_leaks_across_tags", |rng| {
        let mut tlb = Tlb::new(1024); // big enough to never evict here
        let mut model: HashMap<(u64, u64, u64), Hpa> = HashMap::new();
        for _ in 0..rng.range(1, 40) {
            let (cr3, eptp, vpn, hpn) = (
                rng.range(1, 8),
                rng.range(1, 8),
                rng.below(32),
                rng.range(1, 512),
            );
            tlb.insert(
                cr3,
                eptp,
                Gva::from_frame(vpn),
                Hpa::from_frame(hpn),
                Perms::rw(),
            );
            model.insert((cr3, eptp, vpn), Hpa::from_frame(hpn));
        }
        let (cr3, eptp, vpn) = (rng.range(1, 8), rng.range(1, 8), rng.below(32));
        let got = tlb
            .lookup(cr3, eptp, Gva::from_frame(vpn))
            .map(|e| e.hpa_base);
        assert_eq!(got, model.get(&(cr3, eptp, vpn)).copied());
    });
}

#[test]
fn tlb_invalidation_is_exact() {
    for_each_case("tlb_invalidation_is_exact", |rng| {
        let keep_cr3 = rng.range(1, 4);
        let kill_cr3 = rng.range(4, 8);
        let vpns: Vec<u64> = (0..rng.range(1, 20)).map(|_| rng.below(64)).collect();
        let mut tlb = Tlb::new(1024);
        for &vpn in &vpns {
            tlb.insert(
                keep_cr3,
                1,
                Gva::from_frame(vpn),
                Hpa::from_frame(vpn + 1),
                Perms::r(),
            );
            tlb.insert(
                kill_cr3,
                1,
                Gva::from_frame(vpn),
                Hpa::from_frame(vpn + 1),
                Perms::r(),
            );
        }
        tlb.invalidate_cr3(kill_cr3);
        for &vpn in &vpns {
            assert!(tlb.lookup(keep_cr3, 1, Gva::from_frame(vpn)).is_some());
            assert!(tlb.lookup(kill_cr3, 1, Gva::from_frame(vpn)).is_none());
        }
    });
}

// ---------------------------------------------------------------
// World table invariants
// ---------------------------------------------------------------

#[test]
fn wids_are_never_reused_under_any_schedule() {
    for_each_case("wids_are_never_reused_under_any_schedule", |rng| {
        // flip = create, otherwise delete the newest live world.
        let mut table = WorldTable::new();
        let mut live = Vec::new();
        let mut all_seen = Vec::new();
        let mut cr3 = 0x1000u64;
        for _ in 0..rng.range(1, 60) {
            if rng.flip() {
                cr3 += 0x1000;
                let wid = table
                    .create(WorldDescriptor::host_user(cr3, 0))
                    .expect("host worlds unquota'd");
                assert!(!all_seen.contains(&wid), "reused {wid}");
                all_seen.push(wid);
                live.push(wid);
            } else if let Some(wid) = live.pop() {
                table.delete(wid).expect("live world");
            }
        }
        // Every live world resolves; every dead one does not.
        for wid in &all_seen {
            assert_eq!(table.lookup(*wid).is_some(), live.contains(wid));
        }
    });
}

// ---------------------------------------------------------------
// Hop planner properties
// ---------------------------------------------------------------

#[test]
fn planner_mechanism_ordering() {
    for_each_case("planner_mechanism_ordering", |rng| {
        let planner = HopPlanner::new(2);
        let pairs = HopPlanner::table3_pairs();
        let from = pairs[rng.below(pairs.len() as u64) as usize].0;
        let to = pairs[rng.below(pairs.len() as u64) as usize].1;
        let sw = planner.hops(from, to, Mechanism::Existing);
        let vmf = planner.hops(from, to, Mechanism::Vmfunc);
        let xo = planner.hops(from, to, Mechanism::CrossOver);
        // CrossOver is always optimal (0 or 1 hop).
        assert!(xo.expect("total graph") <= 1);
        // Adding VMFUNC edges can only help.
        if let (Some(sw), Some(vmf)) = (sw, vmf) {
            assert!(vmf <= sw, "{from} -> {to}: vmfunc {vmf} > sw {sw}");
        }
    });
}

#[test]
fn planner_worlds_reach_each_other_with_existing_mechanisms() {
    for vms in 1u16..6 {
        let planner = HopPlanner::new(vms);
        for from in planner.worlds() {
            for to in planner.worlds() {
                assert!(
                    planner.hops(from, to, Mechanism::Existing).is_some(),
                    "{from} -> {to} unreachable"
                );
            }
        }
    }
}

// ---------------------------------------------------------------
// Pipe FIFO property
// ---------------------------------------------------------------

#[test]
fn pipe_is_fifo_and_lossless() {
    for_each_case("pipe_is_fifo_and_lossless", |rng| {
        let mut pipe = Pipe::new();
        let mut expected: Vec<u8> = Vec::new();
        for _ in 0..rng.range(1, 20) {
            let chunk: Vec<u8> = (0..rng.range(1, 64))
                .map(|_| rng.next_u64() as u8)
                .collect();
            if pipe.write(&chunk).is_ok() {
                expected.extend_from_slice(&chunk);
            }
        }
        let mut got = Vec::new();
        for _ in 0..rng.range(1, 40) {
            got.extend(pipe.read(rng.range(1, 128) as usize));
        }
        got.extend(pipe.read(usize::MAX >> 1));
        assert_eq!(got, expected);
    });
}

// ---------------------------------------------------------------
// Switch classification is symmetric
// ---------------------------------------------------------------

#[test]
fn crossing_predicates_are_symmetric() {
    let pairs = HopPlanner::table3_pairs();
    for a in 0..pairs.len() {
        for b in 0..pairs.len() {
            let x: WorldCoord = pairs[a].0;
            let y: WorldCoord = pairs[b].1;
            assert_eq!(x.crosses_hg(&y), y.crosses_hg(&x));
            assert_eq!(x.crosses_ring(&y), y.crosses_ring(&x));
            assert_eq!(x.crosses_space(&y), y.crosses_space(&x));
        }
    }
}

// ---------------------------------------------------------------
// World-table caches vs a model, and manager call-stack discipline
// ---------------------------------------------------------------

mod crossover_props {
    use super::*;
    use crossover::call::{Direction, WorldCallUnit};
    use crossover::manager::WorldManager;
    use crossover::world::{Wid, WorldEntry};
    use crossover::wtc::{IwtCache, WtCache};
    use hypervisor::platform::Platform;
    use hypervisor::vm::VmConfig;
    use machine::mode::{Operation, Ring};

    fn entry(table: &mut WorldTable, cr3: u64) -> WorldEntry {
        let wid = table
            .create(WorldDescriptor::host_user(cr3, 0xE000))
            .expect("unquota'd");
        *table.lookup(wid).expect("present")
    }

    #[test]
    fn wt_cache_agrees_with_map_when_uncapped() {
        for_each_case("wt_cache_agrees_with_map_when_uncapped", |rng| {
            // With capacity >= working set, the cache must behave exactly
            // like a map fed by fills (no capacity effects).
            let mut table = WorldTable::new();
            let mut cache = WtCache::new(64);
            let mut model: HashMap<u64, WorldEntry> = HashMap::new();
            let mut made: Vec<WorldEntry> = Vec::new();
            for _ in 0..rng.range(1, 80) {
                let slot = rng.below(24);
                if rng.flip() {
                    let e = if (slot as usize) < made.len() {
                        made[slot as usize]
                    } else {
                        let e = entry(&mut table, 0x1000 * (made.len() as u64 + 1));
                        made.push(e);
                        e
                    };
                    cache.fill(e);
                    model.insert(e.wid.raw(), e);
                } else if let Some(e) = made.get(slot as usize) {
                    assert_eq!(cache.lookup(e.wid), model.get(&e.wid.raw()).copied());
                }
            }
            assert_eq!(cache.len(), model.len());
        });
    }

    #[test]
    fn iwt_cache_never_confuses_contexts() {
        for_each_case("iwt_cache_never_confuses_contexts", |rng| {
            let ptps: Vec<u64> = (0..rng.range(2, 20)).map(|_| rng.range(1, 64)).collect();
            let mut cache = IwtCache::new(256);
            for (i, &ptp) in ptps.iter().enumerate() {
                let ctx = crossover::world::WorldContext {
                    operation: Operation::NonRoot,
                    ring: Ring::Ring0,
                    eptp: 1,
                    ptp: ptp * 0x1000,
                };
                cache.fill(ctx, Wid::from_raw(i as u64 + 1));
            }
            // Every lookup returns the WID of the *last* fill for that
            // exact context, never a neighbour's.
            let mut last: HashMap<u64, u64> = HashMap::new();
            for (i, &ptp) in ptps.iter().enumerate() {
                last.insert(ptp, i as u64 + 1);
            }
            for (&ptp, &wid) in &last {
                let ctx = crossover::world::WorldContext {
                    operation: Operation::NonRoot,
                    ring: Ring::Ring0,
                    eptp: 1,
                    ptp: ptp * 0x1000,
                };
                assert_eq!(cache.lookup(&ctx).map(|w| w.raw()), Some(wid));
            }
        });
    }

    #[test]
    fn nested_calls_always_unwind_lifo() {
        for depth in 1usize..6 {
            // Chain worlds w0 -> w1 -> ... -> wN and unwind; CR3 must
            // retrace the chain exactly in reverse.
            let mut p = Platform::new_default();
            let vm = p.create_vm(VmConfig::named("chain")).expect("vm");
            let mut mgr = WorldManager::with_quota(16);
            let mut wids = Vec::new();
            for i in 0..=depth {
                let ring0 = i != 0; // callers chain through kernel worlds
                let cr3 = 0x1000 * (i as u64 + 1);
                let d = if ring0 {
                    WorldDescriptor::guest_kernel(&p, vm, cr3, 0).expect("desc")
                } else {
                    WorldDescriptor::guest_user(&p, vm, cr3, 0).expect("desc")
                };
                wids.push(mgr.register_world(&mut p, d).expect("register"));
            }
            p.vmentry(vm).expect("vmentry");
            p.cpu_mut().force_cr3(0x1000);
            let mut tokens = Vec::new();
            for i in 0..depth {
                tokens.push(mgr.call(&mut p, wids[i], wids[i + 1]).expect("call"));
            }
            for i in (0..depth).rev() {
                mgr.ret(&mut p, tokens[i]).expect("ret");
                assert_eq!(p.cpu().cr3(), 0x1000 * (i as u64 + 1));
            }
            assert_eq!(mgr.call_depth(wids[0]), 0);
        }
    }

    #[test]
    fn world_call_units_are_deterministic() {
        for calls in [1usize, 2, 7, 29] {
            // Two identical units fed the same call sequence produce the
            // same cache statistics (no hidden nondeterminism).
            let run = || {
                let mut p = Platform::new_default();
                let vm1 = p.create_vm(VmConfig::named("a")).expect("vm");
                let vm2 = p.create_vm(VmConfig::named("b")).expect("vm");
                let mut table = WorldTable::new();
                let caller = table
                    .create(WorldDescriptor::guest_user(&p, vm1, 0x1000, 0).expect("d"))
                    .expect("create");
                let callee = table
                    .create(WorldDescriptor::guest_kernel(&p, vm2, 0x2000, 0).expect("d"))
                    .expect("create");
                let mut unit = WorldCallUnit::new();
                p.vmentry(vm1).expect("vmentry");
                p.cpu_mut().force_cr3(0x1000);
                for _ in 0..calls {
                    unit.world_call(&mut p, &table, callee, Direction::Call)
                        .expect("call");
                    unit.world_call(&mut p, &table, caller, Direction::Return)
                        .expect("ret");
                }
                (unit.wt_stats(), unit.iwt_stats(), p.cpu().meter().cycles())
            };
            assert_eq!(run(), run());
        }
    }
}
