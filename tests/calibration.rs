//! Calibration tests: the paper's headline numbers, asserted at the
//! integration level so a cost-model regression cannot silently skew the
//! reproduced tables.

use guestos::syscall::Syscall;
use machine::cost::Frequency;
use systems::env::CrossVmEnv;
use systems::fuse::{Fuse, FuseOp};
use systems::hypershell::HyperShell;
use systems::proxos::Proxos;
use systems::shadowcontext::ShadowContext;
use systems::tahoma::Tahoma;
use workloads::lmbench::{LmbenchHarness, LmbenchMode, LmbenchOp};
use workloads::openssh::{scp_throughput, SshMode};
use workloads::utilities::{run_utility, utilities, UtilityMode};

/// Relative tolerance for latency calibration points.
const TOL: f64 = 0.15;

fn within(measured: f64, paper: f64, tol: f64, what: &str) {
    let err = (measured - paper).abs() / paper;
    assert!(
        err < tol,
        "{what}: measured {measured:.3} vs paper {paper:.3} ({:.0}% off)",
        err * 100.0
    );
}

#[test]
fn table4_null_syscall_column() {
    // The four systems' NULL-syscall rows, original and optimized.
    let mut p = Proxos::baseline().unwrap();
    let (_, d) = p.measure_syscall(&Syscall::Null).unwrap();
    within(d.micros(Frequency::GHZ_3_4), 3.35, TOL, "Proxos orig");
    let mut p = Proxos::optimized().unwrap();
    let (_, d) = p.measure_syscall(&Syscall::Null).unwrap();
    within(d.micros(Frequency::GHZ_3_4), 0.42, TOL, "Proxos opt");

    let mut h = HyperShell::baseline().unwrap();
    let (_, d) = h.measure_syscall(&Syscall::Null).unwrap();
    within(d.micros(Frequency::GHZ_3_4), 2.60, TOL, "HyperShell orig");
    let mut h = HyperShell::optimized().unwrap();
    let (_, d) = h.measure_syscall(&Syscall::Null).unwrap();
    within(d.micros(Frequency::GHZ_3_4), 0.72, TOL, "HyperShell opt");

    let mut t = Tahoma::baseline().unwrap();
    let (_, d) = t.measure_call(&Syscall::Null).unwrap();
    within(d.micros(Frequency::GHZ_3_4), 42.0, TOL, "Tahoma orig");
    let mut t = Tahoma::optimized().unwrap();
    let (_, d) = t.measure_call(&Syscall::Null).unwrap();
    within(d.micros(Frequency::GHZ_3_4), 0.68, TOL, "Tahoma opt");

    let mut s = ShadowContext::baseline().unwrap();
    let (_, d) = s.measure_syscall(&Syscall::Null).unwrap();
    within(
        d.micros(Frequency::GHZ_3_4),
        3.40,
        TOL,
        "ShadowContext orig",
    );
    let mut s = ShadowContext::optimized().unwrap();
    let (_, d) = s.measure_syscall(&Syscall::Null).unwrap();
    within(d.micros(Frequency::GHZ_3_4), 0.71, TOL, "ShadowContext opt");
}

#[test]
fn table7_native_column_is_exact() {
    let mut h = LmbenchHarness::new().unwrap();
    for op in LmbenchOp::ALL {
        assert_eq!(
            h.instructions(op, LmbenchMode::Native).unwrap(),
            op.paper_native(),
            "{}",
            op.name()
        );
    }
}

#[test]
fn table7_crossover_column_is_exact() {
    let mut h = LmbenchHarness::new().unwrap();
    for op in LmbenchOp::ALL {
        let with = h.instructions(op, LmbenchMode::WithCrossOver).unwrap();
        let calls = if op == LmbenchOp::OpenClose { 2 } else { 1 };
        assert_eq!(with, op.paper_native() + 33 * calls, "{}", op.name());
    }
}

#[test]
fn table5_native_column() {
    for u in utilities() {
        let ms = run_utility(&u, UtilityMode::Native).unwrap();
        within(ms, u.paper_native_ms, 0.10, u.name);
    }
}

#[test]
fn table5_reductions_in_paper_band() {
    // The paper's band is 55-74%; require every tool inside a slightly
    // widened band.
    for u in utilities() {
        let without = run_utility(&u, UtilityMode::WithoutCrossOver).unwrap();
        let with = run_utility(&u, UtilityMode::WithCrossOver).unwrap();
        let red = (without - with) / without;
        assert!(
            (0.50..0.85).contains(&red),
            "{}: reduction {:.1}%",
            u.name,
            red * 100.0
        );
    }
}

#[test]
fn table6_steady_state_row() {
    within(
        scp_throughput(SshMode::Native, 256).unwrap(),
        64.0,
        0.10,
        "scp native 256MB",
    );
    within(
        scp_throughput(SshMode::WithCrossOver, 256).unwrap(),
        42.7,
        0.10,
        "scp w/ CrossOver 256MB",
    );
    within(
        scp_throughput(SshMode::WithoutCrossOver, 256).unwrap(),
        23.3,
        0.10,
        "scp w/o CrossOver 256MB",
    );
}

#[test]
fn native_syscall_baseline_is_0_29_us() {
    let mut env = CrossVmEnv::new("a", "b").unwrap();
    let snap = env.platform.cpu().meter().snapshot();
    env.k1.syscall(&mut env.platform, Syscall::Null).unwrap();
    let d = env.platform.cpu().meter().since(snap);
    within(d.micros(Frequency::GHZ_3_4), 0.29, 0.01, "native NULL");
}

#[test]
fn fuse_user_to_user_call_beats_the_kernel_detour() {
    let mut f = Fuse::new().unwrap();
    let op = FuseOp::Getattr {
        path: "/mnt/fuse/README".into(),
    };
    let (_, base) = f.measure(&op, true).unwrap();
    let (_, opt) = f.measure(&op, false).unwrap();
    assert!(opt.cycles.0 * 2 < base.cycles.0);
}
