#!/usr/bin/env python3
"""Bench-trajectory tripwire.

Every bench binary asserts its own acceptance floors in-process, but a
floor only catches a collapse — a slow drift from 81% improvement down
to 72% sails under a 70% gate one PR at a time. This script diffs the
headline metrics of freshly generated ``BENCH_*.json`` documents
against the baselines committed at the repo root and fails when a
metric moves past its tolerance band in the regressing direction.
Improvements beyond the band are reported (so the baseline gets
refreshed) but do not fail.

Usage:
    bench_tripwire.py FRESH.json [FRESH2.json ...]   # explicit files
    bench_tripwire.py --check [--fresh-dir DIR]      # scan a directory

A fresh file is matched to its committed baseline by name, with any
``_N`` run suffix stripped (``BENCH_hotpath_2.json`` compares against
``BENCH_hotpath.json``). Benches without a spec below, and spec'd
benches whose fresh or baseline document is absent, are skipped with a
note — each CI job can point the tripwire at only the bench it just
ran. Exits nonzero if any compared metric regressed, or if --check
found nothing to compare.

Host-timing-dependent values (wall-clock nanoseconds, drill landing
cycles) are deliberately not spec'd; everything below is virtual-time
or a ratio of virtual-time quantities, so the bands can be tight
without flaking on a noisy runner.
"""

import argparse
import json
import os
import re
import sys

# (json-path, absolute tolerance, higher_is_better)
# The path walks nested objects; arrays are not traversed.
SPECS = {
    "BENCH_hotpath.json": [
        ("improvement_pct_4_workers", 8.0, True),
    ],
    "BENCH_switchless.json": [
        ("improvement_pct_skewed_adaptive", 8.0, True),
        ("uniform_delta_pct", 8.0, False),
    ],
    "BENCH_faults.json": [
        ("degraded_mode/overhead_pct", 5.0, False),
        ("chaos_summary/mean_recovery_cycles", 2500.0, False),
        ("chaos_summary/lost_verdicts", 0.0, False),
        ("chaos_summary/duplicated_verdicts", 0.0, False),
    ],
    "BENCH_gateway.json": [
        ("pipelined_vs_blocking/pipelined_vs_blocking_x", 0.4, True),
        ("pipelined_vs_blocking/lost_verdicts", 0.0, False),
        ("pipelined_vs_blocking/duplicated_verdicts", 0.0, False),
    ],
    "BENCH_scale.json": [
        # Ratio of host-ns percentiles: noisier than virtual time, so
        # the band is wide; the binary's own 1.5x assert is the floor.
        ("summary/p99_flatness_ratio", 0.35, False),
        ("summary/resident_bound_ok", 0.0, True),
    ],
    "BENCH_authz.json": [
        ("adversary_summary/policy_bypasses", 0.0, False),
        ("adversary_summary/lost_verdicts", 0.0, False),
        ("revocation/completions_after_witness", 8.0, False),
    ],
    "BENCH_slo.json": [
        ("fault_burst/detect_epochs", 2.0, False),
        ("degrade_shift/detect_epochs", 2.0, False),
    ],
}


def lookup(doc, path):
    node = doc
    for part in path.split("/"):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool):
        return float(node)
    if isinstance(node, (int, float)):
        return float(node)
    return None


def canonical(path):
    """BENCH_hotpath_2.json -> BENCH_hotpath.json"""
    return re.sub(r"_\d+\.json$", ".json", os.path.basename(path))


def compare(fresh_path, baseline_dir):
    """Returns (compared, regressions) counts for one fresh document."""
    name = canonical(fresh_path)
    spec = SPECS.get(name)
    if spec is None:
        print(f"  skip {fresh_path}: no tripwire spec for {name}")
        return 0, 0
    baseline_path = os.path.join(baseline_dir, name)
    if not os.path.exists(baseline_path):
        print(f"  skip {fresh_path}: no committed baseline {baseline_path}")
        return 0, 0
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    compared = regressions = 0
    for path, tol, higher_is_better in spec:
        base_v = lookup(baseline, path)
        fresh_v = lookup(fresh, path)
        if base_v is None:
            print(f"  skip {name}:{path}: key missing from baseline")
            continue
        if fresh_v is None:
            print(f"  FAIL {name}:{path}: key missing from fresh run")
            regressions += 1
            continue
        compared += 1
        delta = fresh_v - base_v
        regressed = delta < -tol if higher_is_better else delta > tol
        improved = delta > tol if higher_is_better else delta < -tol
        arrow = "REGRESSED" if regressed else "improved" if improved else "ok"
        print(
            f"  {'FAIL' if regressed else '  ok'} {name}:{path}: "
            f"{base_v:g} -> {fresh_v:g} (tol ±{tol:g}, {arrow})"
        )
        if regressed:
            regressions += 1
    return compared, regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="*", help="fresh BENCH_*.json documents")
    ap.add_argument(
        "--check",
        action="store_true",
        help="scan --fresh-dir for BENCH_*.json instead of naming files",
    )
    ap.add_argument("--fresh-dir", default="/tmp", help="directory --check scans")
    ap.add_argument(
        "--baseline-dir",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="directory holding the committed baselines (default: repo root)",
    )
    args = ap.parse_args()

    fresh = list(args.fresh)
    if args.check:
        fresh += sorted(
            os.path.join(args.fresh_dir, f)
            for f in os.listdir(args.fresh_dir)
            if re.fullmatch(r"BENCH_\w+\.json", f)
        )
    if not fresh:
        ap.error("name fresh documents or pass --check")

    total = failures = 0
    print(f"bench tripwire (baselines: {args.baseline_dir})")
    for path in fresh:
        compared, regressions = compare(path, args.baseline_dir)
        total += compared
        failures += regressions
    if failures:
        print(f"tripwire: {failures} metric(s) regressed past tolerance")
        return 1
    if total == 0:
        print("tripwire: nothing compared — no spec'd bench documents found")
        return 1
    print(f"tripwire: {total} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
