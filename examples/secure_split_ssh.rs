//! The §7.1.2 OpenSSH split-execution scenario.
//!
//! Security-critical syscalls (private-key access, crypto) run in a
//! private VM; network operations stay in a public VM. Every transferred
//! chunk crosses worlds. Prints the Table 6 throughput grid and the
//! improvement CrossOver buys over hypervisor-mediated calls.
//!
//! Run with: `cargo run --example secure_split_ssh`

use workloads::openssh::{scp_throughput, throughput_improvement, SshMode, FILE_SIZES_MB};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("scp of a cached file from the split OpenSSH server (MB/s):\n");
    println!(
        "{:>9} {:>10} {:>15} {:>17} {:>13}",
        "size", "native", "w/ CrossOver", "w/o CrossOver", "improvement"
    );
    for mb in FILE_SIZES_MB {
        let native = scp_throughput(SshMode::Native, mb)?;
        let with = scp_throughput(SshMode::WithCrossOver, mb)?;
        let without = scp_throughput(SshMode::WithoutCrossOver, mb)?;
        println!(
            "{:>6} MB {:>10.1} {:>15.1} {:>17.1} {:>12.0}%",
            mb,
            native,
            with,
            without,
            100.0 * throughput_improvement(with, without)
        );
    }
    println!(
        "\nThe private key never leaves the private VM; CrossOver recovers\n\
         most of the isolation tax because each chunk hand-off no longer\n\
         traps to the hypervisor or waits for the peer VM's scheduler."
    );
    Ok(())
}
