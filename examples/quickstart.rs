//! Quickstart: two worlds, one intervention-free cross-world call.
//!
//! Builds the simulated machine, registers a caller world (an application
//! in VM-1) and a callee world (a service kernel in VM-2), performs a
//! `world_call` round trip, and prints the transition trace to show that
//! the hypervisor never ran.
//!
//! Run with: `cargo run --example quickstart`

use crossover::manager::WorldManager;
use crossover::world::WorldDescriptor;
use hypervisor::platform::Platform;
use hypervisor::vm::VmConfig;
use machine::cost::Frequency;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine with the paper's Haswell 3.4 GHz cost model.
    let mut platform = Platform::new_default();
    let vm1 = platform.create_vm(VmConfig::named("app-vm"))?;
    let vm2 = platform.create_vm(VmConfig::named("service-vm"))?;

    // One-time setup: both sides register their worlds with the
    // hypervisor and get unforgeable World IDs.
    let mut manager = WorldManager::new();
    let caller_desc = WorldDescriptor::guest_user(&platform, vm1, 0x1000, 0x40_0000)?;
    let callee_desc = WorldDescriptor::guest_kernel(&platform, vm2, 0x2000, 0xFFFF_8000)?;
    let caller = manager.register_world(&mut platform, caller_desc)?;
    let callee = manager.register_world(&mut platform, callee_desc)?;
    println!("registered caller {caller} and callee {callee}");

    // Enter the caller's world.
    platform.vmentry(vm1)?;
    platform.cpu_mut().force_cr3(0x1000);
    platform.cpu_mut().clear_trace();

    // The cross-world call: one hardware transition each way.
    let snap = platform.cpu().meter().snapshot();
    let token = manager.call(&mut platform, caller, callee)?;
    println!(
        "now executing {} in mode {}",
        token.callee,
        platform.cpu().mode()
    );
    platform.cpu_mut().charge_work(626, 200, "service body");
    manager.ret(&mut platform, token)?;
    let delta = platform.cpu().meter().since(snap);

    println!("\ntransition trace:");
    for event in platform.cpu().trace().events() {
        println!("  {event}");
    }
    println!(
        "\nround trip: {:.3} us, hypervisor interventions: {}",
        delta.micros(Frequency::GHZ_3_4),
        platform.cpu().trace().hypervisor_interventions()
    );
    assert_eq!(platform.cpu().trace().hypervisor_interventions(), 0);
    Ok(())
}
