//! The §4.3 cross-VM system call, three ways.
//!
//! An application in VM-1 executes syscalls in VM-2's kernel via
//! (a) hypervisor-mediated redirection (the baseline every studied
//! system used), (b) the VMFUNC fast path (Figure 4), and (c) the full
//! CrossOver `world_call`. Prints latencies and proves the side effects
//! landed in the *other* VM's filesystem.
//!
//! Run with: `cargo run --example cross_vm_syscall`

use guestos::syscall::{Syscall, SyscallRet};
use machine::cost::Frequency;
use systems::crossvm::{
    crossover_cross_vm_syscall, hypervisor_cross_vm_syscall, vmfunc_cross_vm_syscall,
    CrossOverChannel,
};
use systems::env::CrossVmEnv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut env = CrossVmEnv::new("caller-vm", "target-vm")?;
    let mut channel = CrossOverChannel::setup(&mut env)?;

    // Warm up each path once (cache fills, page touches).
    hypervisor_cross_vm_syscall(&mut env, &Syscall::Null)?;
    env.settle_in_vm1()?;
    vmfunc_cross_vm_syscall(&mut env, &Syscall::Null)?;
    crossover_cross_vm_syscall(&mut env, &mut channel, &Syscall::Null)?;

    // Native reference.
    let snap = env.platform.cpu().meter().snapshot();
    env.k1.syscall(&mut env.platform, Syscall::Null)?;
    let native = env.platform.cpu().meter().since(snap);

    // (a) Hypervisor-mediated.
    let snap = env.platform.cpu().meter().snapshot();
    hypervisor_cross_vm_syscall(&mut env, &Syscall::Null)?;
    let baseline = env.platform.cpu().meter().since(snap);
    env.settle_in_vm1()?;

    // (b) VMFUNC (Figure 4).
    let snap = env.platform.cpu().meter().snapshot();
    vmfunc_cross_vm_syscall(&mut env, &Syscall::Null)?;
    let vmfunc = env.platform.cpu().meter().since(snap);

    // (c) Full CrossOver world_call.
    let snap = env.platform.cpu().meter().snapshot();
    crossover_cross_vm_syscall(&mut env, &mut channel, &Syscall::Null)?;
    let crossover = env.platform.cpu().meter().since(snap);

    println!("NULL syscall latency (us):");
    println!(
        "  native in VM-1:          {:.2}",
        native.micros(Frequency::GHZ_3_4)
    );
    println!(
        "  via hypervisor:          {:.2}",
        baseline.micros(Frequency::GHZ_3_4)
    );
    println!(
        "  via VMFUNC (Fig. 4):     {:.2}",
        vmfunc.micros(Frequency::GHZ_3_4)
    );
    println!(
        "  via world_call:          {:.2}",
        crossover.micros(Frequency::GHZ_3_4)
    );

    // Side effects land in the target VM, not the caller's.
    let open = Syscall::Open {
        path: "/created-by-vm1".into(),
        create: true,
    };
    let ret = vmfunc_cross_vm_syscall(&mut env, &open)?;
    if let SyscallRet::Fd(fd) = ret {
        vmfunc_cross_vm_syscall(
            &mut env,
            &Syscall::Write {
                fd,
                data: b"hello from across the EPT".to_vec(),
            },
        )?;
    }
    println!(
        "\n/created-by-vm1 in target VM: {:?}",
        env.k2.fs().stat("/created-by-vm1")?
    );
    println!(
        "/created-by-vm1 in caller VM: {:?}",
        env.k1
            .fs()
            .stat("/created-by-vm1")
            .err()
            .map(|e| e.to_string())
    );
    Ok(())
}
