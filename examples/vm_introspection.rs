//! VM introspection à la ShadowContext, plus CrossOver's authorization.
//!
//! A trusted VM inspects an untrusted VM by redirecting syscalls into it.
//! The example also demonstrates the software side of CrossOver's split
//! between authentication and authorization: the callee installs an
//! allow-list and refuses a world that is not on it.
//!
//! Run with: `cargo run --example vm_introspection`

use crossover::manager::{AuthPolicy, WorldManager};
use crossover::world::WorldDescriptor;
use crossover::WorldError;
use guestos::syscall::{Syscall, SyscallRet};
use hypervisor::platform::Platform;
use hypervisor::vm::VmConfig;
use machine::cost::Frequency;
use systems::shadowcontext::ShadowContext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: introspect the untrusted VM with both implementations.
    let mut optimized = ShadowContext::optimized()?;
    optimized
        .env
        .k2
        .fs_mut()
        .create("/proc/1234/cmdline", 0o444)?;
    let ino = optimized.env.k2.fs().lookup("/proc/1234/cmdline")?;
    optimized
        .env
        .k2
        .fs_mut()
        .write_at(ino, 0, b"/usr/bin/suspicious-daemon")?;

    let (ret, delta) = optimized.measure_syscall(&Syscall::Stat {
        path: "/proc/1234/cmdline".into(),
    })?;
    if let SyscallRet::Stat(stat) = ret {
        println!(
            "introspected /proc/1234/cmdline: {} bytes, mode {:o} ({:.2} us with CrossOver)",
            stat.size,
            stat.mode,
            delta.micros(Frequency::GHZ_3_4)
        );
    }

    let mut baseline = ShadowContext::baseline()?;
    baseline
        .env
        .k2
        .fs_mut()
        .create("/proc/1234/cmdline", 0o444)?;
    let (_, slow) = baseline.measure_syscall(&Syscall::Stat {
        path: "/proc/1234/cmdline".into(),
    })?;
    println!(
        "the original design needs {:.2} us for the same call",
        slow.micros(Frequency::GHZ_3_4)
    );

    // Part 2: the callee authorizes callers by WID.
    let mut platform = Platform::new_default();
    let trusted_vm = platform.create_vm(VmConfig::named("trusted"))?;
    let untrusted_vm = platform.create_vm(VmConfig::named("untrusted"))?;
    let mut manager = WorldManager::new();
    let inspector_desc = WorldDescriptor::guest_user(&platform, trusted_vm, 0x1000, 0)?;
    let rogue_desc = WorldDescriptor::guest_user(&platform, trusted_vm, 0x9000, 0)?;
    let target_desc = WorldDescriptor::guest_kernel(&platform, untrusted_vm, 0x2000, 0)?;
    let inspector = manager.register_world(&mut platform, inspector_desc)?;
    let rogue = manager.register_world(&mut platform, rogue_desc)?;
    let target = manager.register_world(&mut platform, target_desc)?;
    // Only the inspector may call into the target world.
    manager.set_policy(target, AuthPolicy::allow([inspector]));

    platform.vmentry(trusted_vm)?;
    platform.cpu_mut().force_cr3(0x1000);
    let token = manager.call(&mut platform, inspector, target)?;
    println!("\ninspector {inspector} admitted by {target}");
    manager.ret(&mut platform, token)?;

    platform.cpu_mut().force_cr3(0x9000);
    match manager.call(&mut platform, rogue, target) {
        Err(WorldError::AuthorizationDenied { caller, callee }) => {
            println!("rogue {caller} refused by {callee} (hardware-authenticated WID)");
        }
        other => panic!("expected denial, got {other:?}"),
    }
    Ok(())
}
