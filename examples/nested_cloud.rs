//! "Cloud on cloud": why nested virtualization makes cross-world calls
//! brutal — and why CrossOver does not care.
//!
//! §1 motivates CrossOver with the increasingly popular nested stacks
//! (Xen-Blanket's "virtualize once, run everywhere", CloudVisor's
//! security nesting). This example uses the hop planner to show how the
//! call cost explodes with nesting depth under existing mechanisms while
//! `world_call` stays at one hop.
//!
//! Run with: `cargo run --example nested_cloud`

use crossover::plan::{HopPlanner, Mechanism, WorldCoord};

fn main() {
    println!("cross-VM call: U_caller -> U_callee, minimal hops per mechanism\n");
    println!(
        "{:<44} {:>4} {:>8} {:>11}",
        "topology", "SW", "VMFUNC", "CrossOver"
    );

    // Flat: two sibling L1 VMs.
    let flat = HopPlanner::new(2);
    let (f, t) = (WorldCoord::guest_user(1), WorldCoord::guest_user(2));
    print_row("two L1 VMs under one hypervisor", &flat, f, t);

    // Nested: two L2 VMs behind one guest hypervisor.
    let nested = HopPlanner::with_nested(1, 2);
    let (f, t) = (WorldCoord::nested_user(1, 1), WorldCoord::nested_user(1, 2));
    print_row("two L2 VMs under one guest hypervisor", &nested, f, t);

    // Mixed: an L2 VM calling a sibling L1 VM's kernel service.
    let mixed = HopPlanner::with_nested(2, 1);
    let (f, t) = (WorldCoord::nested_user(1, 1), WorldCoord::guest_kernel(2));
    print_row("L2 VM calling a sibling L1 VM's kernel", &mixed, f, t);

    println!(
        "\nEvery L2 exit is taken by the L0 hypervisor and reflected to the\n\
         guest hypervisor (the Turtles model), so software paths grow with\n\
         depth. world_call authenticates by WID and switches in one hop\n\
         regardless of where the two worlds sit in the stack."
    );
}

fn print_row(label: &str, planner: &HopPlanner, from: WorldCoord, to: WorldCoord) {
    let fmt = |mech| {
        planner
            .hops(from, to, mech)
            .map_or("-".to_string(), |h| h.to_string())
    };
    println!(
        "{:<44} {:>4} {:>8} {:>11}",
        label,
        fmt(Mechanism::Existing),
        fmt(Mechanism::Vmfunc),
        fmt(Mechanism::CrossOver),
    );
}
