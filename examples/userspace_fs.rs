//! A user-space filesystem (FUSE) served over direct user-to-user world
//! calls — the same-VM case that plain VMFUNC cannot accelerate.
//!
//! The application and the FS daemon are two user-level address spaces in
//! one VM. The classic path detours through the kernel twice per request;
//! with CrossOver the app's world calls the daemon's world directly.
//!
//! Run with: `cargo run --example userspace_fs`

use machine::cost::Frequency;
use systems::fuse::{Fuse, FuseOp, FuseRet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fuse = Fuse::new()?;

    // Populate the user-space filesystem through the fast path.
    fuse.crossover_call(&FuseOp::Write {
        path: "/mnt/fuse/notes.txt".into(),
        data: b"stored entirely in user space".to_vec(),
    })?;

    let op = FuseOp::Read {
        path: "/mnt/fuse/notes.txt".into(),
        len: 64,
    };
    let (ret, baseline) = fuse.measure(&op, true)?;
    if let FuseRet::Data(bytes) = &ret {
        println!("read back: {:?}", String::from_utf8_lossy(bytes));
    }
    let (_, optimized) = fuse.measure(&op, false)?;

    println!(
        "\nkernel detour (U_app -> K -> U_fuse -> K -> U_app): {:.2} us",
        baseline.micros(Frequency::GHZ_3_4)
    );
    println!(
        "world_call   (U_app -> U_fuse -> U_app):            {:.2} us",
        optimized.micros(Frequency::GHZ_3_4)
    );
    println!(
        "\n{} requests served by the daemon; note that VMFUNC alone cannot\n\
         optimize this case — both worlds share one EPT and user mode\n\
         cannot rewrite CR3. Only the full world_call connects two user\n\
         address spaces in one hop (Table 3, row 7).",
        fuse.requests_served()
    );
    Ok(())
}
